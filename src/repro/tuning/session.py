"""The tuning-session driver (paper §4.1).

Each session: 10 LHS initial configurations (for optimizers that use
them), then iterate suggest -> stress test -> observe up to the budget.
Failed evaluations are clamped to the worst score seen so far ("to avoid
the scaling problem", §4.1).  Per-iteration suggest wall-time is recorded
— that is the *algorithm overhead* of Figure 9.
"""

from __future__ import annotations

import time
from typing import Protocol

from repro.optimizers.base import History, Observation, Optimizer
from repro.space import ConfigurationSpace
from repro.space.sampling import LatinHypercubeSampler


class Objective(Protocol):
    """What a session evaluates (database or surrogate objective)."""

    def __call__(self, config) -> Observation: ...

    def failure_fallback_score(self) -> float: ...

    def default_score(self) -> float: ...


class TuningSession:
    """Runs one optimizer against one objective over one knob subspace."""

    def __init__(
        self,
        objective: Objective,
        optimizer: Optimizer,
        space: ConfigurationSpace,
        max_iterations: int = 200,
        n_initial: int = 10,
        seed: int | None = None,
        warm_start: list[Observation] | None = None,
        on_iteration=None,
        max_simulated_hours: float | None = None,
    ) -> None:
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if max_simulated_hours is not None and max_simulated_hours <= 0:
            raise ValueError("max_simulated_hours must be > 0")
        self.objective = objective
        self.optimizer = optimizer
        self.space = space
        self.max_iterations = max_iterations
        # Simulated wall-clock budget (paper-style "tune for N hours"):
        # every evaluation's simulated_seconds counts against it — failed
        # ones too, since a crashed config still costs its restart
        # attempt (§4.1).  None (the default) preserves the historical
        # iteration-only stopping rule exactly.
        self.max_simulated_hours = max_simulated_hours
        #: Why the last run() stopped: "max_iterations" or
        #: "simulated_budget" (None before the first run).
        self.stop_reason: str | None = None
        # Warm-start observations count against the LHS budget: a session
        # resumed from len(warm_start) prior observations must not replay
        # the full initial design on top of them (transfer studies would
        # otherwise double-initialize).
        n_warm = len(warm_start) if warm_start else 0
        self.n_initial = max(0, n_initial - n_warm) if optimizer.uses_lhs_init else 0
        self.seed = seed
        # Constructor-level per-iteration observer: unlike ``run``'s
        # ``callback`` argument it can be threaded through code that never
        # calls ``run`` itself (e.g. a RunSpec's ``iteration_hook``, which
        # checkpoints progress or injects faults at iteration granularity).
        # Observers must not mutate the observation or the history.
        self.on_iteration = on_iteration
        self.history = History(space)
        if warm_start:
            for obs in warm_start:
                self.history.append(obs)
                self.optimizer.observe(obs)

    def _clamp_failure(self, obs: Observation) -> None:
        """Assign a failed observation the worst score seen so far."""
        worst = self.history.worst_score()
        obs.score = worst if worst is not None else self.objective.failure_fallback_score()

    def _record(self, obs: Observation, suggest_seconds: float) -> None:
        obs.suggest_seconds = suggest_seconds
        if obs.failed:
            self._clamp_failure(obs)
        self.history.append(obs)
        self.optimizer.observe(obs)

    def run(self, callback=None) -> History:
        """Execute the session; returns the populated history.

        ``callback(iteration, observation)``, when given, is invoked after
        every evaluation (used by incremental knob-selection loops).
        """
        sampler = LatinHypercubeSampler(self.space, seed=self.seed)
        initial = sampler.sample(self.n_initial) if self.n_initial > 0 else []
        budget_seconds = (
            self.max_simulated_hours * 3600.0 if self.max_simulated_hours is not None else None
        )
        # Warm-start observations already spent part of the budget.
        consumed = sum(o.simulated_seconds for o in self.history)
        self.stop_reason = "max_iterations"
        for i in range(self.max_iterations):
            if budget_seconds is not None and consumed >= budget_seconds:
                self.stop_reason = "simulated_budget"
                break
            if i < len(initial):
                config, suggest_seconds = initial[i], 0.0
            else:
                t0 = time.perf_counter()
                config = self.optimizer.suggest(self.history)
                suggest_seconds = time.perf_counter() - t0
            obs = self.objective(config)
            self._record(obs, suggest_seconds)
            consumed += obs.simulated_seconds
            if callback is not None:
                callback(i, obs)
            if self.on_iteration is not None:
                self.on_iteration(i, obs)
        return self.history

    # ------------------------------------------------------------------
    # reporting helpers
    # ------------------------------------------------------------------
    def best_observation(self) -> Observation:
        return self.history.best()

    def suggest_overhead_seconds(self) -> list[float]:
        """Per-iteration algorithm overhead (Figure 9's y-axis)."""
        return [o.suggest_seconds for o in self.history]

    def total_simulated_hours(self) -> float:
        """Simulated wall-clock the paper's real testbed would have spent."""
        return sum(o.simulated_seconds for o in self.history) / 3600.0
