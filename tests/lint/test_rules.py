"""Fixture-based rule tests: every rule has true positives and negatives."""

from pathlib import Path

import pytest

from repro.lint import LintConfig, Linter, RULES

FIXTURES = Path(__file__).parent / "fixtures"

#: rule id -> minimum number of findings its positive fixture must produce.
EXPECTED_POSITIVES = {
    "R001": 7,
    "R002": 3,
    "R003": 5,
    "R004": 4,
    "R005": 4,
    "R006": 4,
    "R007": 4,
    "R008": 4,
    "R009": 4,
}


def lint_fixture(name: str, select: list[str] | None = None) -> list:
    config = LintConfig(select=select or [])
    report = Linter(config).lint_file(FIXTURES / name)
    return report.findings


@pytest.mark.parametrize("rule_id", sorted(EXPECTED_POSITIVES))
def test_true_positive_fixture(rule_id):
    findings = lint_fixture(f"{rule_id.lower()}_pos.py", select=[rule_id])
    assert len(findings) >= EXPECTED_POSITIVES[rule_id]
    assert {f.rule for f in findings} == {rule_id}
    assert all(f.line > 0 and f.col > 0 for f in findings)


@pytest.mark.parametrize("rule_id", sorted(EXPECTED_POSITIVES))
def test_true_negative_fixture(rule_id):
    findings = lint_fixture(f"{rule_id.lower()}_neg.py", select=[rule_id])
    assert findings == []


@pytest.mark.parametrize("rule_id", sorted(EXPECTED_POSITIVES))
def test_rule_is_registered_with_metadata(rule_id):
    rule_cls = RULES[rule_id]
    assert rule_cls.name
    assert rule_cls.summary


def test_at_least_eight_rules_registered():
    real_rules = [rid for rid in RULES if rid.startswith("R") and rid != "R000"]
    assert len(real_rules) >= 8


def test_rule_messages_are_actionable():
    """Every positive finding carries a non-trivial message."""
    for rule_id in sorted(EXPECTED_POSITIVES):
        for finding in lint_fixture(f"{rule_id.lower()}_pos.py", select=[rule_id]):
            assert len(finding.message) > 20


def test_r001_flags_exact_lines():
    findings = lint_fixture("r001_pos.py", select=["R001"])
    lines = sorted(f.line for f in findings)
    source = (FIXTURES / "r001_pos.py").read_text().splitlines()
    for line in lines:
        assert "finding" in source[line - 1]


def test_r002_does_not_flag_derived_generators():
    # the gp.py fallback pattern: default_rng(self.seed) if rng is None
    findings = lint_fixture("r002_neg.py", select=["R002"])
    assert findings == []


def test_r004_estimator_without_randomness_is_exempt():
    findings = lint_fixture("r004_neg.py", select=["R004"])
    assert findings == []
