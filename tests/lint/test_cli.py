"""CLI behaviour: exit codes, formats, select/ignore, module entry point."""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.lint.cli import EXIT_CLEAN, EXIT_ERROR, EXIT_FINDINGS, main

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def run_main(*argv, capsys=None):
    return main(list(argv))


def test_exit_nonzero_on_findings(capsys):
    code = main([str(FIXTURES / "r001_pos.py"), "--no-config"])
    assert code == EXIT_FINDINGS
    assert "R001" in capsys.readouterr().out


def test_exit_clean_on_negative_fixture(capsys):
    code = main([str(FIXTURES / "r001_neg.py"), "--no-config"])
    assert code == EXIT_CLEAN


def test_each_positive_fixture_fails_the_cli(capsys):
    for rule_id in ("R001", "R002", "R003", "R004", "R005", "R006", "R007", "R008"):
        fixture = FIXTURES / f"{rule_id.lower()}_pos.py"
        code = main([str(fixture), "--no-config", "--select", rule_id])
        assert code == EXIT_FINDINGS, rule_id
        capsys.readouterr()


def test_json_format(capsys):
    code = main([str(FIXTURES / "r001_pos.py"), "--no-config", "--format", "json"])
    assert code == EXIT_FINDINGS
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"]["total"] > 0


def test_select_filters(capsys):
    code = main(
        [str(FIXTURES / "r001_pos.py"), "--no-config", "--select", "R005"]
    )
    assert code == EXIT_CLEAN


def test_ignore_filters(capsys):
    code = main(
        [str(FIXTURES / "r005_pos.py"), "--no-config", "--ignore", "R005"]
    )
    assert code == EXIT_CLEAN


def test_comma_separated_codes(capsys):
    code = main(
        [
            str(FIXTURES / "r001_pos.py"),
            str(FIXTURES / "r005_pos.py"),
            "--no-config",
            "--select",
            "R001,R005",
        ]
    )
    assert code == EXIT_FINDINGS
    out = capsys.readouterr().out
    assert "R001" in out and "R005" in out


def test_unknown_rule_is_usage_error(capsys):
    code = main([str(FIXTURES / "r001_pos.py"), "--no-config", "--select", "R999"])
    assert code == EXIT_ERROR


def test_missing_path_is_usage_error(capsys):
    code = main(["definitely/not/here.py", "--no-config"])
    assert code == EXIT_ERROR


def test_list_rules(capsys):
    code = main(["--list-rules"])
    assert code == EXIT_CLEAN
    out = capsys.readouterr().out
    for rule_id in ("R001", "R008"):
        assert rule_id in out


def test_module_entry_point_runs_clean_on_repo_src():
    """`python -m repro.lint src` must exit 0 on the merged tree."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", "src", "tests"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_module_entry_point_fails_on_fixture():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.lint",
            str(FIXTURES / "r001_pos.py"),
            "--no-config",
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert proc.returncode == 1, proc.stdout + proc.stderr


# ----------------------------------------------------------------------
# v2: program passes, cache, baseline, SARIF
# ----------------------------------------------------------------------
PROGRAM_FIXTURES = FIXTURES / "program"


def test_program_rules_fire_through_the_cli(capsys, tmp_path):
    code = main(
        [
            str(PROGRAM_FIXTURES / "seedpkg"),
            "--no-config",
            "--select",
            "R010,R011",
            "--cache-dir",
            str(tmp_path / "cache"),
        ]
    )
    assert code == EXIT_FINDINGS
    out = capsys.readouterr().out
    assert "R010" in out and "R011" in out


def test_no_program_flag_suppresses_program_rules(capsys, tmp_path):
    code = main(
        [
            str(PROGRAM_FIXTURES / "seedpkg"),
            "--no-config",
            "--select",
            "R010,R011",
            "--no-program",
            "--cache-dir",
            str(tmp_path / "cache"),
        ]
    )
    assert code == EXIT_CLEAN


def test_sarif_format_through_the_cli(capsys, tmp_path):
    code = main(
        [
            str(FIXTURES / "r001_pos.py"),
            "--no-config",
            "--format",
            "sarif",
            "--no-cache",
        ]
    )
    assert code == EXIT_FINDINGS
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == "2.1.0"
    assert doc["runs"][0]["results"]


def test_write_then_consume_baseline(capsys, tmp_path):
    baseline = tmp_path / "baseline.json"
    common = [
        str(PROGRAM_FIXTURES / "seedpkg"),
        "--no-config",
        "--select",
        "R010,R011",
        "--cache-dir",
        str(tmp_path / "cache"),
    ]
    assert main([*common, "--write-baseline", str(baseline)]) == EXIT_CLEAN
    assert "recorded" in capsys.readouterr().out
    assert main([*common, "--baseline", str(baseline)]) == EXIT_CLEAN
    assert "suppressed" in capsys.readouterr().err


def test_missing_baseline_is_usage_error(capsys, tmp_path):
    code = main(
        [
            str(FIXTURES / "r001_neg.py"),
            "--no-config",
            "--baseline",
            str(tmp_path / "nope.json"),
        ]
    )
    assert code == EXIT_ERROR


def test_list_rules_includes_program_rules(capsys):
    code = main(["--list-rules"])
    assert code == EXIT_CLEAN
    out = capsys.readouterr().out
    for rule_id in ("R010", "R011", "R012", "R013", "R014"):
        assert rule_id in out


def test_cache_dir_is_created_and_reused(tmp_path, capsys):
    cache = tmp_path / "cache"
    argv = [
        str(PROGRAM_FIXTURES / "optpkg"),
        "--no-config",
        "--select",
        "R012",
        "--cache-dir",
        str(cache),
    ]
    first = main(argv)
    capsys.readouterr()
    assert cache.exists() and any(cache.rglob("*.json"))
    assert main(argv) == first
