"""Algorithm-overhead measurement (paper §6.3, Figure 9).

Overhead is the wall-clock an optimizer spends producing the next
configuration — model (re)fitting plus acquisition optimization — and is
recorded per iteration by :class:`~repro.tuning.session.TuningSession`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def overhead_at_checkpoints(
    suggest_seconds: Sequence[float],
    checkpoints: Sequence[int] = (50, 100, 200, 400),
    window: int = 10,
) -> dict[int, float]:
    """Mean per-iteration overhead around each checkpoint iteration.

    ``suggest_seconds[i]`` is the overhead at iteration ``i`` (0-based);
    each checkpoint averages the trailing ``window`` iterations so a
    single slow fit does not dominate.
    """
    times = np.asarray(suggest_seconds, dtype=float)
    out: dict[int, float] = {}
    for cp in checkpoints:
        if cp <= 0 or cp > len(times):
            continue
        lo = max(0, cp - window)
        out[cp] = float(times[lo:cp].mean())
    return out


def cumulative_overhead(suggest_seconds: Sequence[float]) -> float:
    """Total optimizer time across a session (seconds)."""
    return float(np.sum(np.asarray(suggest_seconds, dtype=float)))
