"""Reporter output: text format and the JSON schema."""

import json
from pathlib import Path

from repro.lint import LintConfig, Linter
from repro.lint.reporters import JSON_SCHEMA_VERSION, render_json, render_text

FIXTURES = Path(__file__).parent / "fixtures"


def reports_for(*names):
    linter = Linter(LintConfig())
    return [linter.lint_file(FIXTURES / name) for name in names]


def test_json_schema_keys_and_types():
    payload = json.loads(render_json(reports_for("r001_pos.py", "r001_neg.py")))
    assert payload["version"] == JSON_SCHEMA_VERSION
    assert payload["files_checked"] == 2
    assert set(payload["counts"]) == {"total", "suppressed", "by_rule"}
    assert payload["counts"]["total"] == len(payload["findings"])
    assert payload["counts"]["by_rule"].get("R001", 0) > 0
    for finding in payload["findings"]:
        assert set(finding) == {"rule", "path", "line", "col", "message"}
        assert isinstance(finding["line"], int)
        assert isinstance(finding["col"], int)
        assert finding["rule"].startswith(("R", "E"))


def test_json_counts_suppressed():
    payload = json.loads(render_json(reports_for("suppression_ok.py")))
    assert payload["counts"]["total"] == 0
    assert payload["counts"]["suppressed"] == 2


def test_json_findings_sorted_by_location():
    payload = json.loads(render_json(reports_for("r001_pos.py")))
    keys = [(f["path"], f["line"], f["col"]) for f in payload["findings"]]
    assert keys == sorted(keys)


def test_text_report_format():
    text = render_text(reports_for("r001_pos.py"))
    first = text.splitlines()[0]
    # path:line:col: RULE message
    assert "r001_pos.py:" in first
    assert ": R001 " in first
    assert "Found" in text.splitlines()[-1]


def test_text_report_clean_summary():
    text = render_text(reports_for("r001_neg.py"))
    assert text.startswith("Clean:")
    assert "0 findings" in text


# ----------------------------------------------------------------------
# SARIF 2.1.0
# ----------------------------------------------------------------------
def _sarif_for(*names):
    from repro.lint.reporters import render_sarif

    return json.loads(render_sarif(reports_for(*names)))


def _assert_valid_sarif(doc):
    """Structural validation against the SARIF 2.1.0 schema's required
    properties (the full JSON Schema needs network access; these are the
    constraints GitHub code scanning actually enforces)."""
    assert doc["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in doc["$schema"]
    assert isinstance(doc["runs"], list) and doc["runs"]
    for run in doc["runs"]:
        driver = run["tool"]["driver"]
        assert driver["name"] == "reprolint"
        rules = driver.get("rules", [])
        for rule in rules:
            assert set(rule) >= {"id", "name"}
            level = rule["defaultConfiguration"]["level"]
            assert level in {"none", "note", "warning", "error"}
        for result in run.get("results", []):
            assert result["message"]["text"]
            assert result["level"] in {"none", "note", "warning", "error"}
            if "ruleIndex" in result:
                assert rules[result["ruleIndex"]]["id"] == result["ruleId"]
            for location in result["locations"]:
                physical = location["physicalLocation"]
                uri = physical["artifactLocation"]["uri"]
                assert "\\" not in uri
                region = physical["region"]
                assert region["startLine"] >= 1
                assert region["startColumn"] >= 1
            for suppression in result.get("suppressions", []):
                assert suppression["kind"] in {"inSource", "external"}


def test_sarif_is_structurally_valid():
    _assert_valid_sarif(_sarif_for("r001_pos.py", "r005_pos.py", "r001_neg.py"))


def test_sarif_reports_each_finding_with_rule_descriptor():
    doc = _sarif_for("r001_pos.py")
    run = doc["runs"][0]
    assert any(r["id"] == "R001" for r in run["tool"]["driver"]["rules"])
    active = [r for r in run["results"] if "suppressions" not in r]
    assert active and all(r["ruleId"].startswith(("R", "E")) for r in active)


def test_sarif_marks_suppressed_findings_in_source():
    doc = _sarif_for("suppression_ok.py")
    run = doc["runs"][0]
    suppressed = [r for r in run["results"] if "suppressions" in r]
    assert len(suppressed) == 2
    _assert_valid_sarif(doc)


def test_sarif_empty_report_is_valid():
    doc = _sarif_for("r001_neg.py")
    assert doc["runs"][0]["results"] == []
    _assert_valid_sarif(doc)


def test_sarif_registered_in_reporters():
    from repro.lint.reporters import REPORTERS

    assert set(REPORTERS) == {"text", "json", "sarif"}
