"""Microbenchmark harness for the surrogate hot paths (``python -m repro.perf.bench``).

Times the operations the paper's optimizer studies spend their
wall-clock in, at several history sizes, in two arms each:

==================  =====================================================
``gp_fit``          Full hyperparameter-optimized GP fit (L-BFGS-B over
                    theta) on an ``(n, d)`` training set.
``gp_predict``      Posterior mean + std at a 1024-point candidate pool.
``candidate_pool``  Snapping a 1280-row candidate matrix to valid unit
                    encodings over a mixed (continuous/integer/
                    categorical, linear/log) space.
``bo_iteration``    One steady-state BO iteration at history size ``n``:
                    surrogate (re)build plus acquisition maximization.
``forest_fit``      SMAC-shaped random forest (20 trees, 0.8 features)
                    fit on an ``(n, 197)`` training set — the paper's
                    full-knob dimensionality.
``forest_predict``  ``predict_with_std`` (SMAC's mu/sigma) for a
                    candidate batch against a forest trained at the
                    largest history size.
``gbm_fit``         Gradient-boosted trees (Table 9 surrogate config)
                    fit on an ``(n, 197)`` training set.
``smac_iteration``  One non-interleaved SMAC suggest at history ``n``:
                    forest refit, local search, 512 random candidates.
``tpe_iteration``   One TPE suggest at history ``n``: good/bad Parzens,
                    64 candidates, l/g ranking.
==================  =====================================================

The **baseline** arm reproduces the pre-acceleration implementations
(``accelerated=False``: no distance caching, per-row decode/encode snap
loop, from-scratch refit each iteration, per-node argsort split search,
per-tree prediction loops, per-dimension KDE evaluation); the
**optimized** arm enables the default-on layers plus — for
``bo_iteration`` only — the opt-in incremental Cholesky append and
warm-started refit schedule.  Results are written as JSON (default
``benchmarks/perf/BENCH_PR9.json``) so the perf trajectory is tracked
in-repo from PR 4 onward; ``--validate`` checks an existing file against
the schema without re-running anything, and ``--compare OLD NEW`` diffs
two tracked payloads cell by cell.

All entropy derives from the explicit ``--seed``; no wall-clock state
enters the payload (durations come from ``time.perf_counter``).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path
from time import perf_counter
from typing import Any, Callable, Sequence

import numpy as np
import scipy

from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.forest import RandomForestRegressor
from repro.ml.gp import GaussianProcessRegressor
from repro.ml.kernels import ConstantKernel, RBFKernel
from repro.optimizers.base import History, Observation
from repro.optimizers.bo import VanillaBO
from repro.optimizers.smac import SMAC
from repro.optimizers.tpe import TPE
from repro.space import ConfigurationSpace
from repro.space.parameter import CategoricalKnob, ContinuousKnob, IntegerKnob

SCHEMA_VERSION = 1
DEFAULT_SIZES = (25, 50, 100, 200)
SMOKE_SIZES = (10, 20)
DEFAULT_OUT = "benchmarks/perf/BENCH_PR9.json"
DEFAULT_SEED = 17
DEFAULT_REPEATS = 3
POOL_ROWS = 1280
PREDICT_ROWS = 1024
GP_DIMS = 12
#: PostgreSQL's full knob count (paper §4) — the tree-ensemble suites
#: run at the dimensionality the SMAC surrogate actually faces.
FOREST_DIMS = 197
OPS = (
    "gp_fit",
    "gp_predict",
    "candidate_pool",
    "bo_iteration",
    "forest_fit",
    "forest_predict",
    "gbm_fit",
    "smac_iteration",
    "tpe_iteration",
)


def bench_space() -> ConfigurationSpace:
    """A 12-knob mixed space exercising every codec flavor."""
    return ConfigurationSpace(
        [
            ContinuousKnob("c0", 0.0, 1.0, 0.5),
            ContinuousKnob("c1", -5.0, 5.0, 0.0),
            ContinuousKnob("c2", 1e-3, 1e3, 1.0, log=True),
            ContinuousKnob("c3", 1e-2, 1e4, 10.0, log=True),
            IntegerKnob("i0", 0, 10_000, 500),
            IntegerKnob("i1", 1, 64, 8),
            IntegerKnob("i2", 1, 2**30, 4096, log=True),
            IntegerKnob("i3", 4, 10**6, 1000, log=True),
            CategoricalKnob("k0", ["off", "on"], "off"),
            CategoricalKnob("k1", ["a", "b", "c"], "a"),
            CategoricalKnob("k2", list("pqrst"), "p"),
            CategoricalKnob("k3", ["lru", "fifo", "clock", "arc"], "lru"),
        ]
    )


def _surface_score(x: np.ndarray) -> float:
    """Deterministic smooth objective over unit encodings (maximized)."""
    return -float(np.sum((np.asarray(x, dtype=float) - 0.4) ** 2))


def _synthetic_history(space: ConfigurationSpace, n: int, seed: int) -> History:
    rng = np.random.default_rng(seed)
    history = History(space)
    for config in space.sample_configurations(n, rng):
        score = _surface_score(space.encode(config))
        history.append(Observation(config=config, objective=score, score=score))
    return history


def _best_of(repeats: int, trial: Callable[[], float]) -> float:
    """Minimum duration over ``repeats`` independent trials."""
    return min(trial() for _ in range(max(1, repeats)))


# ----------------------------------------------------------------------
# per-operation trials — each returns elapsed seconds for one execution
# ----------------------------------------------------------------------
def _gp_fit_seconds(n: int, seed: int, accelerated: bool) -> float:
    rng = np.random.default_rng(seed)
    X = rng.random((n, GP_DIMS))
    y = np.sin(3.0 * X[:, 0]) + X[:, 1] ** 2 + 0.1 * rng.standard_normal(n)
    gp = GaussianProcessRegressor(
        kernel=ConstantKernel(1.0) * RBFKernel(0.5),
        noise=1e-4,
        n_restarts=1,
        seed=seed,
        cache_distances=accelerated,
    )
    start = perf_counter()
    gp.fit(X, y)
    return perf_counter() - start


def _gp_predict_seconds(n: int, seed: int, accelerated: bool) -> float:
    rng = np.random.default_rng(seed)
    X = rng.random((n, GP_DIMS))
    y = np.sin(3.0 * X[:, 0]) + 0.1 * rng.standard_normal(n)
    gp = GaussianProcessRegressor(
        kernel=ConstantKernel(1.0) * RBFKernel(0.5),
        noise=1e-4,
        n_restarts=0,
        seed=seed,
        cache_distances=accelerated,
    )
    gp.fit(X, y)
    X_test = rng.random((PREDICT_ROWS, GP_DIMS))
    start = perf_counter()
    gp.predict(X_test, return_std=True)
    return perf_counter() - start


def _candidate_pool_seconds(
    space: ConfigurationSpace, rows: int, seed: int, accelerated: bool
) -> float:
    rng = np.random.default_rng(seed)
    U = rng.random((rows, space.n_dims))
    start = perf_counter()
    if accelerated:
        space.snap_many(U)
    else:
        space.encode_many([space.decode(row) for row in U])
    return perf_counter() - start


def _bo_iteration_seconds(
    space: ConfigurationSpace, n: int, seed: int, accelerated: bool
) -> float:
    history = _synthetic_history(space, n, seed)
    if accelerated:
        optimizer = VanillaBO(
            space, seed=seed, accelerated=True, incremental=True, refit_every=5
        )
    else:
        optimizer = VanillaBO(space, seed=seed, accelerated=False, full_refit=True)
    # Untimed warm-up suggestion establishes the surrogate, so the timed
    # call measures the steady state (for the optimized arm: one O(n^2)
    # incremental append instead of a from-scratch hyperparameter fit).
    config = optimizer.suggest(history)
    score = _surface_score(space.encode(config))
    history.append(Observation(config=config, objective=score, score=score))
    start = perf_counter()
    optimizer.suggest(history)
    return perf_counter() - start


def _forest_data(n: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    X = rng.random((n, FOREST_DIMS))
    y = np.sin(3.0 * X[:, 0]) + X[:, 1] ** 2 + 0.1 * rng.standard_normal(n)
    return X, y


def _bench_forest(seed: int, accelerated: bool) -> RandomForestRegressor:
    """SMAC's surrogate shape (see ``SMAC._fit_surrogate``)."""
    return RandomForestRegressor(
        n_estimators=20,
        max_features=0.8,
        min_samples_leaf=1,
        min_samples_split=3,
        bootstrap=True,
        seed=seed,
        accelerated=accelerated,
    )


def _forest_fit_seconds(n: int, seed: int, accelerated: bool) -> float:
    X, y = _forest_data(n, seed)
    forest = _bench_forest(seed, accelerated)
    start = perf_counter()
    forest.fit(X, y)
    return perf_counter() - start


def _forest_predict_seconds(n: int, rows: int, seed: int, accelerated: bool) -> float:
    # The trees are identical in both arms (bit-identity is tested), so
    # fit once on the fast path and flip the flag for the baseline
    # timing arm; only prediction is timed.
    X, y = _forest_data(n, seed)
    forest = _bench_forest(seed, True).fit(X, y)
    forest.accelerated = accelerated
    X_test = np.random.default_rng(seed + 1).random((rows, FOREST_DIMS))
    forest.predict_with_std(X_test)  # untimed warm-up (packs trees, loads kernel)
    start = perf_counter()
    forest.predict_with_std(X_test)
    return perf_counter() - start


def _gbm_fit_seconds(n: int, seed: int, accelerated: bool) -> float:
    X, y = _forest_data(n, seed)
    # The tuning benchmark's GB surrogate config (Table 9).
    gbm = GradientBoostingRegressor(
        n_estimators=150,
        learning_rate=0.08,
        max_depth=4,
        seed=seed,
        accelerated=accelerated,
    )
    start = perf_counter()
    gbm.fit(X, y)
    return perf_counter() - start


def _smac_iteration_seconds(
    space: ConfigurationSpace, n: int, seed: int, accelerated: bool
) -> float:
    history = _synthetic_history(space, n, seed)
    # random_interleave_prob=0 so the timed call always takes the
    # model-based path (an interleaved iteration is a no-op to time).
    optimizer = SMAC(space, seed=seed, random_interleave_prob=0.0, accelerated=accelerated)
    config = optimizer.suggest(history)  # untimed warm-up
    score = _surface_score(space.encode(config))
    history.append(Observation(config=config, objective=score, score=score))
    start = perf_counter()
    optimizer.suggest(history)
    return perf_counter() - start


def _tpe_iteration_seconds(
    space: ConfigurationSpace, n: int, seed: int, accelerated: bool
) -> float:
    history = _synthetic_history(space, n, seed)
    optimizer = TPE(space, seed=seed, accelerated=accelerated)
    config = optimizer.suggest(history)  # untimed warm-up
    score = _surface_score(space.encode(config))
    history.append(Observation(config=config, objective=score, score=score))
    start = perf_counter()
    optimizer.suggest(history)
    return perf_counter() - start


# ----------------------------------------------------------------------
def run_bench(
    sizes: Sequence[int] = DEFAULT_SIZES,
    seed: int = DEFAULT_SEED,
    repeats: int = DEFAULT_REPEATS,
    pool_rows: int = POOL_ROWS,
    smoke: bool = False,
) -> dict[str, Any]:
    """Run every (operation, size) cell in both arms; return the payload."""
    space = bench_space()
    sizes = tuple(int(n) for n in sizes)
    results: list[dict[str, Any]] = []

    def cell(op: str, n: int, trial: Callable[[bool], float]) -> None:
        baseline = _best_of(repeats, lambda: trial(False))
        optimized = _best_of(repeats, lambda: trial(True))
        results.append(
            {
                "op": op,
                "n": n,
                "baseline_seconds": baseline,
                "optimized_seconds": optimized,
                "speedup": baseline / optimized if optimized > 0 else float("inf"),
            }
        )

    for n in sizes:
        cell("gp_fit", n, lambda acc, n=n: _gp_fit_seconds(n, seed, acc))
        cell("gp_predict", n, lambda acc, n=n: _gp_predict_seconds(n, seed, acc))
        cell("bo_iteration", n, lambda acc, n=n: _bo_iteration_seconds(space, n, seed, acc))
        cell("forest_fit", n, lambda acc, n=n: _forest_fit_seconds(n, seed, acc))
        cell("gbm_fit", n, lambda acc, n=n: _gbm_fit_seconds(n, seed, acc))
        cell("smac_iteration", n, lambda acc, n=n: _smac_iteration_seconds(space, n, seed, acc))
        cell("tpe_iteration", n, lambda acc, n=n: _tpe_iteration_seconds(space, n, seed, acc))
    cell(
        "candidate_pool",
        pool_rows,
        lambda acc: _candidate_pool_seconds(space, pool_rows, seed, acc),
    )
    cell(
        "forest_predict",
        pool_rows,
        lambda acc: _forest_predict_seconds(max(sizes), pool_rows, seed, acc),
    )

    summary: dict[str, float] = {}
    for op in OPS:
        cells = [r for r in results if r["op"] == op]
        if cells:
            largest = max(cells, key=lambda r: r["n"])
            summary[f"{op}_n{largest['n']}_speedup"] = largest["speedup"]

    return {
        "schema_version": SCHEMA_VERSION,
        "benchmark": "repro.perf.bench",
        "pr": "PR9",
        "seed": seed,
        "smoke": smoke,
        "repeats": repeats,
        "sizes": list(sizes),
        "pool_rows": pool_rows,
        "env": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "scipy": scipy.__version__,
        },
        "results": results,
        "summary": summary,
    }


# ----------------------------------------------------------------------
def validate_payload(payload: Any) -> list[str]:
    """Return schema violations (empty list == valid).

    Checks structure and value domains only — never timing magnitudes, so
    CI stays insensitive to runner speed.
    """
    errors: list[str] = []
    if not isinstance(payload, dict):
        return ["payload is not a JSON object"]

    def require(key: str, kind: type | tuple[type, ...]) -> Any:
        if key not in payload:
            errors.append(f"missing key: {key}")
            return None
        if not isinstance(payload[key], kind):
            errors.append(f"key {key!r} has type {type(payload[key]).__name__}")
            return None
        return payload[key]

    if payload.get("schema_version") != SCHEMA_VERSION:
        errors.append(f"schema_version must be {SCHEMA_VERSION}")
    require("seed", int)
    require("smoke", bool)
    require("repeats", int)
    sizes = require("sizes", list)
    require("pool_rows", int)
    env = require("env", dict)
    if env is not None:
        for key in ("python", "numpy", "scipy"):
            if not isinstance(env.get(key), str):
                errors.append(f"env.{key} must be a string")
    if sizes is not None and not all(isinstance(n, int) and n > 0 for n in sizes):
        errors.append("sizes must be positive integers")
    results = require("results", list)
    if results is not None:
        if not results:
            errors.append("results must be non-empty")
        for i, row in enumerate(results):
            if not isinstance(row, dict):
                errors.append(f"results[{i}] is not an object")
                continue
            if row.get("op") not in OPS:
                errors.append(f"results[{i}].op {row.get('op')!r} not in {OPS}")
            if not (isinstance(row.get("n"), int) and row["n"] > 0):
                errors.append(f"results[{i}].n must be a positive integer")
            for key in ("baseline_seconds", "optimized_seconds", "speedup"):
                value = row.get(key)
                if not (isinstance(value, (int, float)) and value > 0):
                    errors.append(f"results[{i}].{key} must be a positive number")
    summary = require("summary", dict)
    if summary is not None:
        for key, value in summary.items():
            if not isinstance(value, (int, float)):
                errors.append(f"summary.{key} must be a number")
    return errors


def compare_payloads(
    old: dict[str, Any], new: dict[str, Any]
) -> tuple[list[str], list[dict[str, Any]]]:
    """Diff two tracked bench payloads cell by cell.

    Returns ``(errors, rows)``.  Errors cover schema violations in
    either payload, benchmark-suite mismatches, and an empty cell
    intersection; rows (one per common ``(op, n)`` cell, in ``OPS``
    order) carry both optimized timings and their ratio.  Ops present in
    only one payload are fine — trajectories grow suites over time — as
    long as at least one cell overlaps.
    """
    errors: list[str] = []
    for label, payload in (("old", old), ("new", new)):
        errors.extend(f"{label}: {e}" for e in validate_payload(payload))
    if errors:
        return errors, []
    if old.get("benchmark") != new.get("benchmark"):
        return [
            f"benchmark suite mismatch: {old.get('benchmark')!r} vs {new.get('benchmark')!r}"
        ], []
    old_cells = {(r["op"], r["n"]): r for r in old["results"]}
    new_cells = {(r["op"], r["n"]): r for r in new["results"]}
    common = sorted(
        set(old_cells) & set(new_cells), key=lambda key: (OPS.index(key[0]), key[1])
    )
    if not common:
        return ["no common (op, n) cells between the payloads"], []
    rows = []
    for key in common:
        before, after = old_cells[key], new_cells[key]
        rows.append(
            {
                "op": key[0],
                "n": key[1],
                "old_optimized_seconds": before["optimized_seconds"],
                "new_optimized_seconds": after["optimized_seconds"],
                "ratio": before["optimized_seconds"] / after["optimized_seconds"]
                if after["optimized_seconds"] > 0
                else float("inf"),
            }
        )
    return [], rows


def _format_compare(rows: list[dict[str, Any]]) -> str:
    lines = [
        f"{'op':<16}{'n':>7}{'old opt (s)':>15}{'new opt (s)':>15}{'old/new':>10}",
    ]
    for row in rows:
        lines.append(
            f"{row['op']:<16}{row['n']:>7}"
            f"{row['old_optimized_seconds']:>15.6f}{row['new_optimized_seconds']:>15.6f}"
            f"{row['ratio']:>9.2f}x"
        )
    return "\n".join(lines)


def _format_report(payload: dict[str, Any]) -> str:
    lines = [
        f"repro.perf.bench (seed={payload['seed']}, repeats={payload['repeats']}, "
        f"smoke={payload['smoke']})",
        f"{'op':<16}{'n':>7}{'baseline (s)':>15}{'optimized (s)':>15}{'speedup':>10}",
    ]
    for row in payload["results"]:
        lines.append(
            f"{row['op']:<16}{row['n']:>7}"
            f"{row['baseline_seconds']:>15.6f}{row['optimized_seconds']:>15.6f}"
            f"{row['speedup']:>9.2f}x"
        )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.bench",
        description="GP/BO hot-path microbenchmarks (see docs/PERFORMANCE.md)",
    )
    parser.add_argument(
        "--sizes",
        default=None,
        help=f"comma-separated history sizes (default {','.join(map(str, DEFAULT_SIZES))})",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=DEFAULT_SEED,
        help="explicit RNG seed for all synthetic data (no wall-clock entropy)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="trials per cell (min is reported)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"tiny sizes {SMOKE_SIZES} and one repeat, for CI schema checks",
    )
    parser.add_argument("--out", default=DEFAULT_OUT, help="output JSON path")
    parser.add_argument(
        "--validate",
        metavar="PATH",
        default=None,
        help="validate an existing payload against the schema and exit",
    )
    parser.add_argument(
        "--compare",
        nargs=2,
        metavar=("OLD", "NEW"),
        default=None,
        help="diff two tracked payloads cell by cell and exit",
    )
    args = parser.parse_args(argv)

    if args.compare is not None:
        payloads = []
        for path in args.compare:
            try:
                payloads.append(json.loads(Path(path).read_text()))
            except (OSError, json.JSONDecodeError) as exc:
                print(f"cannot read payload {path}: {exc}", file=sys.stderr)
                return 2
        errors, rows = compare_payloads(payloads[0], payloads[1])
        if errors:
            for error in errors:
                print(f"compare error: {error}", file=sys.stderr)
            return 1
        print(f"comparing {args.compare[0]} (old) vs {args.compare[1]} (new)")
        print(_format_compare(rows))
        return 0

    if args.validate is not None:
        try:
            payload = json.loads(Path(args.validate).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"cannot read payload: {exc}", file=sys.stderr)
            return 2
        errors = validate_payload(payload)
        if errors:
            for error in errors:
                print(f"schema violation: {error}", file=sys.stderr)
            return 1
        print(f"{args.validate}: schema OK ({len(payload['results'])} result rows)")
        return 0

    if args.smoke:
        sizes = SMOKE_SIZES if args.sizes is None else tuple(
            int(s) for s in args.sizes.split(",")
        )
        repeats = 1 if args.repeats is None else args.repeats
        pool_rows = 256
    else:
        sizes = DEFAULT_SIZES if args.sizes is None else tuple(
            int(s) for s in args.sizes.split(",")
        )
        repeats = DEFAULT_REPEATS if args.repeats is None else args.repeats
        pool_rows = POOL_ROWS

    payload = run_bench(
        sizes=sizes, seed=args.seed, repeats=repeats, pool_rows=pool_rows, smoke=args.smoke
    )
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(_format_report(payload))
    print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
