"""Regression: GP posterior sampling must be deterministic in `seed`.

`sample_posterior` used to fall back to a seedless `np.random.default_rng()`
when no `rng` was passed — exactly the silent-nondeterminism class reprolint
rule R001 now forbids.  The fallback must derive from `self.seed`.
"""

import numpy as np

from repro.ml.gp import GaussianProcessRegressor


def fitted_gp(seed=7):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0.0, 1.0, size=(12, 2))
    y = np.sin(3.0 * X[:, 0]) + 0.5 * X[:, 1]
    return GaussianProcessRegressor(seed=seed, n_restarts=1).fit(X, y)


def test_sample_posterior_without_rng_is_deterministic():
    gp = fitted_gp(seed=7)
    X_test = np.linspace(0.0, 1.0, 5)[:, None].repeat(2, axis=1)
    first = gp.sample_posterior(X_test, n_samples=3)
    second = gp.sample_posterior(X_test, n_samples=3)
    np.testing.assert_array_equal(first, second)


def test_same_seed_same_samples_across_instances():
    X_test = np.linspace(0.0, 1.0, 4)[:, None].repeat(2, axis=1)
    a = fitted_gp(seed=11).sample_posterior(X_test, n_samples=2)
    b = fitted_gp(seed=11).sample_posterior(X_test, n_samples=2)
    np.testing.assert_array_equal(a, b)


def test_explicit_rng_still_advances_stream():
    """Passing an rng keeps the caller in charge: two draws differ."""
    gp = fitted_gp(seed=3)
    X_test = np.linspace(0.0, 1.0, 4)[:, None].repeat(2, axis=1)
    rng = np.random.default_rng(123)
    first = gp.sample_posterior(X_test, n_samples=2, rng=rng)
    second = gp.sample_posterior(X_test, n_samples=2, rng=rng)
    assert not np.array_equal(first, second)


def test_seedless_gp_falls_back_to_default_rng_seed_none():
    """seed=None still works (default_rng(None) is valid); just not equal
    across calls is acceptable there — but the call must not crash."""
    gp = fitted_gp(seed=None)
    X_test = np.linspace(0.0, 1.0, 3)[:, None].repeat(2, axis=1)
    draws = gp.sample_posterior(X_test, n_samples=2)
    assert draws.shape == (2, 3)
