"""DDPG configuration tuning (CDBTune / QTune style).

The agent observes the DBMS internal-metric vector as the MDP state and
emits a configuration (one action dimension per knob, in unit space).
Architecture and reward follow CDBTune (paper §4.2):

- actor: state -> 128 -> 128 -> knobs (sigmoid), critic: (state, action)
  -> 128 -> 128 -> Q, both trained with Adam and Polyak-averaged targets;
- reward couples the performance change against the *initial* setting and
  against the *previous* iteration, so improving from a bad region earns
  quadratically growing reward.

The agent object is separable from the optimizer so a pre-trained agent
can be transplanted onto a new workload — the paper's fine-tune transfer
baseline (§3.3).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.dbms.metrics import INTERNAL_METRIC_NAMES, normalized_metrics_vector
from repro.ml.neural import MLP, Adam
from repro.optimizers.base import History, Observation, Optimizer
from repro.space import Configuration, ConfigurationSpace

STATE_DIM = len(INTERNAL_METRIC_NAMES)


@dataclass
class _Transition:
    state: np.ndarray
    action: np.ndarray
    reward: float
    next_state: np.ndarray


class _RunningNorm:
    """Online mean/variance normalizer (Welford)."""

    def __init__(self, dim: int) -> None:
        self.count = 0
        self.mean = np.zeros(dim)
        self.m2 = np.ones(dim)

    def update(self, x: np.ndarray) -> None:
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (x - self.mean)

    def normalize(self, x: np.ndarray) -> np.ndarray:
        std = np.sqrt(self.m2 / max(self.count, 1))
        std[std < 1e-8] = 1.0
        return (x - self.mean) / std


class DDPGAgent:
    """Actor-critic networks, replay buffer, and training loop."""

    def __init__(
        self,
        action_dim: int,
        state_dim: int = STATE_DIM,
        hidden: int = 128,
        actor_lr: float = 1e-3,
        critic_lr: float = 1e-3,
        gamma: float = 0.9,
        tau: float = 0.005,
        batch_size: int = 32,
        buffer_size: int = 10000,
        seed: int | None = None,
    ) -> None:
        self.action_dim = action_dim
        self.state_dim = state_dim
        self.gamma = gamma
        self.tau = tau
        self.batch_size = batch_size
        self.rng = np.random.default_rng(seed)
        s = lambda: int(self.rng.integers(0, 2**31 - 1))  # noqa: E731

        self.actor = MLP([state_dim, hidden, hidden, action_dim], ["relu", "relu", "sigmoid"], seed=s())
        self.actor_target = MLP(
            [state_dim, hidden, hidden, action_dim], ["relu", "relu", "sigmoid"], seed=s()
        )
        self.actor_target.copy_weights_from(self.actor)
        self.critic = MLP(
            [state_dim + action_dim, hidden, hidden, 1], ["relu", "relu", "linear"], seed=s()
        )
        self.critic_target = MLP(
            [state_dim + action_dim, hidden, hidden, 1], ["relu", "relu", "linear"], seed=s()
        )
        self.critic_target.copy_weights_from(self.critic)
        self.actor_opt = Adam(self.actor.params, lr=actor_lr)
        self.critic_opt = Adam(self.critic.params, lr=critic_lr)
        self.buffer: deque[_Transition] = deque(maxlen=buffer_size)
        self.norm = _RunningNorm(state_dim)
        self.train_steps = 0

    # ------------------------------------------------------------------
    def act(self, state: np.ndarray, noise_scale: float = 0.0) -> np.ndarray:
        action = self.actor.forward(state[None, :]).ravel()
        if noise_scale > 0:
            action = action + self.rng.normal(0.0, noise_scale, size=self.action_dim)
        return np.clip(action, 0.0, 1.0)

    def remember(self, transition: _Transition) -> None:
        self.buffer.append(transition)

    def train_batch(self) -> float | None:
        """One gradient step on a replay minibatch; returns critic loss."""
        if len(self.buffer) < self.batch_size:
            return None
        idx = self.rng.integers(0, len(self.buffer), size=self.batch_size)
        batch = [self.buffer[int(i)] for i in idx]
        states = np.array([t.state for t in batch])
        actions = np.array([t.action for t in batch])
        rewards = np.array([t.reward for t in batch])[:, None]
        next_states = np.array([t.next_state for t in batch])

        # Critic update: TD target from the target networks.
        next_actions = self.actor_target.forward(next_states)
        q_next = self.critic_target.forward(np.hstack([next_states, next_actions]))
        target = rewards + self.gamma * q_next
        self.critic.zero_grad()
        q = self.critic.forward(np.hstack([states, actions]))
        diff = q - target
        loss = float(np.mean(diff**2))
        self.critic.backward(2.0 * diff / len(batch))
        self.critic_opt.step(self.critic.grads)

        # Actor update: ascend dQ/da through the critic.
        self.actor.zero_grad()
        pred_actions = self.actor.forward(states)
        self.critic.zero_grad()
        self.critic.forward(np.hstack([states, pred_actions]))
        grad_input = self.critic.backward(-np.ones((len(batch), 1)) / len(batch))
        grad_actions = grad_input[:, self.state_dim :]
        self.actor.backward(grad_actions)
        self.actor_opt.step(self.actor.grads)

        # Polyak-averaged target updates.
        self.actor_target.copy_weights_from(self.actor, tau=self.tau)
        self.critic_target.copy_weights_from(self.critic, tau=self.tau)
        self.train_steps += 1
        return loss

    # ------------------------------------------------------------------
    def get_weights(self) -> dict[str, list[np.ndarray]]:
        """Checkpoint all four networks (for pre-training / fine-tuning)."""
        return {
            "actor": self.actor.get_weights(),
            "actor_target": self.actor_target.get_weights(),
            "critic": self.critic.get_weights(),
            "critic_target": self.critic_target.get_weights(),
        }

    def set_weights(self, weights: dict[str, list[np.ndarray]]) -> None:
        self.actor.set_weights(weights["actor"])
        self.actor_target.set_weights(weights["actor_target"])
        self.critic.set_weights(weights["critic"])
        self.critic_target.set_weights(weights["critic_target"])


def cdbtune_reward(perf: float, perf_initial: float, perf_prev: float) -> float:
    """CDBTune's reward from performance relative to start and previous step.

    All inputs are maximization scores.  Division guards make the reward
    well-defined when scores are negative (latency objectives are negated
    upstream, so magnitudes are used for the relative deltas).
    """

    def rel(a: float, b: float) -> float:
        denom = max(abs(b), 1e-9)
        return (a - b) / denom

    delta0 = rel(perf, perf_initial)
    delta_t = rel(perf, perf_prev)
    if delta0 > 0:
        return ((1.0 + delta0) ** 2 - 1.0) * abs(1.0 + delta_t)
    return -(((1.0 - delta0) ** 2) - 1.0) * abs(1.0 - delta_t)


class DDPG(Optimizer):
    """The RL-based optimizer driving a :class:`DDPGAgent`."""

    name = "ddpg"
    uses_lhs_init = True  # paper seeds all optimizers' first iterations alike

    def __init__(
        self,
        space: ConfigurationSpace,
        seed: int | None = None,
        agent: DDPGAgent | None = None,
        noise_initial: float = 0.4,
        noise_final: float = 0.05,
        noise_decay_iters: int = 100,
        train_steps_per_observation: int = 4,
    ) -> None:
        super().__init__(space, seed)
        self.agent = agent if agent is not None else DDPGAgent(space.n_dims, seed=seed)
        if self.agent.action_dim != space.n_dims:
            raise ValueError(
                f"agent action dim {self.agent.action_dim} != space dims {space.n_dims}"
            )
        self.noise_initial = noise_initial
        self.noise_final = noise_final
        self.noise_decay_iters = noise_decay_iters
        self.train_steps_per_observation = train_steps_per_observation
        self._prev_state: np.ndarray | None = None
        self._prev_action: np.ndarray | None = None
        self._initial_score: float | None = None
        self._prev_score: float | None = None
        self._iteration = 0

    # ------------------------------------------------------------------
    def _state_from(self, observation: Observation | None) -> np.ndarray:
        if observation is None or not observation.metrics:
            return np.zeros(self.agent.state_dim)
        raw = normalized_metrics_vector(observation.metrics)
        self.agent.norm.update(raw)
        return self.agent.norm.normalize(raw)

    def _noise_scale(self) -> float:
        frac = min(self._iteration / max(self.noise_decay_iters, 1), 1.0)
        return self.noise_initial + frac * (self.noise_final - self.noise_initial)

    def suggest(self, history: History) -> Configuration:
        last = history.observations[-1] if len(history) else None
        state = self._state_from(last)
        action = self.agent.act(state, noise_scale=self._noise_scale())
        self._prev_state = state
        self._prev_action = action
        self._iteration += 1
        return self.space.decode(action)

    def observe(self, observation: Observation) -> None:
        score = observation.score
        if self._initial_score is None and not observation.failed:
            self._initial_score = score
        next_state = self._state_from(observation)
        if self._prev_state is not None and self._prev_action is not None:
            initial = self._initial_score if self._initial_score is not None else score
            prev = self._prev_score if self._prev_score is not None else score
            if observation.failed:
                reward = -10.0
            else:
                reward = cdbtune_reward(score, initial, prev)
            self.agent.remember(
                _Transition(self._prev_state, self._prev_action, reward, next_state)
            )
            for _ in range(self.train_steps_per_observation):
                self.agent.train_batch()
        if not observation.failed:
            self._prev_score = score
