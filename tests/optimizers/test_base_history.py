"""Tests for Observation/History and acquisition functions."""

import numpy as np
import pytest

from repro.optimizers.acquisitions import (
    expected_improvement,
    probability_of_improvement,
    ucb,
)
from repro.optimizers.base import History, Observation
from repro.space import Configuration


def _obs(space, score, failed=False, **values):
    config = space.complete(values)
    return Observation(
        config=config, objective=score, score=score, failed=failed
    )


class TestHistory:
    def test_append_assigns_iterations(self, tiny_space):
        h = History(tiny_space)
        h.append(_obs(tiny_space, 1.0))
        h.append(_obs(tiny_space, 2.0, x=0.3))
        assert [o.iteration for o in h] == [0, 1]
        assert len(h) == 2

    def test_append_reindexes_stale_iterations(self, tiny_space):
        # Observations re-appended from a source history (warm starts)
        # must not keep their old indices.
        source = History(tiny_space)
        for score in (1.0, 2.0, 3.0):
            source.append(_obs(tiny_space, score))
        target = History(tiny_space)
        target.append(source[2])  # iteration 2 in the source
        target.append(source[0])
        assert [o.iteration for o in target] == [0, 1]
        # the copies keep trajectories consistent without mutating the source
        assert [o.iteration for o in source] == [0, 1, 2]
        assert target.best_score_trajectory().tolist() == [3.0, 3.0]
        assert target.iterations_to_reach(3.0) == 1

    def test_best_ignores_failures(self, tiny_space):
        h = History(tiny_space)
        h.append(_obs(tiny_space, 100.0, failed=True))
        h.append(_obs(tiny_space, 1.0, x=0.2))
        assert h.best().score == 1.0

    def test_best_raises_without_success(self, tiny_space):
        h = History(tiny_space)
        h.append(_obs(tiny_space, 1.0, failed=True))
        with pytest.raises(ValueError):
            h.best()

    def test_encoded_and_scores_aligned(self, tiny_space):
        h = History(tiny_space)
        h.append(_obs(tiny_space, 1.0))
        h.append(_obs(tiny_space, 5.0, x=0.9))
        X = h.encoded()
        y = h.scores()
        assert X.shape == (2, tiny_space.n_dims)
        np.testing.assert_array_equal(y, [1.0, 5.0])

    def test_empty_encoded(self, tiny_space):
        h = History(tiny_space)
        assert h.encoded().shape == (0, tiny_space.n_dims)

    def test_trajectory_and_reach(self, tiny_space):
        h = History(tiny_space)
        h.append(_obs(tiny_space, 1.0))
        h.append(_obs(tiny_space, 3.0, x=0.1))
        h.append(_obs(tiny_space, 2.0, x=0.2))
        traj = h.best_score_trajectory()
        np.testing.assert_array_equal(traj, [1.0, 3.0, 3.0])
        assert h.iterations_to_reach(3.0) == 2
        assert h.iterations_to_reach(99.0) is None

    def test_worst_score(self, tiny_space):
        h = History(tiny_space)
        assert h.worst_score() is None
        h.append(_obs(tiny_space, 4.0))
        h.append(_obs(tiny_space, -2.0, x=0.7))
        assert h.worst_score() == -2.0


class TestAcquisitions:
    def test_ei_zero_when_mean_below_best_and_no_uncertainty(self):
        ei = expected_improvement(np.array([1.0]), np.array([0.0]), best=2.0)
        assert ei[0] == 0.0

    def test_ei_positive_with_uncertainty(self):
        ei = expected_improvement(np.array([1.0]), np.array([1.0]), best=2.0)
        assert ei[0] > 0.0

    def test_ei_increases_with_mean(self):
        means = np.array([0.0, 1.0, 2.0])
        ei = expected_improvement(means, np.ones(3), best=1.0)
        assert ei[0] < ei[1] < ei[2]

    def test_ei_increases_with_std_below_best(self):
        stds = np.array([0.1, 1.0, 5.0])
        ei = expected_improvement(np.zeros(3), stds, best=1.0)
        assert ei[0] < ei[1] < ei[2]

    def test_pi_bounds(self):
        pi = probability_of_improvement(np.array([0.0, 10.0]), np.array([1.0, 1.0]), best=5.0)
        assert 0.0 <= pi[0] < 0.5 < pi[1] <= 1.0

    def test_ucb(self):
        np.testing.assert_allclose(
            ucb(np.array([1.0]), np.array([0.5]), beta=2.0), [2.0]
        )
