"""Focused tests on RGPE's adaptive weighting — the anti-negative-transfer
mechanism the paper credits for RGPE's Table 8 win."""

import numpy as np

from repro.transfer.rgpe import compute_rgpe_weights


class _FixedModel:
    """A 'surrogate' that predicts a fixed linear function of x[0]."""

    def __init__(self, slope: float):
        self.slope = slope

    def predict_with_std(self, X):
        X = np.atleast_2d(X)
        return self.slope * X[:, 0], np.ones(len(X))


def _target_factory(X, y):
    # Leave-one-out target model: predict the mean of the training fold.
    class _Mean:
        def __init__(self, value):
            self.value = value

        def predict_with_std(self, Xq):
            Xq = np.atleast_2d(Xq)
            return np.full(len(Xq), self.value), np.ones(len(Xq))

    return _Mean(float(np.mean(y)))


def test_aligned_source_gets_weight():
    """A source model that ranks the target data perfectly should win votes."""
    rng = np.random.default_rng(0)
    X = rng.random((30, 3))
    y = 5.0 * X[:, 0] + rng.normal(0, 0.01, 30)
    aligned = _FixedModel(slope=5.0)
    inverted = _FixedModel(slope=-5.0)
    weights = compute_rgpe_weights(
        [aligned, inverted], X, y, _target_factory, rng, n_bootstrap=40
    )
    assert weights[0] > weights[1]
    assert weights[1] == 0.0  # the anti-correlated source is pruned


def test_irrelevant_sources_pruned_with_enough_target_data():
    """A constant-prediction source has maximal ranking loss -> weight 0."""
    rng = np.random.default_rng(1)
    X = rng.random((25, 2))
    y = 3.0 * X[:, 0]
    flat = _FixedModel(slope=0.0)
    good = _FixedModel(slope=1.0)
    weights = compute_rgpe_weights([flat, good], X, y, _target_factory, rng, n_bootstrap=40)
    assert weights[1] > weights[0]


def test_cold_start_all_weight_on_target():
    weights = compute_rgpe_weights(
        [_FixedModel(1.0)], np.zeros((2, 2)), np.array([0.0, 1.0]),
        _target_factory, np.random.default_rng(0),
    )
    np.testing.assert_array_equal(weights, [0.0, 1.0])


def test_weights_normalized():
    rng = np.random.default_rng(2)
    X = rng.random((20, 2))
    y = X[:, 0]
    weights = compute_rgpe_weights(
        [_FixedModel(1.0), _FixedModel(0.5), _FixedModel(-1.0)],
        X, y, _target_factory, rng, n_bootstrap=30,
    )
    np.testing.assert_allclose(weights.sum(), 1.0)
    assert (weights >= 0).all()
