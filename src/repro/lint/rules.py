"""The initial reprolint rule set (R001–R008).

Each rule targets a failure mode this codebase has actually hit (or is one
refactor away from hitting): seedless RNG fallbacks, shadow generator
streams that decorrelate replay, set-iteration order leaking into recorded
figures, drifting optimizer/estimator contracts, and the usual Python
footguns that silently corrupt evaluation results.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.context import FileContext, attribute_chain
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

NP_RANDOM = "numpy.random"

#: numpy.random constructors that are deterministic *when given a seed*.
_SEEDED_CONSTRUCTORS = {
    "default_rng",
    "Generator",
    "RandomState",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}


def _is_constant_literal(node: ast.expr) -> bool:
    """True for literals (incl. unary-negated numbers) but not names."""
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return isinstance(node.operand, ast.Constant)
    return False


def _has_no_arguments(call: ast.Call) -> bool:
    return not call.args and not call.keywords


def _function_params(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return set(names)


def _positional_params(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    args = node.args
    return [a.arg for a in args.posonlyargs + args.args]


# ======================================================================
@register
class SeedlessRNG(Rule):
    id = "R001"
    name = "seedless-rng"
    summary = (
        "RNG pulled from global entropy: `np.random.default_rng()` with no "
        "argument, stdlib `random.*`, or legacy `np.random.<fn>` state calls"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved is None:
                continue
            if resolved.startswith(NP_RANDOM + "."):
                tail = resolved[len(NP_RANDOM) + 1 :]
                if tail in _SEEDED_CONSTRUCTORS:
                    # Generator() without a bit generator is a TypeError,
                    # not a determinism hazard.
                    if tail != "Generator" and _has_no_arguments(node):
                        yield self.finding(
                            ctx,
                            node,
                            f"`np.random.{tail}()` with no seed draws from OS "
                            "entropy; derive the generator from the "
                            "SeedSequence tree (pass a seed or an rng)",
                        )
                elif "." not in tail:
                    yield self.finding(
                        ctx,
                        node,
                        f"`np.random.{tail}(...)` uses numpy's global RNG "
                        "state; use a `np.random.Generator` threaded from "
                        "the caller instead",
                    )
            elif resolved == "random" or resolved.startswith("random."):
                tail = resolved[len("random.") :] if "." in resolved else ""
                if tail == "Random" and not _has_no_arguments(node):
                    continue  # random.Random(seed) is an owned, seeded stream
                yield self.finding(
                    ctx,
                    node,
                    f"stdlib `random.{tail or 'random'}` relies on global "
                    "(or OS) RNG state; use a seeded `np.random.Generator` "
                    "threaded from the caller",
                )


# ======================================================================
@register
class ShadowRNGStream(Rule):
    id = "R002"
    name = "shadow-rng-stream"
    summary = (
        "generator built from a hard-coded constant inside a function that "
        "already receives `rng`/`seed` (decorrelates replay)"
    )

    _CONSTRUCTORS = {
        NP_RANDOM + ".default_rng",
        NP_RANDOM + ".RandomState",
        NP_RANDOM + ".SeedSequence",
    }

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        findings: list[Finding] = []
        rule = self

        class Visitor(ast.NodeVisitor):
            def __init__(self) -> None:
                self.stack: list[set[str]] = []

            def _visit_func(self, node) -> None:
                self.stack.append(_function_params(node))
                self.generic_visit(node)
                self.stack.pop()

            visit_FunctionDef = _visit_func
            visit_AsyncFunctionDef = _visit_func

            def visit_Call(self, node: ast.Call) -> None:
                resolved = ctx.resolve(node.func)
                if resolved in rule._CONSTRUCTORS and self.stack:
                    params = self.stack[-1]
                    governed = params & {"rng", "seed"}
                    values = list(node.args) + [kw.value for kw in node.keywords]
                    if governed and values and all(map(_is_constant_literal, values)):
                        given = " and ".join(f"`{p}`" for p in sorted(governed))
                        findings.append(
                            rule.finding(
                                ctx,
                                node,
                                "generator seeded from a hard-coded constant "
                                f"inside a function that receives {given}; "
                                "derive it from the provided parameter so "
                                "replay stays correlated",
                            )
                        )
                self.generic_visit(node)

        Visitor().visit(ctx.tree)
        yield from findings


# ======================================================================
@register
class UnorderedIteration(Rule):
    id = "R003"
    name = "unordered-iteration"
    summary = (
        "iteration over `set(...)`/`.keys()` feeding ordered output; sort "
        "first (the fig6 bug class)"
    )

    @staticmethod
    def _is_set_expr(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in {"set", "frozenset"}
        return False

    @staticmethod
    def _is_keys_call(node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "keys"
            and not node.args
            and not node.keywords
        )

    def _check_iterable(self, ctx: FileContext, node: ast.expr) -> Iterator[Finding]:
        if self._is_set_expr(node):
            yield self.finding(
                ctx,
                node,
                "iterating an unordered set feeds hash-dependent order into "
                "downstream output; wrap in `sorted(...)`",
            )
        elif self._is_keys_call(node):
            yield self.finding(
                ctx,
                node,
                "iterating `.keys()` hides the ordering contract; iterate "
                "the mapping directly or use `sorted(...)` to make the "
                "order explicit",
            )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_iterable(ctx, node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    yield from self._check_iterable(ctx, gen.iter)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in {"list", "tuple", "enumerate"}
                and len(node.args) == 1
                and self._is_set_expr(node.args[0])
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"`{node.func.id}(set(...))` materializes hash-dependent "
                    "order; use `sorted(set(...))`",
                )


# ======================================================================
@register
class OptimizerContract(Rule):
    id = "R004"
    name = "optimizer-contract"
    summary = (
        "Optimizer subclasses must define conforming `suggest(self, history)`/"
        "`observe(self, observation)` and accept `seed`; randomized "
        "estimators must expose a `seed` attribute"
    )

    @staticmethod
    def _base_names(cls: ast.ClassDef) -> list[str]:
        names: list[str] = []
        for base in cls.bases:
            chain = attribute_chain(base)
            if chain:
                names.append(chain[-1])
        return names

    def _optimizer_classes(self, classes: list[ast.ClassDef]) -> set[str]:
        """Names of classes that (transitively, within this module) extend
        a class named ``Optimizer`` / ``*Optimizer``."""
        optimizers = {
            c.name for c in classes if any(b.endswith("Optimizer") for b in self._base_names(c))
        }
        changed = True
        while changed:
            changed = False
            for c in classes:
                if c.name not in optimizers and any(
                    b in optimizers for b in self._base_names(c)
                ):
                    optimizers.add(c.name)
                    changed = True
        return optimizers

    @staticmethod
    def _methods(cls: ast.ClassDef) -> dict[str, ast.FunctionDef]:
        return {
            stmt.name: stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }

    @staticmethod
    def _uses_randomness(cls: ast.ClassDef, ctx: FileContext) -> bool:
        for node in ast.walk(cls):
            if isinstance(node, ast.Call):
                resolved = ctx.resolve(node.func)
                if resolved and resolved.startswith((NP_RANDOM + ".", "random.")):
                    return True
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if "rng" in _function_params(node):
                    return True
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "rng"
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                return True
        return False

    @staticmethod
    def _assigns_self_seed(cls: ast.ClassDef) -> bool:
        for node in ast.walk(cls):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr == "seed"
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        return True
        return False

    def _check_signature(
        self,
        ctx: FileContext,
        cls: ast.ClassDef,
        method: ast.FunctionDef,
        expected: tuple[str, ...],
    ) -> Iterator[Finding]:
        params = _positional_params(method)
        if tuple(params[: len(expected)]) != expected:
            want = ", ".join(expected)
            yield self.finding(
                ctx,
                method,
                f"`{cls.name}.{method.name}` must start with positional "
                f"parameters ({want}); got ({', '.join(params) or 'none'})",
            )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        classes = [n for n in ast.walk(ctx.tree) if isinstance(n, ast.ClassDef)]
        optimizers = self._optimizer_classes(classes)
        for cls in classes:
            methods = self._methods(cls)
            if cls.name in optimizers:
                if "suggest" in methods:
                    yield from self._check_signature(
                        ctx, cls, methods["suggest"], ("self", "history")
                    )
                if "observe" in methods:
                    yield from self._check_signature(
                        ctx, cls, methods["observe"], ("self", "observation")
                    )
                init = methods.get("__init__")
                if init is not None and "seed" not in _function_params(init):
                    yield self.finding(
                        ctx,
                        init,
                        f"`{cls.name}.__init__` must accept a `seed` "
                        "parameter so sessions can thread the SeedSequence "
                        "tree through every optimizer",
                    )
            elif "fit" in methods and self._uses_randomness(cls, ctx):
                init = methods.get("__init__")
                if (
                    init is not None
                    and "seed" not in _function_params(init)
                    and not self._assigns_self_seed(cls)
                ):
                    yield self.finding(
                        ctx,
                        init,
                        f"randomized estimator `{cls.name}` must expose a "
                        "`seed` (constructor parameter or `self.seed` "
                        "attribute) for reproducible refits",
                    )


# ======================================================================
@register
class MutableDefaultArgument(Rule):
    id = "R005"
    name = "mutable-default-argument"
    summary = "mutable default argument shared across calls"

    _MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict", "deque"}

    def _is_mutable(self, node: ast.expr | None) -> bool:
        if node is None:
            return False
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in self._MUTABLE_CALLS
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        ctx,
                        default,
                        "mutable default argument is shared across calls; "
                        "default to None and build inside the function",
                    )


# ======================================================================
@register
class SwallowedException(Rule):
    id = "R006"
    name = "swallowed-exception"
    summary = (
        "bare `except:` or `except Exception: pass` hides evaluation "
        "failures instead of recording them"
    )

    @staticmethod
    def _catches_everything(node: ast.ExceptHandler) -> bool:
        handled = node.type
        if handled is None:
            return True
        names: list[ast.expr] = (
            list(handled.elts) if isinstance(handled, ast.Tuple) else [handled]
        )
        for name in names:
            chain = attribute_chain(name)
            if chain and chain[-1] in {"Exception", "BaseException"}:
                return True
        return False

    @staticmethod
    def _body_is_noop(body: list[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                continue  # docstring or `...`
            return False
        return True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare `except:` catches SystemExit/KeyboardInterrupt and "
                    "hides real failures; name the exception types",
                )
            elif self._catches_everything(node) and self._body_is_noop(node.body):
                yield self.finding(
                    ctx,
                    node,
                    "`except Exception: pass` silently swallows evaluation "
                    "failures; record the failure (clamp, log, or re-raise)",
                )


# ======================================================================
@register
class WallClockInResults(Rule):
    id = "R007"
    name = "wall-clock-in-results"
    summary = (
        "`time.time()`/`datetime.now()` in result-producing code makes "
        "outputs run-dependent; use `perf_counter` for durations or inject "
        "timestamps"
    )

    _BANNED = {
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved in self._BANNED:
                yield self.finding(
                    ctx,
                    node,
                    f"`{resolved}()` reads the wall clock, making results "
                    "differ between runs; use `time.perf_counter()` for "
                    "durations or accept the timestamp as a parameter",
                )


# ======================================================================
@register
class FloatEquality(Rule):
    id = "R008"
    name = "float-equality"
    summary = (
        "float `==`/`!=` against a non-sentinel literal; use a tolerance "
        "(`math.isclose`, `np.isclose`) instead"
    )

    #: Exact sentinel values commonly used as flags/edge guards; IEEE-754
    #: represents these exactly and the codebase compares against them on
    #: purpose (e.g. zero-variance guards).
    _SENTINELS = (0.0, 1.0, -1.0)

    @classmethod
    def _nonsentinel_float(cls, node: ast.expr) -> float | None:
        value: object | None = None
        if isinstance(node, ast.Constant):
            value = node.value
        elif (
            isinstance(node, ast.UnaryOp)
            and isinstance(node.op, (ast.USub, ast.UAdd))
            and isinstance(node.operand, ast.Constant)
        ):
            inner = node.operand.value
            if isinstance(inner, float):
                value = -inner if isinstance(node.op, ast.USub) else inner
        if not isinstance(value, float):
            return None
        if any(value == s for s in cls._SENTINELS):
            return None
        return value

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (operands[i], operands[i + 1]):
                    value = self._nonsentinel_float(side)
                    if value is not None:
                        yield self.finding(
                            ctx,
                            node,
                            f"exact float comparison against {value!r} is "
                            "representation-dependent; compare with a "
                            "tolerance or suppress with a reason if the "
                            "value is an exact sentinel",
                        )
                        break


# ======================================================================
@register
class UnclassifiedExceptionHandler(Rule):
    id = "R009"
    name = "unclassified-exception-handler"
    summary = (
        "catch-all `except` handler that neither re-raises nor records a "
        "classified failure (Observation / RunResult / FailureKind)"
    )

    #: Lower-cased substrings of a terminal call name that indicate the
    #: handler converts the exception into recorded failure state rather
    #: than swallowing it (e.g. ``RunResult``, ``_failed_obs``,
    #: ``Observation``, ``FailureKind``, ``_worker_death_result``).
    _FAILURE_TOKENS = ("observation", "obs", "result", "failure")

    @classmethod
    def _records_failure(cls, body: list[ast.stmt]) -> bool:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Raise):
                    return True
                if not isinstance(node, ast.Call):
                    continue
                chain = attribute_chain(node.func)
                if not chain:
                    continue
                terminal = chain[-1].lower()
                if any(token in terminal for token in cls._FAILURE_TOKENS):
                    return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not SwallowedException._catches_everything(node):
                continue
            if self._records_failure(node.body):
                continue
            yield self.finding(
                ctx,
                node,
                "catch-all handler neither re-raises nor records the failure "
                "as an Observation/RunResult/FailureKind; classify the "
                "failure (or suppress with a reason explaining why losing "
                "it is safe)",
            )


def all_rule_ids() -> list[str]:
    from repro.lint.registry import RULES

    return sorted(RULES)


def _ensure_registered() -> None:
    """Importing this module populates the registry; nothing else to do."""


_ensure_registered()
