"""Fixture package: seed-provenance cases for R010/R011.

The re-export below is load-bearing — it exercises symbol resolution
through ``__init__`` in the program index.
"""

from seedpkg.flow import GoodTuner
