"""CI entry point: ``python -m repro.parallel.fault_smoke``.

A thin wrapper so the smoke can be launched with ``-m`` without runpy
re-executing :mod:`repro.parallel.faults` (which the package __init__
already imported).  See :func:`repro.parallel.faults.main` for what the
round trip does and asserts.
"""

from __future__ import annotations

from repro.parallel.faults import main

if __name__ == "__main__":
    raise SystemExit(main())
