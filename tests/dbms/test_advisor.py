"""Tests for the configuration advisor."""

import pytest

from repro.dbms.advisor import Advice, lint_configuration
from repro.dbms.catalog import mysql_knob_space

GB = 1024**3
MB = 1024**2


@pytest.fixture(scope="module")
def space():
    return mysql_knob_space("B", seed=0)


class TestAdvisor:
    def test_default_config_has_no_critical_findings(self, space):
        findings = lint_configuration(
            space.default_configuration(), "B", "SYSBENCH"
        )
        assert not [f for f in findings if f.severity == "critical"]

    def test_oom_config_is_critical(self, space):
        config = space.default_configuration().with_values(
            innodb_buffer_pool_size=38 * GB
        )
        findings = lint_configuration(config, "B", "SYSBENCH")
        assert any(
            f.severity == "critical" and f.knob == "innodb_buffer_pool_size"
            for f in findings
        )

    def test_small_buffer_pool_warned(self, space):
        config = space.default_configuration().with_values(
            innodb_buffer_pool_size=1 * GB
        )
        findings = lint_configuration(config, "B")
        assert any(f.knob == "innodb_buffer_pool_size" for f in findings)

    def test_durability_tradeoff_is_info(self, space):
        config = space.default_configuration().with_values(
            innodb_flush_log_at_trx_commit="0"
        )
        findings = lint_configuration(config, "B")
        flush = [f for f in findings if f.knob == "innodb_flush_log_at_trx_commit"]
        assert flush and flush[0].severity == "info"

    def test_query_cache_trap_flagged(self, space):
        config = space.default_configuration().with_values(
            query_cache_type="ON", query_cache_size=256 * MB
        )
        findings = lint_configuration(config, "B")
        assert any(f.knob == "query_cache_type" for f in findings)

    def test_max_connections_vs_clients(self, space):
        config = space.default_configuration().with_values(max_connections=10)
        findings = lint_configuration(config, "B", "SYSBENCH")
        assert any(
            f.severity == "critical" and f.knob == "max_connections"
            for f in findings
        )

    def test_tiny_redo_log_warned_for_write_heavy(self, space):
        config = space.default_configuration().with_values(
            innodb_log_file_size=4 * MB
        )
        findings = lint_configuration(config, "B", "TPC-C")
        assert any(f.knob == "innodb_log_file_size" for f in findings)

    def test_findings_sorted_by_severity(self, space):
        config = space.default_configuration().with_values(
            innodb_buffer_pool_size=38 * GB,
            innodb_flush_log_at_trx_commit="0",
        )
        findings = lint_configuration(config, "B", "SYSBENCH")
        severities = [f.severity for f in findings]
        order = {"critical": 0, "warning": 1, "info": 2}
        assert severities == sorted(severities, key=order.get)

    def test_advice_str(self):
        text = str(Advice("warning", "some_knob", "message"))
        assert "warning" in text and "some_knob" in text

    def test_no_workload_skips_workload_checks(self, space):
        config = space.default_configuration().with_values(max_connections=10)
        findings = lint_configuration(config, "B")
        assert not any(f.knob == "max_connections" for f in findings)
