"""Random and Latin-Hypercube baselines."""

from __future__ import annotations

from repro.optimizers.base import History, Optimizer
from repro.space import Configuration, ConfigurationSpace
from repro.space.sampling import latin_hypercube


class RandomSearch(Optimizer):
    """Uniform random sampling over the space."""

    name = "random"
    uses_lhs_init = False

    def suggest(self, history: History) -> Configuration:
        return self._dedupe(self._random_config(), history)


class LHSOptimizer(Optimizer):
    """Stratified sampling: pre-draws LHS batches and replays them.

    Used for initialization batches and for the offline sample pools the
    knob-selection study and the surrogate benchmark collect (paper §5.1,
    §8).
    """

    name = "lhs"
    uses_lhs_init = False

    def __init__(
        self, space: ConfigurationSpace, seed: int | None = None, batch_size: int = 64
    ) -> None:
        super().__init__(space, seed)
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = batch_size
        self._queue: list[Configuration] = []

    def suggest(self, history: History) -> Configuration:
        if not self._queue:
            design = latin_hypercube(self.batch_size, self.space.n_dims, self.rng)
            self._queue = [self.space.decode(row) for row in design]
        return self._queue.pop()
