"""Figure 6: incremental knob selection vs fixed top-5/top-20 baselines.

Paper shape: for JOB nothing beats fixed top-5; for SYSBENCH increasing
the knob count performs well while decreasing limits the eventual gain.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.experiments import incremental_comparison


def test_fig6_incremental_knob_selection(benchmark, scale):
    results = run_once(
        benchmark,
        lambda: incremental_comparison(workloads=("SYSBENCH", "JOB"), scale=scale),
    )
    print()
    print(
        format_table(
            ["Workload", "Strategy", "Final improvement %"],
            [(r.workload, r.strategy, 100.0 * r.final_improvement) for r in results],
            title="Figure 6: incremental knob selection (final best)",
        )
    )
    by_key = {(r.workload, r.strategy): r for r in results}
    # Trajectories are monotone non-decreasing best-so-far curves.
    for r in results:
        assert all(b >= a - 1e-9 for a, b in zip(r.trajectory, r.trajectory[1:]))
    # SYSBENCH: increasing reaches at least the decreasing strategy's level.
    assert (
        by_key[("SYSBENCH", "increasing")].final_improvement
        >= by_key[("SYSBENCH", "decreasing")].final_improvement - 0.25
    )
