"""Deterministic fault injection for the run scheduler.

Fault tolerance that is only exercised by real outages is fiction.  This
module injects the three failure modes the executor must contain, in a
form tests can replay exactly:

- :class:`WorkerKiller` — a picklable per-iteration hook
  (``RunSpec.iteration_hook``) that hard-kills the worker process with
  ``os._exit`` at a chosen iteration, breaking the process pool exactly
  the way an OOM kill does.  Armed/disarmed through a filesystem marker
  so "kill the first attempt only" survives the pool respawn.
- :class:`FlakyEval` — wraps an objective and raises
  :class:`InjectedFault` inside it for the first ``fail_attempts``
  attempts (counted through a marker file, i.e. across processes), then
  delegates transparently.  Exercises the soft-failure retry path.
- :func:`truncate_tail` — chops bytes off a telemetry/checkpoint file,
  simulating a crash mid-append (the torn final line readers must skip).

:func:`choose_victims` derives the set of runs to sabotage from a seed,
so fault placement is part of the experiment's deterministic identity.

Run ``python -m repro.parallel.fault_smoke --out-dir <dir>`` for the CI
fault-smoke: a kill-and-resume round trip of a small study that asserts
checkpoint/resume equivalence and leaves the telemetry and checkpoint
files behind as artifacts.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any

import numpy as np

#: Exit code used by injected worker deaths — distinguishable in process
#: tables and in the executor's "worker died" error strings.
KILLED_EXIT_CODE = 0x2B


class InjectedFault(RuntimeError):
    """An evaluation failure raised on purpose by a fault injector."""


def _read_count(path: str) -> int:
    if not os.path.exists(path):
        return 0
    with open(path, encoding="utf-8") as fh:
        text = fh.read().strip()
    return int(text) if text else 0


def _write_count(path: str, value: int) -> None:
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(str(value))
        fh.flush()


@dataclass
class WorkerKiller:
    """Iteration hook that kills the worker process mid-run.

    ``arm_dir`` holds the fired-marker: with ``once=True`` (the default)
    the first attempt dies and every later attempt of the same run
    survives — the canonical "transient worker death" the scheduler must
    absorb without losing anyone else's work.  ``once=False`` kills every
    attempt, modelling a run that deterministically takes its worker down
    (e.g. an OOM-sized configuration).
    """

    at_iteration: int
    arm_dir: str
    label: str = "kill"
    exit_code: int = KILLED_EXIT_CODE
    once: bool = True

    def _marker(self) -> str:
        return os.path.join(self.arm_dir, f"{self.label}.fired")

    def __call__(self, iteration: int, observation: Any) -> None:
        if iteration != self.at_iteration:
            return
        marker = self._marker()
        if self.once and os.path.exists(marker):
            return
        _write_count(marker, _read_count(marker) + 1)
        # A hard death: no exception propagation, no cleanup, no flushing
        # of the result back to the parent — exactly what the scheduler's
        # attempt journal exists to survive.
        os._exit(self.exit_code)


@dataclass
class FlakyEval:
    """Objective wrapper that raises for the first ``fail_attempts`` calls.

    The failure counter lives in ``arm_path`` on disk, so it keeps
    counting across worker processes and pool respawns.  All other
    attribute access (``direction``, ``score_of``, ``server``, the
    session protocol methods) is delegated to the wrapped objective.
    """

    inner: Any
    arm_path: str
    fail_attempts: int = 1

    def __call__(self, config: Any) -> Any:
        fired = _read_count(self.arm_path)
        if fired < self.fail_attempts:
            _write_count(self.arm_path, fired + 1)
            raise InjectedFault(
                f"injected evaluation failure {fired + 1}/{self.fail_attempts}"
            )
        return self.inner(config)

    def __getattr__(self, name: str) -> Any:
        # ``__getattr__`` fires during unpickling before ``__dict__`` is
        # restored; guard dunders and the delegate itself to avoid
        # recursing into ourselves.
        if name.startswith("__"):
            raise AttributeError(name)
        inner = self.__dict__.get("inner")
        if inner is None:
            raise AttributeError(name)
        return getattr(inner, name)


# ----------------------------------------------------------------------
# objective-level chaos (exercises the GuardedObjective boundary)
# ----------------------------------------------------------------------
@dataclass
class RaisingObjective:
    """Objective wrapper that raises ``ValueError`` at chosen call indices.

    Models a buggy objective (bad math, a crashing client library): the
    exception escapes the objective itself and must be converted into an
    ``EVALUATION_ERROR`` observation by the guard instead of killing the
    session.  ``at_calls`` are 0-based call indices; ``always=True``
    raises on every call.  The counter is in-memory: one session runs in
    one process, so the schedule replays identically wherever (and however
    often) the run executes.
    """

    inner: Any = field(repr=False)
    at_calls: tuple[int, ...] = ()
    always: bool = False
    n_calls: int = field(default=0, repr=False, compare=False)

    def __call__(self, config: Any) -> Any:
        call = self.n_calls
        self.n_calls = call + 1
        if self.always or call in self.at_calls:
            raise ValueError(f"injected objective bug at call {call}")
        return self.inner(config)

    def __getattr__(self, name: str) -> Any:
        if name.startswith("__"):
            raise AttributeError(name)
        inner = self.__dict__.get("inner")
        if inner is None:
            raise AttributeError(name)
        return getattr(inner, name)


@dataclass
class HangingObjective:
    """Objective wrapper that hangs (then dies) at chosen call indices.

    Sleeps ``hang_seconds`` and raises :class:`InjectedFault` *without
    ever calling the inner objective* — deliberately: the guard's
    watchdog abandons the hung thread, and an abandoned thread that went
    on to evaluate would advance the simulator's RNG concurrently with
    the session, destroying determinism.  A hung call therefore consumes
    no inner-objective state at all.
    """

    inner: Any = field(repr=False)
    at_calls: tuple[int, ...] = ()
    hang_seconds: float = 0.5
    n_calls: int = field(default=0, repr=False, compare=False)

    def __call__(self, config: Any) -> Any:
        import time

        call = self.n_calls
        self.n_calls = call + 1
        if call in self.at_calls:
            time.sleep(self.hang_seconds)
            raise InjectedFault(f"injected hang at call {call}")
        return self.inner(config)

    def __getattr__(self, name: str) -> Any:
        if name.startswith("__"):
            raise AttributeError(name)
        inner = self.__dict__.get("inner")
        if inner is None:
            raise AttributeError(name)
        return getattr(inner, name)


@dataclass
class TransientObjective:
    """Objective wrapper raising transient failures on a fixed schedule.

    Raises :class:`repro.resilience.TransientEvaluationError` at the
    0-based call indices in ``fail_calls`` (see
    :func:`transient_schedule`).  The counter advances on retries too, so
    a retried call lands on the *next* index and succeeds unless the
    schedule says otherwise — natural flaky-infrastructure behaviour,
    fully deterministic.
    """

    inner: Any = field(repr=False)
    fail_calls: tuple[int, ...] = ()
    n_calls: int = field(default=0, repr=False, compare=False)

    def __call__(self, config: Any) -> Any:
        from repro.resilience.taxonomy import TransientEvaluationError

        call = self.n_calls
        self.n_calls = call + 1
        if call in self.fail_calls:
            raise TransientEvaluationError(f"injected transient failure at call {call}")
        return self.inner(config)

    def __getattr__(self, name: str) -> Any:
        if name.startswith("__"):
            raise AttributeError(name)
        inner = self.__dict__.get("inner")
        if inner is None:
            raise AttributeError(name)
        return getattr(inner, name)


def transient_schedule(seed: int, n_calls: int, rate: float = 0.15) -> tuple[int, ...]:
    """Seed-derived sorted call indices at which transient failures fire.

    Like :func:`choose_victims`, the schedule is part of the experiment's
    deterministic identity: the same seed produces the same flaky calls in
    serial, parallel, and resumed executions.
    """
    if n_calls < 0:
        raise ValueError("n_calls must be >= 0")
    if not 0.0 <= rate <= 1.0:
        raise ValueError("rate must be in [0, 1]")
    rng = np.random.default_rng(seed)
    return tuple(int(i) for i in np.nonzero(rng.random(n_calls) < rate)[0])


def truncate_tail(path: str, n_bytes: int = 7) -> None:
    """Chop ``n_bytes`` off the end of a file (a crash mid-append)."""
    if n_bytes < 0:
        raise ValueError("n_bytes must be >= 0")
    size = os.path.getsize(path)
    with open(path, "rb+") as fh:
        fh.truncate(max(0, size - n_bytes))


def choose_victims(seed: int, n_runs: int, n_victims: int = 1) -> list[int]:
    """Seed-derived set of run indices to sabotage (sorted, no repeats)."""
    if not 0 <= n_victims <= n_runs:
        raise ValueError("need 0 <= n_victims <= n_runs")
    rng = np.random.default_rng(seed)
    picked = rng.choice(n_runs, size=n_victims, replace=False)
    return sorted(int(i) for i in picked)


# ----------------------------------------------------------------------
# CI fault-smoke: kill-and-resume round trip
# ----------------------------------------------------------------------
def _smoke_specs(seed: int, n_runs: int, n_iterations: int):
    from repro.dbms.catalog import mysql_knob_space
    from repro.experiments.runner import build_session_specs
    from repro.parallel.spec import RegistryOptimizerFactory

    space = mysql_knob_space(
        "B",
        knob_names=["innodb_flush_log_at_trx_commit", "innodb_log_file_size"],
        seed=seed,
    )
    return build_session_specs(
        "SYSBENCH",
        space,
        RegistryOptimizerFactory("random"),
        n_runs=n_runs,
        n_iterations=n_iterations,
        n_initial=2,
        seed=seed,
    )


def main(argv: list[str] | None = None) -> int:
    """Kill a study mid-flight, resume it, and assert bit-equivalence.

    Phase 1 runs the study with a fault injector that keeps killing the
    victim run's worker while ``max_retries=0``, so the study ends with
    the victim failed and everyone else's completed results checkpointed
    — the state a study killed by the operator would leave behind.
    Phase 2 resumes from the checkpoint with the injector removed and
    must (a) re-execute *only* the victim and (b) reproduce the
    uninterrupted study's results fingerprint-for-fingerprint.
    """
    import argparse
    import json

    from repro.parallel.checkpoint import result_fingerprint
    from repro.parallel.executor import ParallelExecutor
    from repro.parallel.telemetry import attempt_records, read_telemetry

    parser = argparse.ArgumentParser(prog="repro.parallel.faults")
    parser.add_argument("--out-dir", required=True)
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--n-runs", type=int, default=4)
    parser.add_argument("--n-iterations", type=int, default=6)
    parser.add_argument("--n-workers", type=int, default=2)
    args = parser.parse_args(argv)

    os.makedirs(args.out_dir, exist_ok=True)
    checkpoint = os.path.join(args.out_dir, "checkpoint.jsonl")
    victim = choose_victims(args.seed, args.n_runs, 1)[0]
    print(f"fault-smoke: {args.n_runs} runs, victim run {victim}")

    baseline = ParallelExecutor(n_workers=1).run(
        _smoke_specs(args.seed, args.n_runs, args.n_iterations)
    )
    expected = [result_fingerprint(r) for r in baseline]

    interrupted = _smoke_specs(args.seed, args.n_runs, args.n_iterations)
    interrupted[victim].iteration_hook = WorkerKiller(
        at_iteration=2, arm_dir=args.out_dir, label=f"smoke-{victim}", once=False
    )
    phase1 = ParallelExecutor(
        n_workers=args.n_workers,
        max_retries=0,
        telemetry_path=os.path.join(args.out_dir, "telemetry-interrupted.jsonl"),
        checkpoint_path=checkpoint,
    ).run(interrupted)
    survivors = [r for r in phase1 if not r.failed]
    print(
        f"phase 1: pool broken by run {victim}; "
        f"{len(survivors)}/{args.n_runs} runs completed and checkpointed"
    )
    failures = []
    if not phase1[victim].failed:
        failures.append("victim was expected to fail in phase 1")
    if any(r.failed for i, r in enumerate(phase1) if i != victim):
        failures.append("a non-victim run failed in phase 1")

    resumed_telemetry = os.path.join(args.out_dir, "telemetry-resumed.jsonl")
    phase2 = ParallelExecutor(
        n_workers=args.n_workers,
        telemetry_path=resumed_telemetry,
        checkpoint_path=checkpoint,
    ).run(_smoke_specs(args.seed, args.n_runs, args.n_iterations))
    resumed = [result_fingerprint(r) for r in phase2]
    re_executed = sorted(
        {r["run_index"] for r in attempt_records(read_telemetry(resumed_telemetry))}
    )
    print(f"phase 2: re-executed runs {re_executed}, expected [{victim}]")
    if resumed != expected:
        mismatched = [i for i, (a, b) in enumerate(zip(expected, resumed)) if a != b]
        failures.append(f"resumed study diverged from baseline on runs {mismatched}")
    if re_executed != [victim]:
        failures.append(f"resume re-executed completed runs: {re_executed}")

    summary = {
        "victim": victim,
        "survivors_phase1": len(survivors),
        "re_executed": re_executed,
        "equivalent": resumed == expected,
        "failures": failures,
    }
    with open(os.path.join(args.out_dir, "summary.json"), "w", encoding="utf-8") as fh:
        json.dump(summary, fh, indent=2)
    for failure in failures:
        print(f"FAIL: {failure}")
    print("fault-smoke: OK" if not failures else "fault-smoke: FAILED")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
