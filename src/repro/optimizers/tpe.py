"""Tree-structured Parzen estimator (Bergstra et al., 2011).

TPE models ``p(theta | y)`` instead of ``p(y | theta)``: observations are
split into a "good" set (top ``gamma`` quantile) and a "bad" set, and each
gets a per-dimension density — 1-D Parzen (kernel) estimators for numeric
knobs and smoothed categorical histograms for categorical knobs.
Candidates are sampled from the good density ``l(x)`` and ranked by the
ratio ``l(x) / g(x)``, which is EI-optimal under TPE's assumptions.

Because the densities factor **per dimension**, TPE cannot represent
interactions between knobs — the weakness the paper identifies as the
reason TPE trails every other optimizer (§6.2.1).

Fast path (``accelerated=True``, the default; bit-identical): sampling
still walks the knobs in order (the RNG stream is part of the observable
behavior), but the KDE density evaluations — the hot part, a
``candidates x centers`` kernel matrix per dimension per side — are
stacked across all numeric dimensions into one broadcasted pass.  Every
numeric dimension shares the same center count (``n_good + 1`` resp.
``n_bad + 1``), which is what makes the stacking rectangular.
"""

from __future__ import annotations

import numpy as np

from repro.optimizers.base import History, Optimizer
from repro.space import CategoricalKnob, Configuration, ConfigurationSpace


class _NumericParzen:
    """1-D Gaussian-kernel density over unit-interval samples."""

    def __init__(self, samples: np.ndarray, rng: np.random.Generator) -> None:
        self.rng = rng
        # Always include a flat prior pseudo-sample at the center.
        self.centers = np.concatenate([np.asarray(samples, dtype=float), [0.5]])
        n = len(self.centers)
        spread = max(self.centers.std(), 0.05)
        self.bandwidth = max(1.06 * spread * n ** (-0.2), 0.03)

    def sample(self, size: int) -> np.ndarray:
        idx = self.rng.integers(0, len(self.centers), size=size)
        draws = self.centers[idx] + self.rng.normal(0.0, self.bandwidth, size=size)
        return np.clip(draws, 0.0, 1.0)

    def log_pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        diff = (x[:, None] - self.centers[None, :]) / self.bandwidth
        log_kernels = -0.5 * diff**2 - np.log(self.bandwidth * np.sqrt(2.0 * np.pi))
        max_log = log_kernels.max(axis=1, keepdims=True)
        return (
            max_log.ravel()
            + np.log(np.exp(log_kernels - max_log).sum(axis=1))
            - np.log(len(self.centers))
        )


def _batched_numeric_log_pdf(
    draws: np.ndarray, centers: np.ndarray, bandwidths: np.ndarray
) -> np.ndarray:
    """`_NumericParzen.log_pdf` for all numeric dimensions at once.

    ``draws`` is ``(n_candidates, n_dims)`` (one column per dimension),
    ``centers`` is ``(n_dims, n_centers)``, ``bandwidths`` ``(n_dims,)``.
    Returns ``(n_dims, n_candidates)``.  Row ``i`` is byte-identical to
    the per-dimension evaluation: every operation is elementwise except
    the max/sum reductions, which run over the same contiguous
    center axis in both forms.
    """
    diff = (draws.T[:, :, None] - centers[:, None, :]) / bandwidths[:, None, None]
    log_kernels = -0.5 * diff**2 - np.log(bandwidths * np.sqrt(2.0 * np.pi))[:, None, None]
    max_log = log_kernels.max(axis=2, keepdims=True)
    return (
        max_log[:, :, 0]
        + np.log(np.exp(log_kernels - max_log).sum(axis=2))
        - np.log(centers.shape[1])
    )


class _CategoricalParzen:
    """Smoothed categorical histogram."""

    def __init__(self, indices: np.ndarray, n_choices: int, rng: np.random.Generator) -> None:
        self.rng = rng
        counts = np.bincount(np.asarray(indices, dtype=int), minlength=n_choices).astype(float)
        counts += 1.0  # Laplace smoothing = uniform prior
        self.probs = counts / counts.sum()

    def sample(self, size: int) -> np.ndarray:
        return self.rng.choice(len(self.probs), size=size, p=self.probs)

    def log_pdf(self, idx: np.ndarray) -> np.ndarray:
        return np.log(self.probs[np.asarray(idx, dtype=int)])


class TPE(Optimizer):
    """Independent per-dimension good/bad Parzen densities + l/g ranking."""

    name = "tpe"

    def __init__(
        self,
        space: ConfigurationSpace,
        seed: int | None = None,
        gamma: float = 0.25,
        n_candidates: int = 64,
        min_observations: int = 4,
        accelerated: bool = True,
    ) -> None:
        super().__init__(space, seed)
        if not 0.0 < gamma < 1.0:
            raise ValueError("gamma must be in (0, 1)")
        self.gamma = gamma
        self.n_candidates = n_candidates
        self.min_observations = min_observations
        self.accelerated = accelerated

    def suggest(self, history: History) -> Configuration:
        if len(history) < self.min_observations:
            return self._dedupe(self._random_config(), history)
        X, y = self._training_data(history)
        n_good = max(1, int(np.ceil(self.gamma * len(y))))
        order = np.argsort(-y)  # maximization: best first
        good_idx, bad_idx = order[:n_good], order[n_good:]
        if len(bad_idx) == 0:
            return self._dedupe(self._random_config(), history)

        d = self.space.n_dims
        cand = np.empty((self.n_candidates, d))
        # Pass 1 — build the per-dimension densities and sample the
        # candidate columns, walking the knobs in declaration order so
        # the RNG stream matches the reference implementation exactly.
        # Density evaluation is deferred: categorical log-pdfs are cheap
        # lookups, numeric ones are collected for one broadcasted pass.
        contributions: list[tuple[np.ndarray, np.ndarray] | None] = [None] * d
        numeric_dims: list[int] = []
        numeric_draws: list[np.ndarray] = []
        numeric_good: list[_NumericParzen] = []
        numeric_bad: list[_NumericParzen] = []
        for j, knob in enumerate(self.space.knobs):
            if isinstance(knob, CategoricalKnob):
                to_idx = np.clip(
                    (X[:, j] * knob.n_choices).astype(int), 0, knob.n_choices - 1
                )
                good = _CategoricalParzen(to_idx[good_idx], knob.n_choices, self.rng)
                bad = _CategoricalParzen(to_idx[bad_idx], knob.n_choices, self.rng)
                draws = good.sample(self.n_candidates)
                contributions[j] = (good.log_pdf(draws), bad.log_pdf(draws))
                cand[:, j] = (draws + 0.5) / knob.n_choices
            else:
                good = _NumericParzen(X[good_idx, j], self.rng)
                bad = _NumericParzen(X[bad_idx, j], self.rng)
                draws = good.sample(self.n_candidates)
                cand[:, j] = draws
                numeric_dims.append(j)
                numeric_draws.append(draws)
                numeric_good.append(good)
                numeric_bad.append(bad)

        # Pass 2 — numeric densities: one stacked kernel-matrix pass per
        # side when accelerated, a per-dimension loop otherwise.
        if numeric_dims:
            if self.accelerated:
                draws_mat = np.stack(numeric_draws, axis=1)
                log_l_rows = _batched_numeric_log_pdf(
                    draws_mat,
                    np.stack([p.centers for p in numeric_good]),
                    np.array([p.bandwidth for p in numeric_good]),
                )
                log_g_rows = _batched_numeric_log_pdf(
                    draws_mat,
                    np.stack([p.centers for p in numeric_bad]),
                    np.array([p.bandwidth for p in numeric_bad]),
                )
                for pos, j in enumerate(numeric_dims):
                    contributions[j] = (log_l_rows[pos], log_g_rows[pos])
            else:
                for pos, j in enumerate(numeric_dims):
                    contributions[j] = (
                        numeric_good[pos].log_pdf(numeric_draws[pos]),
                        numeric_bad[pos].log_pdf(numeric_draws[pos]),
                    )

        # Pass 3 — accumulate in knob order (the reference summation
        # order, kept for bit identity).
        log_l = np.zeros(self.n_candidates)
        log_g = np.zeros(self.n_candidates)
        for j in range(d):
            contribution = contributions[j]
            assert contribution is not None
            log_l += contribution[0]
            log_g += contribution[1]
        choice = self.space.decode(cand[int(np.argmax(log_l - log_g))])
        return self._dedupe(choice, history)
