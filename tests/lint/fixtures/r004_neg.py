"""True negatives for R004: conforming optimizers and estimators."""

import numpy as np


class Optimizer:
    def __init__(self, space, seed=None):
        self.space = space
        self.seed = seed
        self.rng = np.random.default_rng(seed)


class GoodOptimizer(Optimizer):
    def __init__(self, space, seed=None, population=8):
        super().__init__(space, seed)
        self.population = population

    def suggest(self, history):
        return history

    def observe(self, observation):
        return observation


class TransitiveOptimizer(GoodOptimizer):
    def suggest(self, history):
        return history


class SeededEstimator:
    def __init__(self, n_trees, seed=None):
        self.n_trees = n_trees
        self.seed = seed

    def fit(self, X, y):
        rng = np.random.default_rng(self.seed)
        del y
        return rng.permutation(len(X))


class DeterministicEstimator:
    """No randomness anywhere: the seed requirement does not apply."""

    def __init__(self, alpha):
        self.alpha = alpha

    def fit(self, X, y):
        return np.asarray(X) * self.alpha + np.mean(y)
