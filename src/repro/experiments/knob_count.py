"""Knob-count experiments: Figure 5 and Figure 6 (paper §5.3)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dbms.catalog import mysql_knob_space
from repro.dbms.server import MySQLServer
from repro.experiments.runner import median_improvement, run_sessions
from repro.experiments.scale import Scale, bench_scale
from repro.experiments.spaces import shap_ranked_knobs
from repro.optimizers import VanillaBO
from repro.optimizers.base import History
from repro.parallel import RegistryOptimizerFactory
from repro.selection.incremental import DecrementalTuner, IncrementalTuner
from repro.tuning.metrics import improvement_over_default
from repro.tuning.objective import DatabaseObjective


@dataclass
class KnobCountPoint:
    """One Figure 5 point: improvement and cost at a knob count."""

    workload: str
    n_knobs: int
    improvement: float
    tuning_cost_iterations: int


def knob_count_sweep(
    workloads: tuple[str, ...] = ("SYSBENCH", "JOB"),
    knob_counts: tuple[int, ...] = (5, 10, 20, 50, 197),
    scale: Scale | None = None,
    instance: str = "B",
    seed: int = 17,
    n_workers: int = 1,
) -> list[KnobCountPoint]:
    """Figure 5: vanilla-BO improvement/cost vs SHAP-ranked knob count.

    The tuning cost is the paper's: iterations needed to first reach the
    best configuration found within the session.
    """
    scale = scale or bench_scale()
    full = mysql_knob_space(instance, seed=seed)
    points: list[KnobCountPoint] = []
    for workload in workloads:
        ranked = shap_ranked_knobs(workload, instance, scale.n_pool_samples, seed)
        for k in knob_counts:
            space = full.subspace(ranked[:k], seed=seed) if k < full.n_dims else full
            histories = run_sessions(
                workload,
                space,
                RegistryOptimizerFactory("vanilla_bo"),
                n_runs=scale.n_runs,
                n_iterations=scale.knob_count_iterations,
                n_initial=scale.n_initial,
                instance=instance,
                seed=seed,
                n_workers=n_workers,
            )
            costs = []
            for h in histories:
                try:
                    best = h.best().score
                except ValueError:
                    costs.append(scale.knob_count_iterations)
                    continue
                costs.append(h.iterations_to_reach(best) or scale.knob_count_iterations)
            points.append(
                KnobCountPoint(
                    workload=workload,
                    n_knobs=k,
                    improvement=median_improvement(histories, workload, instance),
                    tuning_cost_iterations=int(np.median(costs)),
                )
            )
    return points


@dataclass
class IncrementalResult:
    """One Figure 6 curve: best improvement trajectory of a strategy."""

    workload: str
    strategy: str
    trajectory: list[float]  # best improvement after each iteration
    final_improvement: float


def _improvement_trajectory(history: History, workload: str, instance: str) -> list[float]:
    server = MySQLServer(workload, instance, noise=False)
    default = server.default_objective()
    direction = server.objective_direction
    sign = -1.0 if direction == "min" else 1.0
    out = []
    for score in history.best_score_trajectory():
        if np.isnan(score):
            out.append(0.0)
        else:
            out.append(improvement_over_default(sign * score, default, direction))
    return out


def incremental_comparison(
    workloads: tuple[str, ...] = ("SYSBENCH", "JOB"),
    scale: Scale | None = None,
    instance: str = "B",
    seed: int = 17,
    n_workers: int = 1,
) -> list[IncrementalResult]:
    """Figure 6: incremental increase/decrease vs fixed top-5/top-20.

    All strategies use vanilla BO and the SHAP ranking; the increasing
    heuristic follows OtterTune (start small, widen periodically), the
    decreasing one follows Tuneful (start wide, halve by re-ranked
    importance).
    """
    scale = scale or bench_scale()
    total = scale.knob_count_iterations
    step = max(10, total // 5)
    full = mysql_knob_space(instance, seed=seed)
    results: list[IncrementalResult] = []
    for workload in workloads:
        ranked = shap_ranked_knobs(workload, instance, scale.n_pool_samples, seed)

        def objective_factory(space, _wl=workload):
            return DatabaseObjective(MySQLServer(_wl, instance, seed=seed), space)

        def optimizer_factory(space, phase):
            return VanillaBO(space, seed=seed + phase)

        strategies: dict[str, History] = {}
        strategies["increasing"] = IncrementalTuner(
            objective_factory,
            ranked,
            optimizer_factory,
            start_knobs=4,
            step_knobs=4,
            step_iterations=step,
            max_knobs=40,
            base_space=full,
            seed=seed,
        ).run(total)
        strategies["decreasing"] = DecrementalTuner(
            objective_factory,
            ranked[:40],
            optimizer_factory,
            final_knobs=5,
            step_iterations=step,
            base_space=full,
            seed=seed,
        ).run(total)
        for k, label in ((5, "fixed top-5"), (20, "fixed top-20")):
            history = run_sessions(
                workload,
                full.subspace(ranked[:k], seed=seed),
                RegistryOptimizerFactory("vanilla_bo"),
                n_runs=1,
                n_iterations=total,
                n_initial=scale.n_initial,
                instance=instance,
                seed=seed,
                n_workers=n_workers,
            )[0]
            strategies[label] = history

        for strategy, history in strategies.items():
            trajectory = _improvement_trajectory(history, workload, instance)
            results.append(
                IncrementalResult(
                    workload=workload,
                    strategy=strategy,
                    trajectory=trajectory,
                    final_improvement=trajectory[-1] if trajectory else 0.0,
                )
            )
    return results
