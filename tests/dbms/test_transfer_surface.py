"""Cross-workload surface properties that the transfer study relies on.

RGPE/workload-mapping only help if similar workloads share optimal
regions and the internal-metric signatures separate workload families —
these tests pin those premises.
"""

import numpy as np
import pytest

from repro.dbms.metrics import normalized_metrics_vector
from repro.dbms.server import MySQLServer

GB = 1024**3


def _signature(workload: str) -> np.ndarray:
    server = MySQLServer(workload, "B", noise=False)
    result = server.evaluate(server.default_configuration())
    return normalized_metrics_vector(result.metrics)


class TestMetricSignatures:
    def test_similar_oltp_workloads_are_closer_than_olap(self):
        tpcc = _signature("TPC-C")
        seats = _signature("SEATS")
        job = _signature("JOB")
        assert np.linalg.norm(tpcc - seats) < np.linalg.norm(tpcc - job)

    def test_tiny_workloads_cluster(self):
        voter = _signature("Voter")
        sibench = _signature("SIBench")
        sysbench = _signature("SYSBENCH")
        assert np.linalg.norm(voter - sibench) < np.linalg.norm(voter - sysbench)


class TestSharedOptimalRegions:
    def test_durability_relaxation_helps_all_write_oltp(self):
        for name in ("TPC-C", "SYSBENCH", "Twitter", "SEATS", "Smallbank"):
            server = MySQLServer(name, "B", noise=False)
            d = server.default_configuration()
            base = server.evaluate(d).objective
            relaxed = server.evaluate(
                d.with_values(innodb_flush_log_at_trx_commit="0")
            ).objective
            assert relaxed > base, name

    def test_log_sizing_helps_write_heavy_most(self):
        def gain(name):
            server = MySQLServer(name, "B", noise=False)
            d = server.default_configuration()
            base = server.evaluate(d).objective
            tuned = server.evaluate(
                d.with_values(innodb_log_file_size=4 * GB)
            ).objective
            return tuned / base - 1.0

        assert gain("TPC-C") > gain("TATP")  # 92% writes vs 60%

    def test_workload_scale_differences_are_large(self):
        """Raw objective scales differ by orders of magnitude across
        workloads — the reason transfer frameworks must standardize."""
        tiny = MySQLServer("Voter", "B", noise=False)
        big = MySQLServer("TPC-C", "B", noise=False)
        v = tiny.evaluate(tiny.default_configuration()).objective
        t = big.evaluate(big.default_configuration()).objective
        assert v / t > 5.0
