"""Driver infrastructure: incremental cache, baseline, suppressions, pool."""

import shutil
from pathlib import Path

from repro.lint import LintConfig
from repro.lint.program.baseline import Baseline
from repro.lint.program.driver import run_program_analysis
from repro.lint.program.graph import module_name_for

FIXTURES = Path(__file__).parent / "fixtures" / "program"


def copy_pkg(tmp_path: Path, name: str) -> Path:
    dst = tmp_path / name
    shutil.copytree(FIXTURES / name, dst)
    return dst


def run(paths, tmp_path, **kwargs):
    kwargs.setdefault("cache_dir", tmp_path / "cache")
    return run_program_analysis(paths, LintConfig(), **kwargs)


# ----------------------------------------------------------------------
# incremental cache
# ----------------------------------------------------------------------
def test_warm_cache_reanalyzes_nothing(tmp_path):
    pkg = copy_pkg(tmp_path, "seedpkg")
    cold = run([pkg], tmp_path)
    assert cold.stats.n_analyzed == 3 and cold.stats.n_hits == 0
    warm = run([pkg], tmp_path)
    assert warm.stats.n_analyzed == 0 and warm.stats.n_hits == 3
    assert [f.to_dict() for f in warm.findings] == [
        f.to_dict() for f in cold.findings
    ]


def test_touching_one_file_reanalyzes_only_that_file(tmp_path):
    pkg = copy_pkg(tmp_path, "seedpkg")
    run([pkg], tmp_path)
    dirty = pkg / "seeds.py"
    dirty.write_text(dirty.read_text() + "\n# cache-busting comment\n")
    result = run([pkg], tmp_path)
    assert result.stats.analyzed == [str(dirty)]
    assert result.stats.n_hits == 2


def test_semantic_edit_through_warm_cache_updates_program_findings(tmp_path):
    """A one-file edit must flow into the cross-module verdicts even when
    every other file comes from the cache."""
    pkg = copy_pkg(tmp_path, "seedpkg")
    before = run([pkg], tmp_path)
    assert any(f.rule == "R010" for f in before.findings)
    flow = pkg / "flow.py"
    flow.write_text(
        flow.read_text().replace(
            "value = unrelated_value()", "value = derive_seed(seed)"
        )
    )
    after = run([pkg], tmp_path)
    assert not any(f.rule == "R010" for f in after.findings)
    assert Path(after.stats.analyzed[0]).name == "flow.py"


def test_no_cache_flag_disables_reads_and_writes(tmp_path):
    pkg = copy_pkg(tmp_path, "seedpkg")
    run([pkg], tmp_path, use_cache=False)
    assert not (tmp_path / "cache").exists()
    result = run([pkg], tmp_path, use_cache=False)
    assert result.stats.n_hits == 0 and result.stats.n_analyzed == 3


def test_corrupt_cache_entry_degrades_to_cold_analysis(tmp_path):
    pkg = copy_pkg(tmp_path, "seedpkg")
    clean = run([pkg], tmp_path)
    for entry in (tmp_path / "cache").rglob("*.json"):
        entry.write_text("{ not json")
    result = run([pkg], tmp_path)
    assert result.stats.n_analyzed == 3
    assert [f.to_dict() for f in result.findings] == [
        f.to_dict() for f in clean.findings
    ]


def test_pool_and_serial_agree(tmp_path):
    paths = [copy_pkg(tmp_path, n) for n in ("seedpkg", "recpkg", "optpkg")]
    serial = run(paths, tmp_path, use_cache=False, jobs=1)
    pooled = run(paths, tmp_path, use_cache=False, jobs=4)
    assert [f.to_dict() for f in serial.findings] == [
        f.to_dict() for f in pooled.findings
    ]


# ----------------------------------------------------------------------
# baseline
# ----------------------------------------------------------------------
def test_baseline_round_trip_silences_then_new_finding_escapes(tmp_path):
    pkg = copy_pkg(tmp_path, "seedpkg")
    first = run([pkg], tmp_path)
    assert first.findings
    baseline_path = tmp_path / "baseline.json"
    Baseline.from_findings(first.findings, first.sources).save(baseline_path)

    clean = run([pkg], tmp_path, baseline=Baseline.load(baseline_path))
    assert clean.findings == []
    assert len(clean.baselined) == len(first.findings)
    assert clean.stale_baseline_entries == 0

    flow = pkg / "flow.py"
    flow.write_text(
        flow.read_text()
        + "\n\nclass NewDropper:\n    def __init__(self, seed=None):\n        self.extra = 1\n"
    )
    escaped = run([pkg], tmp_path, baseline=Baseline.load(baseline_path))
    assert [f.rule for f in escaped.findings] == ["R011"]
    assert "NewDropper" in escaped.findings[0].message


def test_baseline_duplicate_line_content_does_not_hide_second_defect(tmp_path):
    """Entries carry an occurrence ordinal: a *second* finding anchored to
    an identical source line is new and must escape."""
    pkg = copy_pkg(tmp_path, "seedpkg")
    first = run([pkg], tmp_path)
    baseline_path = tmp_path / "baseline.json"
    Baseline.from_findings(first.findings, first.sources).save(baseline_path)

    flow = pkg / "flow.py"
    # Clone DroppingSampler under a new name: its `def __init__` line has
    # byte-identical content to the baselined one.
    flow.write_text(
        flow.read_text()
        + "\n\nclass DroppingSamplerTwo:\n"
        + "    def __init__(self, seed=None):\n"
        + "        self._stashed_seed = seed\n"
    )
    result = run([pkg], tmp_path, baseline=Baseline.load(baseline_path))
    assert [f.rule for f in result.findings] == ["R011"]
    assert "DroppingSamplerTwo" in result.findings[0].message


def test_stale_baseline_entries_are_counted(tmp_path):
    pkg = copy_pkg(tmp_path, "seedpkg")
    first = run([pkg], tmp_path)
    baseline_path = tmp_path / "baseline.json"
    Baseline.from_findings(first.findings, first.sources).save(baseline_path)
    # Fix one of the baselined defects.
    flow = pkg / "flow.py"
    flow.write_text(
        flow.read_text().replace(
            "self._stashed_seed = seed",
            "self.rng_seed_source = __import__('numpy').random.default_rng(seed)",
        )
    )
    result = run([pkg], tmp_path, baseline=Baseline.load(baseline_path))
    assert result.stale_baseline_entries >= 1


# ----------------------------------------------------------------------
# suppressions & config on program findings
# ----------------------------------------------------------------------
def test_program_findings_honor_inline_suppressions(tmp_path):
    pkg = tmp_path / "supp_pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text(
        "class Dropper:\n"
        "    def __init__(self, seed=None):  "
        "# reprolint: disable=R011 kept on purpose for the fixture\n"
        "        self.extra = 1\n"
        "\n"
        "\n"
        "class LoudDropper:\n"
        "    def __init__(self, seed=None):\n"
        "        self.extra = 2\n"
    )
    result = run([pkg], tmp_path, use_cache=False)
    report = next(r for r in result.reports if r.path.endswith("mod.py"))
    assert [f.rule for f in report.findings] == ["R011"]
    assert "LoudDropper" in report.findings[0].message
    assert [f.rule for f in report.suppressed] == ["R011"]
    assert "Dropper" in report.suppressed[0].message


def test_program_rules_respect_per_path_ignores(tmp_path):
    pkg = copy_pkg(tmp_path, "seedpkg")
    config = LintConfig(
        per_path_ignores={"seedpkg": ["R010", "R011"]}, root=tmp_path
    )
    result = run_program_analysis([pkg], config, use_cache=False)
    assert not any(f.rule in ("R010", "R011") for f in result.findings)


# ----------------------------------------------------------------------
# module naming
# ----------------------------------------------------------------------
def test_module_name_walks_init_chain():
    module, package, is_init = module_name_for(FIXTURES / "seedpkg" / "flow.py")
    assert module == "seedpkg.flow" and package == "seedpkg" and not is_init
    module, package, is_init = module_name_for(FIXTURES / "seedpkg" / "__init__.py")
    assert module == "seedpkg" and is_init


def test_unreadable_file_yields_e001_not_crash(tmp_path):
    target = tmp_path / "undecodable.py"
    target.write_bytes(b"\xff\xfe\x00\x00 garbage \x00")
    result = run([tmp_path], tmp_path, use_cache=False)
    rules = [f.rule for f in result.findings]
    assert rules.count("E001") == 1
