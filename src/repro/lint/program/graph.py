"""The whole-program index: modules, symbols, classes, taint fixpoints.

Built from per-file :class:`~repro.lint.program.summary.FileSummary`
objects, one index per *analysis scope* (a top-level package, or a
directory of loose scripts).  It answers the cross-module questions the
program rules ask:

- symbol resolution across re-exports (``repro.parallel.derive_run_seeds``
  -> ``repro.parallel.spec.derive_run_seeds``);
- the transitive set of ``Optimizer`` subclasses, wherever they live;
- the global fixpoint of *seed-returning* and *clock-returning*
  functions, which upgrades per-file "depends on callee X" taint
  verdicts into definite ones;
- the union of attribute names ever read, so a seed stored to an
  attribute nobody reads still counts as dropped.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.program.summary import ClassFacts, FileSummary, FunctionFacts


# ----------------------------------------------------------------------
# module naming
# ----------------------------------------------------------------------
def module_name_for(path: Path) -> tuple[str, str, bool]:
    """``(dotted module, top-level package, is_init)`` for a file.

    Walks up while ``__init__.py`` exists, so ``src/repro/lint/engine.py``
    maps to ``repro.lint.engine`` regardless of where the tree is rooted.
    Files outside any package get their stem as module name and ``""`` as
    package — they can still contribute and receive findings, but no one
    can import from them by dotted name.
    """
    path = Path(path)
    is_init = path.name == "__init__.py"
    parts: list[str] = [] if is_init else [path.stem]
    current = path.parent
    while (current / "__init__.py").exists():
        parts.append(current.name)
        parent = current.parent
        if parent == current:
            break
        current = parent
    parts.reverse()
    if not parts:
        return path.stem, "", is_init
    return ".".join(parts), parts[0], is_init


def group_by_scope(summaries: list[FileSummary]) -> list[list[FileSummary]]:
    """Partition summaries into analysis scopes.

    Files of the same top-level package form one scope wherever they sit
    on disk; loose files (no package) are grouped by parent directory so
    sibling scripts can still cross-reference.
    """
    groups: dict[str, list[FileSummary]] = {}
    for summary in summaries:
        if summary.package:
            key = f"pkg:{summary.package}"
        else:
            key = f"dir:{os.path.dirname(os.path.abspath(summary.path))}"
        groups.setdefault(key, []).append(summary)
    return [groups[key] for key in sorted(groups)]


# ----------------------------------------------------------------------
# the index
# ----------------------------------------------------------------------
@dataclass
class IndexedClass:
    canonical: str  # "module.ClassName"
    summary: FileSummary
    facts: ClassFacts
    resolved_bases: list[str] = field(default_factory=list)


@dataclass
class IndexedFunction:
    canonical: str  # "module.func" / "module.Class.method"
    summary: FileSummary
    facts: FunctionFacts
    cls: str | None = None


class ProgramIndex:
    """Cross-module resolution over one analysis scope."""

    def __init__(self, summaries: list[FileSummary]) -> None:
        self.summaries = list(summaries)
        self.by_module: dict[str, FileSummary] = {}
        #: alias edges: "module.local_name" -> target dotted path
        self.symbols: dict[str, str] = {}
        self.classes: dict[str, IndexedClass] = {}
        self.functions: dict[str, IndexedFunction] = {}
        #: terminal name -> canonical function names
        self.by_terminal: dict[str, list[str]] = {}
        self.attr_loads: set[str] = set()

        for summary in self.summaries:
            if summary.module:
                self.by_module[summary.module] = summary
            self.attr_loads.update(summary.attr_loads)
            prefix = summary.module + "." if summary.module else ""
            for local, target in summary.aliases.items():
                self.symbols[prefix + local] = target
            for facts in summary.functions:
                self._add_function(prefix + facts.qualname, summary, facts, None)
            for cls in summary.classes:
                canonical = prefix + cls.name
                self.classes[canonical] = IndexedClass(canonical, summary, cls)
                for name, method in cls.methods.items():
                    self._add_function(
                        f"{canonical}.{name}", summary, method, cls.name
                    )

        for indexed in self.classes.values():
            indexed.resolved_bases = [
                self._resolve_base(indexed.summary, base)
                for base in indexed.facts.bases
            ]

        self._seed_fns: set[str] | None = None
        self._clock_fns: set[str] | None = None

    def _add_function(
        self,
        canonical: str,
        summary: FileSummary,
        facts: FunctionFacts,
        cls: str | None,
    ) -> None:
        self.functions[canonical] = IndexedFunction(canonical, summary, facts, cls)
        self.by_terminal.setdefault(facts.name, []).append(canonical)

    # ------------------------------------------------------------------
    def resolve(self, dotted: str) -> str:
        """Follow alias/re-export edges to a terminal dotted name.

        Handles both whole-name aliases (``repro.optimizers.Optimizer``
        re-exported from ``.base``) and aliased prefixes (``pkg.sub.f``
        where ``pkg.sub`` is itself a re-export), longest prefix first.
        """
        seen: set[str] = set()
        current = dotted
        while current not in seen:
            seen.add(current)
            if current in self.symbols:
                current = self.symbols[current]
                continue
            head = current
            rewritten = False
            while "." in head:
                head = head.rpartition(".")[0]
                if head in self.symbols:
                    current = self.symbols[head] + current[len(head):]
                    rewritten = True
                    break
            if not rewritten:
                break
        return current

    def _resolve_base(self, summary: FileSummary, base: str) -> str:
        """Canonicalize a raw class-base spelling from one file."""
        root, _, rest = base.partition(".")
        target = summary.aliases.get(root)
        if target is not None:
            dotted = f"{target}.{rest}" if rest else target
        elif summary.module and not rest:
            dotted = f"{summary.module}.{base}"
        else:
            dotted = base
        return self.resolve(dotted)

    # ------------------------------------------------------------------
    def optimizer_classes(self) -> dict[str, IndexedClass]:
        """Transitive subclasses of an Optimizer root, program-wide.

        Roots: any class literally named ``Optimizer`` or with an
        ``*Optimizer`` suffix (matching the per-file R004 convention, so
        fixture packages need no ``repro`` import to participate).
        """
        roots = {
            canonical
            for canonical, indexed in self.classes.items()
            if indexed.facts.name == "Optimizer"
            or indexed.facts.name.endswith("Optimizer")
        }
        members = set(roots)
        changed = True
        while changed:
            changed = False
            for canonical, indexed in self.classes.items():
                if canonical in members:
                    continue
                for base in indexed.resolved_bases:
                    if base in members or base.split(".")[-1] == "Optimizer":
                        members.add(canonical)
                        changed = True
                        break
        return {c: self.classes[c] for c in sorted(members)}

    def method_of(self, indexed: IndexedClass, name: str) -> FunctionFacts | None:
        """Resolve a method through the (analyzed) base-class chain."""
        seen: set[str] = set()
        queue = [indexed.canonical]
        while queue:
            canonical = queue.pop(0)
            if canonical in seen or canonical not in self.classes:
                continue
            seen.add(canonical)
            cls = self.classes[canonical]
            if name in cls.facts.methods:
                return cls.facts.methods[name]
            queue.extend(cls.resolved_bases)
        return None

    # ------------------------------------------------------------------
    # taint fixpoints
    # ------------------------------------------------------------------
    def _dep_matches(self, dep: str, tainted: set[str], lenient: bool) -> bool:
        if dep.startswith("?"):
            if not lenient:
                return False
            terminal = dep[1:]
            return any(c in tainted for c in self.by_terminal.get(terminal, ()))
        resolved = self.resolve(dep)
        if resolved in tainted:
            return True
        if lenient:
            terminal = resolved.rsplit(".", 1)[-1]
            return any(c in tainted for c in self.by_terminal.get(terminal, ()))
        return False

    def _fixpoint(self, color: str, lenient: bool) -> set[str]:
        definite_attr = f"return_{color}_definite"
        deps_attr = f"return_{color}_deps"
        tainted = {
            canonical
            for canonical, fn in self.functions.items()
            if getattr(fn.facts, definite_attr)
        }
        changed = True
        while changed:
            changed = False
            for canonical, fn in self.functions.items():
                if canonical in tainted:
                    continue
                deps = getattr(fn.facts, deps_attr)
                if any(self._dep_matches(d, tainted, lenient) for d in deps):
                    tainted.add(canonical)
                    changed = True
        return tainted

    def seed_returning_functions(self) -> set[str]:
        """Functions whose return value carries seed provenance.

        Matched *leniently* (by terminal name when the callee could not
        be resolved): over-tainting only silences R010, never pages.
        """
        if self._seed_fns is None:
            self._seed_fns = self._fixpoint("seed", lenient=True)
        return self._seed_fns

    def clock_returning_functions(self) -> set[str]:
        """Functions whose return value derives from the wall clock.

        Matched *strictly* (resolved names only): a lenient match here
        would page humans about flows that may not exist.
        """
        if self._clock_fns is None:
            self._clock_fns = self._fixpoint("clock", lenient=False)
        return self._clock_fns

    def seed_dep_tainted(self, deps: list[str]) -> bool:
        tainted = self.seed_returning_functions()
        return any(self._dep_matches(d, tainted, lenient=True) for d in deps)

    def clock_dep_tainted(self, deps: list[str]) -> bool:
        tainted = self.clock_returning_functions()
        return any(self._dep_matches(d, tainted, lenient=False) for d in deps)

    # ------------------------------------------------------------------
    def all_functions(self) -> list[IndexedFunction]:
        return [self.functions[name] for name in sorted(self.functions)]
