"""Rule base class and the global rule registry."""

from __future__ import annotations

from typing import Callable, Iterable, Type

from repro.lint.context import FileContext
from repro.lint.findings import Finding


class Rule:
    """One lint rule: an id, a human summary, and a per-file check.

    Subclasses set the class attributes and implement :meth:`check`, which
    yields :class:`Finding` objects for one parsed file.  Rules must be
    stateless across files — the engine instantiates each rule once per
    run and calls ``check`` per file.
    """

    #: Stable identifier, ``R`` + three digits (used in suppressions/config).
    id: str = ""
    #: Short kebab-case name shown in ``--list-rules``.
    name: str = ""
    #: One-line rationale shown in ``--list-rules`` and docs.
    summary: str = ""
    #: ``"file"`` rules run per file on a :class:`FileContext`;
    #: ``"program"`` rules run once over the whole-program index (see
    #: :mod:`repro.lint.program`) and are skipped by the per-file engine.
    scope: str = "file"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def finding(self, ctx: FileContext, node, message: str) -> Finding:
        """Build a finding anchored at an AST node."""
        return Finding(
            rule=self.id,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


class ProgramRule(Rule):
    """A rule that needs the whole-program index rather than one file.

    Subclasses implement :meth:`check_program`; the per-file engine skips
    them (``scope == "program"``) and the program driver runs them after
    every file summary is available.
    """

    scope = "program"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def check_program(self, index) -> Iterable[Finding]:
        """Yield findings over a :class:`repro.lint.program.ProgramIndex`."""
        raise NotImplementedError


#: Registry of all known rules, keyed by rule id.
RULES: dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.id or not cls.name:
        raise ValueError(f"rule {cls.__name__} must define `id` and `name`")
    if cls.id in RULES:
        raise ValueError(f"duplicate rule id {cls.id}")
    RULES[cls.id] = cls
    return cls


def rule_catalog() -> list[tuple[str, str, str]]:
    """``(id, name, summary)`` triples, sorted by rule id."""
    return sorted((rid, r.name, r.summary) for rid, r in RULES.items())


def walk_with_parents(tree) -> Iterable[tuple[object, object | None]]:
    """Yield ``(node, parent)`` pairs in document order."""
    import ast

    stack: list[tuple[ast.AST, ast.AST | None]] = [(tree, None)]
    while stack:
        node, parent = stack.pop()
        yield node, parent
        children = list(ast.iter_child_nodes(node))
        children.reverse()
        for child in children:
            stack.append((child, node))


Checker = Callable[[FileContext], Iterable[Finding]]
