"""Figure 9: per-iteration algorithm overhead over the medium JOB space.

Paper shape: GP-based optimizers (vanilla/mixed-kernel BO) show cubic
overhead growth with iteration count; GA is cheapest; SMAC, TPE, DDPG
stay near-constant; TuRBO is comparable to SMAC.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.experiments import overhead_comparison


def test_fig9_algorithm_overhead(benchmark, scale):
    checkpoints = (50, 100, 150, 200)
    rows = run_once(
        benchmark,
        lambda: overhead_comparison(
            workload="JOB", checkpoints=checkpoints, scale=scale
        ),
    )
    print()
    print(
        format_table(
            ["Optimizer"] + [f"iter {c} (s)" for c in checkpoints] + ["total (s)"],
            [
                [r.optimizer]
                + [r.checkpoints.get(c, float("nan")) for c in checkpoints]
                + [r.total_seconds]
                for r in rows
            ],
            title="Figure 9: algorithm overhead per iteration",
        )
    )
    by_name = {r.optimizer: r for r in rows}
    cps = sorted(by_name["vanilla_bo"].checkpoints)
    first, last = cps[0], cps[-1]
    # GP overhead grows substantially with history size...
    assert by_name["vanilla_bo"].checkpoints[last] > 2.0 * by_name["vanilla_bo"].checkpoints[first]
    # ...while GA stays cheap, and far below the GP methods in total.
    assert by_name["ga"].total_seconds < 0.2 * by_name["vanilla_bo"].total_seconds
    assert by_name["ga"].total_seconds < 0.2 * by_name["mixed_kernel_bo"].total_seconds
