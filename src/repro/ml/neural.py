"""Minimal neural-network substrate for the DDPG optimizer.

Implements dense layers with manual backprop, common activations, the Adam
optimizer, and an :class:`MLP` container exposing input gradients — DDPG's
actor update needs ``dQ/da`` propagated through the critic.  Architecture
sizes follow CDBTune (paper §4.2).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return (x > 0.0).astype(float)


def tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def tanh_grad(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return 1.0 - y**2


def sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def sigmoid_grad(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return y * (1.0 - y)


def identity(x: np.ndarray) -> np.ndarray:
    return x


def identity_grad(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return np.ones_like(x)


_ACTIVATIONS: dict[str, tuple[Callable, Callable]] = {
    "relu": (relu, relu_grad),
    "tanh": (tanh, tanh_grad),
    "sigmoid": (sigmoid, sigmoid_grad),
    "linear": (identity, identity_grad),
}


class DenseLayer:
    """Fully connected layer with He/Xavier initialization."""

    def __init__(self, n_in: int, n_out: int, activation: str, rng: np.random.Generator) -> None:
        if activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}")
        self.activation = activation
        self._act, self._act_grad = _ACTIVATIONS[activation]
        scale = np.sqrt(2.0 / n_in) if activation == "relu" else np.sqrt(1.0 / n_in)
        self.W = rng.normal(0.0, scale, size=(n_in, n_out))
        self.b = np.zeros(n_out)
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)
        self._x: np.ndarray | None = None
        self._z: np.ndarray | None = None
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        self._z = x @ self.W + self.b
        self._y = self._act(self._z)
        return self._y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Accumulate parameter gradients; return gradient w.r.t. input."""
        if self._x is None or self._z is None or self._y is None:
            raise RuntimeError("forward must be called before backward")
        dz = grad_out * self._act_grad(self._z, self._y)
        self.dW += self._x.T @ dz
        self.db += dz.sum(axis=0)
        return dz @ self.W.T

    def zero_grad(self) -> None:
        self.dW.fill(0.0)
        self.db.fill(0.0)

    @property
    def params(self) -> list[np.ndarray]:
        return [self.W, self.b]

    @property
    def grads(self) -> list[np.ndarray]:
        return [self.dW, self.db]


class MLP:
    """A stack of dense layers with a uniform training interface."""

    def __init__(
        self,
        layer_sizes: Sequence[int],
        activations: Sequence[str],
        seed: int | None = None,
    ) -> None:
        if len(layer_sizes) < 2:
            raise ValueError("need at least input and output sizes")
        if len(activations) != len(layer_sizes) - 1:
            raise ValueError("one activation per layer required")
        rng = np.random.default_rng(seed)
        self.layers = [
            DenseLayer(layer_sizes[i], layer_sizes[i + 1], activations[i], rng)
            for i in range(len(layer_sizes) - 1)
        ]

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=float))
        for layer in self.layers:
            x = layer.forward(x)
        return x

    __call__ = forward

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backpropagate; returns the gradient w.r.t. the network input."""
        grad = np.atleast_2d(np.asarray(grad_out, dtype=float))
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    @property
    def params(self) -> list[np.ndarray]:
        return [p for layer in self.layers for p in layer.params]

    @property
    def grads(self) -> list[np.ndarray]:
        return [g for layer in self.layers for g in layer.grads]

    def copy_weights_from(self, other: "MLP", tau: float = 1.0) -> None:
        """Polyak-average weights from another network of identical shape.

        ``tau=1`` copies hard; smaller tau gives DDPG's soft target update
        ``w <- tau * w_source + (1 - tau) * w``.
        """
        if not 0.0 < tau <= 1.0:
            raise ValueError("tau must be in (0, 1]")
        for mine, theirs in zip(self.params, other.params):
            if mine.shape != theirs.shape:
                raise ValueError("network shapes differ")
            mine *= 1.0 - tau
            mine += tau * theirs

    def get_weights(self) -> list[np.ndarray]:
        """Deep copies of all parameter arrays (for checkpointing)."""
        return [p.copy() for p in self.params]

    def set_weights(self, weights: Sequence[np.ndarray]) -> None:
        params = self.params
        if len(weights) != len(params):
            raise ValueError("weight count mismatch")
        for p, w in zip(params, weights):
            if p.shape != w.shape:
                raise ValueError("weight shape mismatch")
            p[...] = w


class Adam:
    """Adam optimizer (Kingma & Ba, 2015) over a list of parameter arrays."""

    def __init__(
        self,
        params: Sequence[np.ndarray],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        if lr <= 0:
            raise ValueError("lr must be > 0")
        self.params = list(params)
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p) for p in self.params]
        self._v = [np.zeros_like(p) for p in self.params]
        self._t = 0

    def step(self, grads: Sequence[np.ndarray]) -> None:
        if len(grads) != len(self.params):
            raise ValueError("gradient count mismatch")
        self._t += 1
        bc1 = 1.0 - self.beta1**self._t
        bc2 = 1.0 - self.beta2**self._t
        for p, g, m, v in zip(self.params, grads, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g**2
            p -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)
