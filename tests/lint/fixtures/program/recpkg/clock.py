"""A wall-clock helper one module away from the record writer."""

import time


def stamp():  # reprolint: disable=R007 fixture clock source for R014
    return time.time()


def duration(start):
    # negative: perf_counter deltas are run-independent durations.
    return time.perf_counter() - start
