"""Quickstart: tune a simulated MySQL 5.7 for SYSBENCH with SMAC.

Runs a 60-iteration tuning session over the ten most tuning-worthy knobs
and reports the throughput improvement over MySQL defaults, plus what the
session would have cost on a real testbed.

Usage::

    python examples/quickstart.py
"""

from repro.dbms import MySQLServer, mysql_knob_space
from repro.optimizers import SMAC
from repro.tuning import DatabaseObjective, TuningSession, improvement_over_default

KNOBS = [
    "innodb_flush_log_at_trx_commit",
    "sync_binlog",
    "innodb_log_file_size",
    "innodb_io_capacity",
    "innodb_buffer_pool_size",
    "innodb_doublewrite",
    "innodb_flush_method",
    "innodb_thread_concurrency",
    "thread_cache_size",
    "innodb_write_io_threads",
]


def main() -> None:
    space = mysql_knob_space("B", knob_names=KNOBS, seed=0)
    server = MySQLServer("SYSBENCH", instance="B", seed=42)
    objective = DatabaseObjective(server, space)
    optimizer = SMAC(space, seed=0)

    session = TuningSession(
        objective, optimizer, space, max_iterations=60, n_initial=10, seed=0
    )
    print("Tuning SYSBENCH on instance B (8 cores / 16 GB) with SMAC ...")
    history = session.run()

    best = history.best()
    default_tps = server.default_objective()
    improvement = improvement_over_default(best.objective, default_tps, "max")
    print(f"\ndefault throughput : {default_tps:8.0f} txn/s")
    print(f"best throughput    : {best.objective:8.0f} txn/s (iteration {best.iteration})")
    print(f"improvement        : {improvement * 100:+.1f}%")
    print(f"failed configs     : {server.n_failures} (clamped to worst seen)")
    print(f"simulated testbed time this session: {session.total_simulated_hours():.1f} hours")

    print("\nbest configuration:")
    default = space.default_configuration()
    for name in KNOBS:
        marker = "*" if best.config[name] != default[name] else " "
        print(f"  {marker} {name:35s} = {best.config[name]}")


if __name__ == "__main__":
    main()
