"""Per-run specifications, results, and deterministic seed derivation.

A :class:`RunSpec` is a self-contained, picklable description of one
tuning run: everything a worker process needs to rebuild the simulated
server, the optimizer, and the session.  Seeds are *materialized into the
spec* before any run is dispatched, which is what makes parallel and
serial execution produce bit-identical histories.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.optimizers.base import History, Observation, Optimizer
from repro.space import ConfigurationSpace

OptimizerFactory = Callable[[ConfigurationSpace, int], Optimizer]


@dataclass(frozen=True)
class RegistryOptimizerFactory:
    """A picklable optimizer factory referencing ``OPTIMIZER_REGISTRY``.

    Experiment harnesses historically used lambdas, which cannot cross a
    process boundary; this by-name factory can.  ``options`` is a tuple of
    ``(keyword, value)`` pairs forwarded to the optimizer constructor — a
    tuple rather than a dict so the factory stays hashable and picklable
    (e.g. ``(("full_refit", True),)`` for the Figure 9 overhead runs).
    """

    optimizer_name: str
    options: tuple[tuple[str, Any], ...] = ()

    def __call__(self, space: ConfigurationSpace, seed: int) -> Optimizer:
        from repro.optimizers import OPTIMIZER_REGISTRY

        return OPTIMIZER_REGISTRY[self.optimizer_name](
            space, seed=seed, **dict(self.options)
        )


@dataclass(frozen=True)
class RunSeeds:
    """Independent integer seeds for the random streams of one run.

    ``guard`` seeds the resilience layer's retry-backoff jitter (see
    :class:`repro.resilience.GuardedObjective`); it is derived as a
    fourth grandchild of the run's SeedSequence child, which leaves the
    original server/optimizer/session seeds byte-identical to what
    three-way spawning produced (spawn keys are assigned sequentially).
    """

    server: int
    optimizer: int
    session: int
    guard: int = 0


def _seed_int(seq: np.random.SeedSequence) -> int:
    return int(seq.generate_state(1, dtype=np.uint32)[0])


def derive_run_seeds(seed: int, n_runs: int) -> list[RunSeeds]:
    """Spawn independent per-run seed triples from one root seed.

    ``SeedSequence(seed).spawn(n_runs)`` gives each run its own child
    stream; each child spawns three grandchildren for the simulator noise,
    the optimizer sampling, and the session's LHS initialization.  No two
    streams share entropy, so the simulator's noise can never correlate
    with the optimizer's proposals (the run-0 bug the serial runner had),
    and the derivation depends only on ``(seed, run_index)`` — never on
    which worker executes the run or in what order.
    """
    if n_runs < 0:
        raise ValueError("n_runs must be >= 0")
    out: list[RunSeeds] = []
    for child in np.random.SeedSequence(seed).spawn(n_runs):
        # spawn(4) keeps the first three grandchildren identical to the
        # historical spawn(3): spawn keys are sequential, so existing
        # server/optimizer/session seeds (and every checkpoint keyed on
        # them) are unchanged by the addition of the guard stream.
        server_seq, optimizer_seq, session_seq, guard_seq = child.spawn(4)
        out.append(
            RunSeeds(
                server=_seed_int(server_seq),
                optimizer=_seed_int(optimizer_seq),
                session=_seed_int(session_seq),
                guard=_seed_int(guard_seq),
            )
        )
    return out


@dataclass
class RunSpec:
    """One independent ``(server, optimizer, session)`` run.

    Exactly one of ``optimizer`` / ``optimizer_factory`` must be set.
    When ``objective`` is ``None`` the worker builds a
    :class:`~repro.tuning.objective.DatabaseObjective` over a fresh
    ``MySQLServer(workload, instance, seed=server_seed)``; passing an
    objective (e.g. a surrogate) overrides that.

    ``iteration_hook`` is an optional picklable callable
    ``(iteration, observation) -> None`` invoked after every session
    evaluation inside the worker — the attachment point for per-iteration
    progress journaling and for the fault injectors in
    :mod:`repro.parallel.faults`.  Hooks are observers: they must not
    change the run's results, and they are excluded from the content key
    used by checkpoint/resume (see :func:`repro.parallel.spec_key`).
    """

    run_index: int
    workload: str
    space: ConfigurationSpace
    n_iterations: int
    instance: str = "B"
    n_initial: int = 10
    optimizer_factory: OptimizerFactory | None = None
    optimizer: Optimizer | None = None
    objective: Any = None
    server_seed: int | None = None
    optimizer_seed: int = 0
    session_seed: int | None = None
    warm_start: list[Observation] | None = None
    iteration_hook: Any = None
    #: Optional simulated-hours stopping criterion forwarded to the
    #: session (None preserves iteration-only stopping).
    max_simulated_hours: float | None = None
    #: Optional :class:`repro.resilience.GuardPolicy`; when set, the
    #: worker wraps the objective in a GuardedObjective seeded with
    #: ``guard_seed``.
    guard: Any = None
    #: Seed for the guard's retry-backoff jitter stream.  Excluded from
    #: the checkpoint spec key: backoff affects wall-clock only, never
    #: results.
    guard_seed: int | None = None
    tags: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if (self.optimizer is None) == (self.optimizer_factory is None):
            raise ValueError("set exactly one of optimizer / optimizer_factory")
        if self.n_iterations < 1:
            raise ValueError("n_iterations must be >= 1")
        if self.max_simulated_hours is not None and self.max_simulated_hours <= 0:
            raise ValueError("max_simulated_hours must be > 0")


@dataclass
class RunResult:
    """Outcome and telemetry of one run (successful or not)."""

    run_index: int
    history: History | None = None
    failed: bool = False
    error: str | None = None
    attempts: int = 1
    wall_seconds: float = 0.0
    suggest_seconds: float = 0.0
    eval_seconds: float = 0.0
    simulated_hours: float = 0.0
    n_iterations: int = 0
    n_failed_evals: int = 0
    #: Why the session stopped ("max_iterations" / "simulated_budget");
    #: None for results recorded before budget-aware sessions existed.
    stop_reason: str | None = None
    #: Per-session failure counts keyed by FailureKind value (see
    #: ``History.failure_summary``); empty when nothing failed.
    failure_kinds: dict[str, int] = field(default_factory=dict)
    tags: dict[str, Any] = field(default_factory=dict)
