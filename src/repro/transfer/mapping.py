"""Workload mapping (OtterTune's transfer framework, paper §3.3).

The target workload is matched to the historical workload whose internal
metric signature is closest (Euclidean distance on normalized metrics);
the matched task's observations are then merged into the base optimizer's
training history.  The merge is unconditional — if the matched workload's
optimum differs from the target's, the surrogate is pulled toward the
wrong region, the *negative transfer* the paper observes (§7.2).
"""

from __future__ import annotations

import numpy as np

from repro.optimizers.base import History, Observation, Optimizer
from repro.space import Configuration
from repro.transfer.repository import TransferRepository, mean_metric_signature


class MappedOptimizer(Optimizer):
    """Wrap a base optimizer; feed it target + mapped-source observations."""

    name = "workload_mapping"

    def __init__(
        self,
        base: Optimizer,
        repository: TransferRepository,
        remap_every: int = 10,
        seed: int | None = None,
    ) -> None:
        super().__init__(base.space, base.seed if seed is None else seed)
        self.name = f"mapping({base.name})"
        self.base = base
        self.repository = repository
        self.remap_every = max(1, remap_every)
        self.mapped_workload_: str | None = None
        self._suggest_count = 0
        self._mapped: History | None = None

    @property
    def uses_lhs_init(self) -> bool:  # type: ignore[override]
        return self.base.uses_lhs_init

    def _map(self, history: History) -> History | None:
        if len(self.repository) == 0:
            return None
        signature = mean_metric_signature(history)
        if signature.size == 0:
            return None
        task = self.repository.most_similar(signature)
        self.mapped_workload_ = task.workload_name
        return task.history

    def _augmented_history(self, history: History, mapped: History) -> History:
        """Target + source observations, scores standardized per origin."""
        merged = History(self.space, task_id="mapped")

        def z(scores: np.ndarray) -> np.ndarray:
            std = scores.std()
            return (scores - scores.mean()) / (std if std > 0 else 1.0)

        target_scores = z(history.scores())
        source_scores = z(mapped.scores())
        for obs, score in zip(mapped.observations, source_scores):
            merged.append(
                Observation(
                    config=Configuration(
                        {k: obs.config[k] for k in self.space.names}
                    ),
                    objective=obs.objective,
                    score=float(score),
                    failed=obs.failed,
                )
            )
        for obs, score in zip(history.observations, target_scores):
            merged.append(
                Observation(
                    config=obs.config,
                    objective=obs.objective,
                    score=float(score),
                    failed=obs.failed,
                    metrics=obs.metrics,
                )
            )
        return merged

    def suggest(self, history: History) -> Configuration:
        self._suggest_count += 1
        if self._mapped is None or self._suggest_count % self.remap_every == 1:
            self._mapped = self._map(history)
        if self._mapped is None:
            return self.base.suggest(history)
        augmented = self._augmented_history(history, self._mapped)
        return self.base.suggest(augmented)

    def observe(self, observation: Observation) -> None:
        self.base.observe(observation)


def workload_distance(history_a: History, history_b: History) -> float:
    """Euclidean distance between mean metric signatures of two tasks."""
    a = mean_metric_signature(history_a)
    b = mean_metric_signature(history_b)
    if a.size == 0 or b.size == 0:
        return float("inf")
    return float(np.linalg.norm(a - b))
