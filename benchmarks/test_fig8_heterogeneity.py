"""Figure 8: continuous vs heterogeneous configuration spaces on JOB.

Paper shape: vanilla BO and mixed-kernel BO perform similarly on the
continuous space but diverge on the heterogeneous one, where the Hamming
kernel handles categorical knobs; SMAC is good on both.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.experiments import heterogeneity_comparison


def test_fig8_knob_heterogeneity(benchmark, scale):
    rows = run_once(
        benchmark,
        lambda: heterogeneity_comparison(
            workload="JOB",
            optimizers=("vanilla_bo", "mixed_kernel_bo", "smac", "ddpg"),
            scale=scale,
        ),
    )
    print()
    print(
        format_table(
            ["Space", "Optimizer", "Improvement %"],
            [(r.space_kind, r.optimizer, 100.0 * r.improvement) for r in rows],
            title="Figure 8: comparison experiment for knobs heterogeneity",
        )
    )
    get = lambda kind, opt: next(  # noqa: E731
        r.improvement for r in rows if r.space_kind == kind and r.optimizer == opt
    )
    # On the heterogeneous space, the mixed kernel must not lose to the
    # RBF kernel; on the continuous space they should be comparable.
    gap_het = get("heterogeneous", "mixed_kernel_bo") - get("heterogeneous", "vanilla_bo")
    gap_cont = abs(get("continuous", "mixed_kernel_bo") - get("continuous", "vanilla_bo"))
    assert gap_het >= -0.02
    assert gap_cont < 0.25
