"""Knowledge-transfer experiment: Table 8 (paper §7)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.scale import Scale, bench_scale
from repro.experiments.spaces import transfer_space
from repro.dbms.server import MySQLServer
from repro.optimizers import DDPG, MixedKernelBO, SMAC
from repro.optimizers.base import History
from repro.transfer import (
    MappedOptimizer,
    RGPEMixedKernelBO,
    RGPESMAC,
    fine_tuned_ddpg,
    pretrain_ddpg,
)
from repro.tuning.metrics import average_ranks, performance_enhancement, speedup
from repro.tuning.objective import DatabaseObjective
from repro.tuning.session import TuningSession

#: Paper §7.1: source workloads for historical data / pre-training.
SOURCE_WORKLOADS = ("SEATS", "Voter", "TATP", "Smallbank", "SIBench")
#: Paper §7.1: target workloads.
TARGET_WORKLOADS = ("TPC-C", "SYSBENCH", "Twitter")


@dataclass
class TransferRow:
    """One Table 8 cell group: a framework/base pair on one target."""

    target: str
    framework: str  # "rgpe" | "mapping" | "fine-tune"
    base: str  # "smac" | "mixed_kernel_bo" | "ddpg"
    speedup: float | None  # None renders as the paper's "x"
    performance_enhancement: float
    best_score: float


@dataclass
class TransferComparison:
    rows: list[TransferRow]
    absolute_rankings: dict[str, dict[str, float]]  # per target + "avg"


def _run(
    optimizer, target: str, space, scale: Scale, instance: str, seed: int
) -> History:
    server = MySQLServer(target, instance, seed=seed)
    session = TuningSession(
        DatabaseObjective(server, space),
        optimizer,
        space,
        max_iterations=scale.n_iterations,
        n_initial=scale.n_initial,
        seed=seed + 5,
    )
    return session.run()


def transfer_comparison(
    scale: Scale | None = None,
    instance: str = "B",
    seed: int = 17,
    pretrain_iterations: int | None = None,
) -> TransferComparison:
    """Table 8: five transfer baselines against their base optimizers.

    DDPG is pre-trained on the five source workloads in turn; its
    training observations double as the historical data for workload
    mapping and RGPE (the paper's data-fairness setup).
    """
    scale = scale or bench_scale()
    space = transfer_space(instance, scale.n_pool_samples, seed)
    pretrain_iters = (
        pretrain_iterations if pretrain_iterations is not None else scale.n_iterations
    )
    agent, repository = pretrain_ddpg(
        space,
        list(SOURCE_WORKLOADS),
        instance=instance,
        iterations_per_source=pretrain_iters,
        seed=seed,
    )

    rows: list[TransferRow] = []
    per_target_scores: dict[str, dict[str, float]] = {}
    for t_idx, target in enumerate(TARGET_WORKLOADS):
        t_seed = seed + 100 * (t_idx + 1)
        base_histories = {
            "smac": _run(SMAC(space, seed=t_seed), target, space, scale, instance, t_seed),
            "mixed_kernel_bo": _run(
                MixedKernelBO(space, seed=t_seed), target, space, scale, instance, t_seed
            ),
            "ddpg": _run(DDPG(space, seed=t_seed), target, space, scale, instance, t_seed),
        }
        transfer_histories = {
            ("rgpe", "mixed_kernel_bo"): _run(
                RGPEMixedKernelBO(space, repository, seed=t_seed),
                target, space, scale, instance, t_seed,
            ),
            ("rgpe", "smac"): _run(
                RGPESMAC(space, repository, seed=t_seed),
                target, space, scale, instance, t_seed,
            ),
            ("mapping", "mixed_kernel_bo"): _run(
                MappedOptimizer(MixedKernelBO(space, seed=t_seed), repository),
                target, space, scale, instance, t_seed,
            ),
            ("mapping", "smac"): _run(
                MappedOptimizer(SMAC(space, seed=t_seed), repository),
                target, space, scale, instance, t_seed,
            ),
            ("fine-tune", "ddpg"): _run(
                fine_tuned_ddpg(space, agent, seed=t_seed),
                target, space, scale, instance, t_seed,
            ),
        }
        scores: dict[str, float] = {}
        for (framework, base), history in transfer_histories.items():
            base_history = base_histories[base]
            best = history.best().score
            rows.append(
                TransferRow(
                    target=target,
                    framework=framework,
                    base=base,
                    speedup=speedup(base_history, history),
                    performance_enhancement=performance_enhancement(
                        best, base_history.best().score
                    ),
                    best_score=best,
                )
            )
            scores[f"{framework}({base})"] = best
        per_target_scores[target] = scores

    rankings: dict[str, dict[str, float]] = {}
    methods = list(next(iter(per_target_scores.values())))
    for target, scores in per_target_scores.items():
        rankings[target] = average_ranks(
            {m: [scores[m]] for m in methods}, higher_is_better=True
        )
    rankings["avg"] = {
        m: float(np.mean([rankings[t][m] for t in per_target_scores])) for m in methods
    }
    return TransferComparison(rows=rows, absolute_rankings=rankings)
