"""Tests for CART trees, random forests, and gradient boosting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.forest import RandomForestRegressor
from repro.ml.metrics import r2_score
from repro.ml.tree import DecisionTreeRegressor


@pytest.fixture
def step_data():
    """Piecewise-constant target: trees should fit it exactly."""
    rng = np.random.default_rng(0)
    X = rng.random((200, 2))
    y = np.where(X[:, 0] > 0.5, 10.0, -10.0) + np.where(X[:, 1] > 0.25, 1.0, 0.0)
    return X, y


class TestDecisionTree:
    def test_fits_step_function_exactly(self, step_data):
        X, y = step_data
        tree = DecisionTreeRegressor().fit(X, y)
        np.testing.assert_allclose(tree.predict(X), y)

    def test_max_depth_limits_nodes(self, step_data):
        X, y = step_data
        stump = DecisionTreeRegressor(max_depth=1).fit(X, y)
        assert stump.n_nodes == 3  # root + two leaves
        # stump predicts two distinct values
        assert len(np.unique(stump.predict(X))) == 2

    def test_min_samples_leaf_respected(self, step_data):
        X, y = step_data
        tree = DecisionTreeRegressor(min_samples_leaf=30).fit(X, y)
        assert tree.n_node_samples[tree.feature == -1].min() >= 30

    def test_split_counts_identify_dominant_feature(self, step_data):
        X, y = step_data
        tree = DecisionTreeRegressor(max_depth=3).fit(X, y)
        counts = tree.split_counts()
        assert counts[0] >= 1  # the step feature is used

    def test_feature_importances_normalized(self, step_data):
        X, y = step_data
        tree = DecisionTreeRegressor().fit(X, y)
        imp = tree.feature_importances()
        assert imp.sum() == pytest.approx(1.0)
        assert imp[0] > imp[1]  # 20-unit step dominates the 1-unit step

    def test_constant_target_yields_single_leaf(self):
        X = np.random.default_rng(0).random((20, 3))
        tree = DecisionTreeRegressor().fit(X, np.ones(20))
        assert tree.n_nodes == 1
        np.testing.assert_allclose(tree.predict(X), 1.0)

    def test_leaf_partition_covers_unit_cube(self, step_data):
        X, y = step_data
        tree = DecisionTreeRegressor(max_depth=4).fit(X, y)
        bounds = np.tile([0.0, 1.0], (2, 1))
        leaves = tree.leaf_partition(bounds)
        total_volume = sum(np.prod(box[:, 1] - box[:, 0]) for box, __ in leaves)
        assert total_volume == pytest.approx(1.0)

    def test_empty_and_mismatched_inputs(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.empty((0, 2)), np.empty(0))
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.ones((3, 2)), np.ones(4))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_split=1)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_leaf=0)

    @given(st.integers(min_value=2, max_value=40))
    @settings(max_examples=20, deadline=None)
    def test_predictions_within_target_range(self, n):
        rng = np.random.default_rng(n)
        X = rng.random((n, 3))
        y = rng.normal(size=n)
        tree = DecisionTreeRegressor().fit(X, y)
        preds = tree.predict(rng.random((10, 3)))
        assert preds.min() >= y.min() - 1e-12
        assert preds.max() <= y.max() + 1e-12


class TestRandomForest:
    def test_regression_quality(self, small_regression_data):
        X, y = small_regression_data
        forest = RandomForestRegressor(n_estimators=20, seed=0).fit(X, y)
        assert r2_score(y, forest.predict(X)) > 0.9

    def test_predict_with_std_positive(self, small_regression_data):
        X, y = small_regression_data
        forest = RandomForestRegressor(n_estimators=10, seed=0).fit(X, y)
        mean, std = forest.predict_with_std(X[:10])
        assert (std > 0).all()
        assert mean.shape == std.shape == (10,)

    def test_seeded_determinism(self, small_regression_data):
        X, y = small_regression_data
        a = RandomForestRegressor(n_estimators=5, seed=3).fit(X, y).predict(X[:5])
        b = RandomForestRegressor(n_estimators=5, seed=3).fit(X, y).predict(X[:5])
        np.testing.assert_array_equal(a, b)

    def test_split_counts_favor_informative_features(self, small_regression_data):
        X, y = small_regression_data
        forest = RandomForestRegressor(n_estimators=20, seed=0).fit(X, y)
        counts = forest.split_counts()
        assert counts[0] > counts[5]  # feature 0 is strong, 5 is noise

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestRegressor().predict(np.ones((1, 3)))

    def test_invalid_estimators(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_estimators=0)


class TestGradientBoosting:
    def test_improves_with_stages(self, small_regression_data):
        X, y = small_regression_data
        gb = GradientBoostingRegressor(n_estimators=60, seed=0).fit(X, y)
        stages = gb.staged_predict(X)
        early = r2_score(y, stages[4])
        late = r2_score(y, stages[-1])
        assert late > early

    def test_quality(self, small_regression_data):
        X, y = small_regression_data
        gb = GradientBoostingRegressor(n_estimators=120, seed=0).fit(X, y)
        assert r2_score(y, gb.predict(X)) > 0.95

    def test_subsampling_works(self, small_regression_data):
        X, y = small_regression_data
        gb = GradientBoostingRegressor(n_estimators=30, subsample=0.5, seed=0).fit(X, y)
        assert r2_score(y, gb.predict(X)) > 0.7

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(learning_rate=0.0)
        with pytest.raises(ValueError):
            GradientBoostingRegressor(subsample=1.5)
        with pytest.raises(ValueError):
            GradientBoostingRegressor(n_estimators=0)
