"""Unit and property tests for ConfigurationSpace."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.space import (
    CategoricalKnob,
    Configuration,
    ConfigurationSpace,
    ContinuousKnob,
    IntegerKnob,
)


class TestBasics:
    def test_duplicate_knobs_rejected(self):
        with pytest.raises(ValueError):
            ConfigurationSpace(
                [ContinuousKnob("x", 0, 1, 0.5), ContinuousKnob("x", 0, 2, 1.0)]
            )

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            ConfigurationSpace([])

    def test_container_protocol(self, tiny_space):
        assert len(tiny_space) == 4
        assert "mode" in tiny_space
        assert tiny_space["n"].name == "n"
        assert tiny_space.index_of("mode") == 2
        with pytest.raises(KeyError):
            tiny_space.index_of("missing")

    def test_masks(self, tiny_space):
        assert tiny_space.categorical_mask.tolist() == [False, False, True, False]
        assert tiny_space.continuous_mask.tolist() == [True, True, False, True]
        assert tiny_space.has_categorical


class TestEncoding:
    def test_default_roundtrip(self, tiny_space):
        default = tiny_space.default_configuration()
        assert tiny_space.decode(tiny_space.encode(default)) == default

    def test_decode_shape_check(self, tiny_space):
        with pytest.raises(ValueError):
            tiny_space.decode([0.5, 0.5])

    def test_encode_many(self, tiny_space):
        configs = tiny_space.sample_configurations(5)
        X = tiny_space.encode_many(configs)
        assert X.shape == (5, 4)
        assert (X >= 0).all() and (X <= 1).all()

    def test_one_hot_encoding(self, tiny_space):
        default = tiny_space.default_configuration()
        vec = tiny_space.one_hot_encode(default)
        assert len(vec) == tiny_space.one_hot_dims() == 3 + 3
        names = tiny_space.one_hot_feature_names()
        assert "mode=a" in names and "mode=c" in names
        # exactly one categorical indicator is hot
        cat_block = vec[[names.index("mode=a"), names.index("mode=b"), names.index("mode=c")]]
        assert cat_block.sum() == 1.0

    @given(st.lists(st.floats(min_value=0, max_value=1), min_size=4, max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_decode_encode_decode_is_stable(self, vector):
        space = ConfigurationSpace(
            [
                ContinuousKnob("x", 0.0, 1.0, 0.5),
                IntegerKnob("n", 1, 1024, 16, log=True),
                CategoricalKnob("mode", ["a", "b", "c"], "a"),
                IntegerKnob("count", 0, 100, 10),
            ]
        )
        config = space.decode(vector)
        again = space.decode(space.encode(config))
        assert config == again


class TestConfigurations:
    def test_validate_and_complete(self, tiny_space):
        default = tiny_space.default_configuration()
        assert tiny_space.validate(default)
        partial = {"x": 0.9}
        completed = tiny_space.complete(partial)
        assert completed["x"] == 0.9
        assert completed["mode"] == "a"
        with pytest.raises(KeyError):
            tiny_space.complete({"unknown": 1})

    def test_validate_rejects_missing_and_invalid(self, tiny_space):
        assert not tiny_space.validate({"x": 0.5})
        bad = tiny_space.default_configuration().as_dict()
        bad["mode"] = "zzz"
        assert not tiny_space.validate(bad)

    def test_clip(self, tiny_space):
        wild = {"x": 9.0, "n": 10**9, "mode": "q", "count": -5}
        clipped = tiny_space.clip(wild)
        assert tiny_space.validate(clipped)

    def test_sampling_is_seeded(self):
        knobs = lambda: [  # noqa: E731
            ContinuousKnob("x", 0.0, 1.0, 0.5),
            CategoricalKnob("m", ["a", "b"], "a"),
        ]
        s1 = ConfigurationSpace(knobs(), seed=5)
        s2 = ConfigurationSpace(knobs(), seed=5)
        assert s1.sample_configurations(4) == s2.sample_configurations(4)


class TestStructure:
    def test_subspace_order_and_unknown(self, tiny_space):
        sub = tiny_space.subspace(["mode", "x"])
        assert sub.names == ["mode", "x"]
        with pytest.raises(KeyError):
            tiny_space.subspace(["nope"])

    def test_neighbors_change_one_knob(self, tiny_space):
        config = tiny_space.default_configuration()
        for neighbor in tiny_space.neighbors(config, np.random.default_rng(0)):
            diff = [k for k in tiny_space.names if neighbor[k] != config[k]]
            assert len(diff) == 1

    def test_neighbors_cover_categorical_alternatives(self, tiny_space):
        config = tiny_space.default_configuration()
        neighbors = tiny_space.neighbors(config, np.random.default_rng(0))
        modes = {n["mode"] for n in neighbors if n["mode"] != config["mode"]}
        assert modes == {"b", "c"}


class TestConfigurationObject:
    def test_hash_and_equality(self):
        a = Configuration({"x": 1, "y": "on"})
        b = Configuration({"y": "on", "x": 1})
        assert a == b and hash(a) == hash(b)
        assert a == {"x": 1, "y": "on"}

    def test_with_values_copies(self):
        a = Configuration({"x": 1})
        b = a.with_values(x=2)
        assert a["x"] == 1 and b["x"] == 2

    def test_as_dict_is_mutable_copy(self):
        a = Configuration({"x": 1})
        d = a.as_dict()
        d["x"] = 99
        assert a["x"] == 1
