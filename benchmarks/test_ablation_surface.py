"""Ablation benches: which response-surface property drives which result.

DESIGN.md calls out three load-bearing properties of the simulated
surface; each ablation removes one and shows the corresponding paper
phenomenon disappearing:

1. **failure regions** drive the variance-based promotion of per-session
   memory knobs — with OOM disabled, ``sort_buffer_size``/
   ``join_buffer_size`` lose Gini rank for SYSBENCH;
2. **trap knobs** drive the SHAP-vs-Gini split — with the query-cache
   penalty removed, ``query_cache_type`` stops being a trap;
3. **evaluation noise** inflates best-of-N results — without noise the
   same random search finds a lower best.
"""

import numpy as np
from conftest import run_once

import repro.dbms.engine as engine
from repro.dbms import MySQLServer, mysql_knob_space
from repro.selection import GiniImportance, collect_samples


def _gini_split_share(knobs, seed=11, n=400):
    """Fraction of forest splits spent on the given knobs, plus fail rate."""
    space = mysql_knob_space("B", seed=0)
    server = MySQLServer("SYSBENCH", "B", seed=seed)
    configs, scores, default_score = collect_samples(server, space, n, seed=seed)
    result = GiniImportance(space, seed=5, n_trees=20).rank(
        configs, scores, default_score=default_score
    )
    total = sum(result.knob_scores.values())
    share = sum(result.knob_scores[k] for k in knobs) / max(total, 1e-9)
    return share, server.n_failures / n


def test_ablation_failure_regions_drive_memory_knob_variance(benchmark, monkeypatch):
    """Per-session memory knobs owe their variance signal to OOM crashes."""
    knobs = (
        "sort_buffer_size",
        "join_buffer_size",
        "innodb_buffer_pool_size",
        "tmp_table_size",
    )

    def experiment():
        with_failures = _gini_split_share(knobs)
        # Disable the OOM/swap region: memory overcommit can no longer crash.
        monkeypatch.setattr(engine, "OOM_FRACTION", 1e9)
        monkeypatch.setattr(engine, "SWAP_FRACTION", 1e9)
        without_failures = _gini_split_share(knobs)
        return with_failures, without_failures

    (share_with, fails_with), (share_without, fails_without) = run_once(
        benchmark, experiment
    )
    print(f"\nmemory-knob split share with failures:    {share_with:.3f} "
          f"(fail rate {fails_with:.2f})")
    print(f"memory-knob split share without failures: {share_without:.3f} "
          f"(fail rate {fails_without:.2f})")
    assert fails_with > 0.05 and fails_without == 0.0
    assert share_with > share_without


def test_ablation_noise_inflates_best_of_n(benchmark):
    def experiment():
        space = mysql_knob_space("B", seed=0).subspace(
            ["innodb_log_file_size", "innodb_io_capacity", "sync_binlog"], seed=0
        )
        rng = np.random.default_rng(0)
        configs = space.sample_configurations(120, rng)
        noisy = MySQLServer("SYSBENCH", "B", seed=1, noise=True)
        clean = MySQLServer("SYSBENCH", "B", noise=False)
        best_noisy = max(
            r.objective for r in map(noisy.evaluate, configs) if not r.failed
        )
        best_clean = max(
            r.objective for r in map(clean.evaluate, configs) if not r.failed
        )
        return best_noisy, best_clean

    best_noisy, best_clean = run_once(benchmark, experiment)
    print(f"\nbest of 120 random configs: noisy {best_noisy:.0f} vs clean {best_clean:.0f}")
    assert best_noisy > best_clean  # the noise lottery
