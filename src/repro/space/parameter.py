"""Knob (parameter) types for DBMS configuration spaces.

Every knob maps between its *native* domain (bytes, counts, enum strings)
and the *unit* interval ``[0, 1]`` used internally by optimizers.  Knobs with
wide numeric ranges (e.g. ``innodb_buffer_pool_size`` spanning MBs to tens of
GBs) support log-scaled unit mappings so that Latin Hypercube and BO
candidates cover the range sensibly.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

import numpy as np


class Knob:
    """Base class for a single configuration knob.

    Parameters
    ----------
    name:
        The knob identifier, e.g. ``"innodb_buffer_pool_size"``.
    default:
        The vendor default value (native domain).
    description:
        Optional human-readable description.
    """

    is_categorical = False

    def __init__(self, name: str, default: Any, description: str = "") -> None:
        if not name:
            raise ValueError("knob name must be non-empty")
        self.name = name
        self.default = default
        self.description = description

    def to_unit(self, value: Any) -> float:
        """Map a native value to the unit interval ``[0, 1]``."""
        raise NotImplementedError

    def from_unit(self, u: float) -> Any:
        """Map a unit-interval position to a native value."""
        raise NotImplementedError

    def sample(self, rng: np.random.Generator) -> Any:
        """Draw a uniformly random native value."""
        return self.from_unit(float(rng.random()))

    # --- vectorized codec -------------------------------------------------
    # Array equivalents of to_unit/from_unit used by the batched space
    # operations (encode_many/decode_many/snap_many).  Subclasses override
    # with numpy implementations wherever the element-wise result is
    # bit-identical to the scalar path; these fallbacks guarantee exactness
    # by construction.

    def from_unit_array(self, u: np.ndarray) -> list:
        """Map an array of unit positions to a list of native values."""
        return [self.from_unit(float(v)) for v in np.asarray(u, dtype=float)]

    def to_unit_array(self, values: Sequence[Any]) -> np.ndarray:
        """Map a sequence of native values to a unit-position array."""
        return np.array([self.to_unit(v) for v in values], dtype=float)

    def snap_unit_array(self, u: np.ndarray) -> np.ndarray:
        """Vectorized ``to_unit(from_unit(u))``: snap unit positions onto
        the knob's representable grid.  Bit-identical to the scalar
        round-trip."""
        u = np.asarray(u, dtype=float)
        return np.array([self.to_unit(self.from_unit(float(v))) for v in u], dtype=float)

    def clip(self, value: Any) -> Any:
        """Clamp a native value into the knob's legal domain."""
        raise NotImplementedError

    def validate(self, value: Any) -> bool:
        """Return True when ``value`` lies in the knob's legal domain."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, default={self.default!r})"


class ContinuousKnob(Knob):
    """A real-valued knob on ``[lower, upper]``, optionally log-scaled."""

    def __init__(
        self,
        name: str,
        lower: float,
        upper: float,
        default: float,
        log: bool = False,
        description: str = "",
    ) -> None:
        if not lower < upper:
            raise ValueError(f"{name}: require lower < upper, got [{lower}, {upper}]")
        if log and lower <= 0:
            raise ValueError(f"{name}: log scale requires a positive lower bound")
        default = float(min(max(default, lower), upper))
        super().__init__(name, default, description)
        self.lower = float(lower)
        self.upper = float(upper)
        self.log = bool(log)

    def to_unit(self, value: float) -> float:
        value = min(max(float(value), self.lower), self.upper)
        if self.log:
            lo, hi = math.log(self.lower), math.log(self.upper)
            return (math.log(value) - lo) / (hi - lo)
        return (value - self.lower) / (self.upper - self.lower)

    def from_unit(self, u: float) -> float:
        u = min(max(float(u), 0.0), 1.0)
        if self.log:
            lo, hi = math.log(self.lower), math.log(self.upper)
            return math.exp(lo + u * (hi - lo))
        return self.lower + u * (self.upper - self.lower)

    def clip(self, value: float) -> float:
        return min(max(float(value), self.lower), self.upper)

    def validate(self, value: Any) -> bool:
        try:
            v = float(value)
        except (TypeError, ValueError):
            return False
        return self.lower <= v <= self.upper

    # Log-scaled knobs keep the scalar fallbacks: numpy's vectorized
    # exp/log differ from math.exp/math.log by ULPs (SIMD polynomials), so
    # only the linear mapping can be vectorized bit-identically.
    def from_unit_array(self, u: np.ndarray) -> list:
        u = np.asarray(u, dtype=float)
        if self.log:
            return super().from_unit_array(u)
        u = np.minimum(np.maximum(u, 0.0), 1.0)
        return (self.lower + u * (self.upper - self.lower)).tolist()

    def to_unit_array(self, values: Sequence[Any]) -> np.ndarray:
        if self.log:
            return super().to_unit_array(values)
        v = np.minimum(np.maximum(np.asarray(values, dtype=float), self.lower), self.upper)
        return (v - self.lower) / (self.upper - self.lower)

    def snap_unit_array(self, u: np.ndarray) -> np.ndarray:
        if self.log:
            return super().snap_unit_array(u)
        u = np.minimum(np.maximum(np.asarray(u, dtype=float), 0.0), 1.0)
        v = self.lower + u * (self.upper - self.lower)
        v = np.minimum(np.maximum(v, self.lower), self.upper)
        return (v - self.lower) / (self.upper - self.lower)


class IntegerKnob(Knob):
    """An integer-valued knob on ``[lower, upper]``, optionally log-scaled.

    Many MySQL knobs are byte sizes or counts; the unit mapping rounds to the
    nearest representable integer so encode/decode round-trips exactly.
    """

    def __init__(
        self,
        name: str,
        lower: int,
        upper: int,
        default: int,
        log: bool = False,
        description: str = "",
    ) -> None:
        if not lower < upper:
            raise ValueError(f"{name}: require lower < upper, got [{lower}, {upper}]")
        if log and lower <= 0:
            raise ValueError(f"{name}: log scale requires a positive lower bound")
        default = int(min(max(int(default), lower), upper))
        super().__init__(name, default, description)
        self.lower = int(lower)
        self.upper = int(upper)
        self.log = bool(log)

    def to_unit(self, value: int) -> float:
        value = min(max(int(value), self.lower), self.upper)
        if self.log:
            lo, hi = math.log(self.lower), math.log(self.upper)
            return (math.log(value) - lo) / (hi - lo)
        return (value - self.lower) / (self.upper - self.lower)

    def from_unit(self, u: float) -> int:
        u = min(max(float(u), 0.0), 1.0)
        if self.log:
            lo, hi = math.log(self.lower), math.log(self.upper)
            raw = math.exp(lo + u * (hi - lo))
        else:
            raw = self.lower + u * (self.upper - self.lower)
        return int(min(max(round(raw), self.lower), self.upper))

    def clip(self, value: int) -> int:
        return int(min(max(int(value), self.lower), self.upper))

    def validate(self, value: Any) -> bool:
        if isinstance(value, bool):
            return False
        try:
            v = int(value)
        except (TypeError, ValueError):
            return False
        return v == value and self.lower <= v <= self.upper

    def from_unit_array(self, u: np.ndarray) -> list:
        u = np.asarray(u, dtype=float)
        if self.log:
            return super().from_unit_array(u)
        u = np.minimum(np.maximum(u, 0.0), 1.0)
        raw = self.lower + u * (self.upper - self.lower)
        # np.rint is round-half-even, matching Python's round().
        return np.clip(np.rint(raw), self.lower, self.upper).astype(np.int64).tolist()

    def to_unit_array(self, values: Sequence[Any]) -> np.ndarray:
        if self.log:
            return super().to_unit_array(values)
        v = np.asarray(values)
        # astype truncates toward zero exactly like the scalar int() cast.
        v = np.minimum(np.maximum(v.astype(np.int64), self.lower), self.upper)
        return (v - self.lower) / (self.upper - self.lower)

    def snap_unit_array(self, u: np.ndarray) -> np.ndarray:
        if self.log:
            return super().snap_unit_array(u)
        u = np.minimum(np.maximum(np.asarray(u, dtype=float), 0.0), 1.0)
        raw = self.lower + u * (self.upper - self.lower)
        v = np.clip(np.rint(raw), self.lower, self.upper).astype(np.int64)
        return (v - self.lower) / (self.upper - self.lower)


class CategoricalKnob(Knob):
    """A categorical knob over an explicit finite choice set.

    The unit mapping places choice ``i`` of ``n`` at the midpoint of the
    ``i``-th equal-width bin, so uniform unit samples yield uniform choices
    and encode/decode round-trips exactly.
    """

    is_categorical = True

    def __init__(
        self,
        name: str,
        choices: Sequence[Any],
        default: Any,
        description: str = "",
    ) -> None:
        choices = list(choices)
        if len(choices) < 2:
            raise ValueError(f"{name}: need at least two choices")
        if len(set(map(str, choices))) != len(choices):
            raise ValueError(f"{name}: duplicate choices")
        if default not in choices:
            raise ValueError(f"{name}: default {default!r} not among choices")
        super().__init__(name, default, description)
        self.choices = choices
        self._index = {c: i for i, c in enumerate(choices)}

    @property
    def n_choices(self) -> int:
        return len(self.choices)

    def choice_index(self, value: Any) -> int:
        """Return the index of a native choice value."""
        try:
            return self._index[value]
        except KeyError:
            raise ValueError(f"{self.name}: {value!r} is not a valid choice") from None

    def to_unit(self, value: Any) -> float:
        i = self.choice_index(value)
        return (i + 0.5) / len(self.choices)

    def from_unit(self, u: float) -> Any:
        u = min(max(float(u), 0.0), 1.0)
        i = min(int(u * len(self.choices)), len(self.choices) - 1)
        return self.choices[i]

    def clip(self, value: Any) -> Any:
        return value if value in self._index else self.default

    def validate(self, value: Any) -> bool:
        return value in self._index

    def _indices_from_unit(self, u: np.ndarray) -> np.ndarray:
        u = np.minimum(np.maximum(np.asarray(u, dtype=float), 0.0), 1.0)
        n = len(self.choices)
        # astype truncates toward zero == int() cast; u >= 0 so this is floor.
        return np.minimum((u * n).astype(np.int64), n - 1)

    def from_unit_array(self, u: np.ndarray) -> list:
        return [self.choices[i] for i in self._indices_from_unit(u)]

    def to_unit_array(self, values: Sequence[Any]) -> np.ndarray:
        n = len(self.choices)
        idx = np.array([self.choice_index(v) for v in values], dtype=np.int64)
        return (idx + 0.5) / n

    def snap_unit_array(self, u: np.ndarray) -> np.ndarray:
        return (self._indices_from_unit(u) + 0.5) / len(self.choices)
