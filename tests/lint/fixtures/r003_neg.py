"""True negatives for R003: explicit ordering."""


def sorted_set(items):
    return [x for x in sorted(set(items))]


def sorted_keys(mapping):
    return list(sorted(mapping.keys()))


def iterate_mapping_directly(mapping):
    return [mapping[key] for key in mapping]


def membership_is_fine(items, needle):
    return needle in set(items)


def iterate_list(items):
    total = 0.0
    for item in items:
        total += item
    return total
