"""Integration tests: every experiment harness runs end-to-end at tiny scale."""

import numpy as np
import pytest

from repro.experiments import (
    heterogeneity_comparison,
    importance_comparison,
    importance_sensitivity,
    incremental_comparison,
    knob_count_sweep,
    optimizer_comparison,
    overhead_comparison,
    paper_spaces,
    shap_ranked_knobs,
    surrogate_model_table,
    surrogate_tuning_comparison,
    transfer_comparison,
)
from repro.experiments.scale import Scale, bench_scale, paper_scale, quick_scale
from repro.experiments.spaces import heterogeneity_spaces, transfer_space

TINY = Scale(n_pool_samples=150, n_iterations=10, n_runs=1, n_initial=5)


class TestScale:
    def test_paper_scale_values(self):
        s = paper_scale()
        assert s.n_pool_samples == 6250
        assert s.n_iterations == 200
        assert s.n_runs == 3
        assert s.knob_count_iterations == 600

    def test_bench_scale_is_smaller(self):
        b, p = bench_scale(), paper_scale()
        assert b.n_pool_samples <= p.n_pool_samples
        assert b.n_iterations <= p.n_iterations

    def test_validation(self):
        with pytest.raises(ValueError):
            Scale(n_pool_samples=5, n_iterations=10, n_runs=1)

    def test_overrides(self):
        s = quick_scale().with_overrides(n_runs=2)
        assert s.n_runs == 2


class TestSpaces:
    def test_paper_spaces_sizes(self):
        spaces = paper_spaces("SYSBENCH", n_samples=150, seed=3)
        assert spaces["small"].n_dims == 5
        assert spaces["medium"].n_dims == 20
        assert spaces["large"].n_dims == 197

    def test_shap_ranking_cached(self):
        a = shap_ranked_knobs("SYSBENCH", n_samples=150, seed=3)
        b = shap_ranked_knobs("SYSBENCH", n_samples=150, seed=3)
        assert a == b and len(a) == 197

    def test_heterogeneity_spaces(self):
        spaces = heterogeneity_spaces("JOB", n_samples=150, seed=3)
        cont = spaces["continuous"]
        het = spaces["heterogeneous"]
        assert cont.n_dims == het.n_dims == 20
        assert not cont.has_categorical
        assert int(het.categorical_mask.sum()) == 5

    def test_transfer_space_is_top20(self):
        space = transfer_space(n_samples=150, seed=3)
        assert space.n_dims == 20


class TestHarnesses:
    def test_importance_comparison(self):
        result = importance_comparison(
            workloads=("SYSBENCH",),
            measurements=("gini", "lasso"),
            top_ks=(5,),
            optimizers=("vanilla_bo",),
            scale=TINY,
            seed=3,
        )
        assert len(result.rows) == 2
        assert set(result.overall_ranking) == {"gini", "lasso"}

    def test_importance_sensitivity(self):
        points = importance_sensitivity(
            workload="SYSBENCH",
            measurements=("gini",),
            sample_sizes=(40, 80),
            n_repeats=2,
            scale=TINY,
            seed=3,
        )
        assert len(points["gini"]) == 2

    def test_knob_count_sweep(self):
        points = knob_count_sweep(
            workloads=("SYSBENCH",), knob_counts=(5, 20), scale=TINY, seed=3
        )
        assert [p.n_knobs for p in points] == [5, 20]
        assert all(p.tuning_cost_iterations >= 1 for p in points)

    def test_incremental_comparison(self):
        results = incremental_comparison(workloads=("SYSBENCH",), scale=TINY, seed=3)
        strategies = {r.strategy for r in results}
        assert strategies == {"increasing", "decreasing", "fixed top-5", "fixed top-20"}
        for r in results:
            assert len(r.trajectory) == TINY.knob_count_iterations

    def test_optimizer_comparison(self):
        result = optimizer_comparison(
            workloads=("SYSBENCH",),
            space_sizes=("small",),
            optimizers=("smac", "ga"),
            scale=TINY,
            seed=3,
        )
        assert set(result.rankings["overall"]) == {"smac", "ga"}
        assert all(len(r.best_trajectory) == TINY.n_iterations for r in result.rows)

    def test_heterogeneity_comparison(self):
        rows = heterogeneity_comparison(
            optimizers=("vanilla_bo", "mixed_kernel_bo"), scale=TINY, seed=3
        )
        kinds = {r.space_kind for r in rows}
        assert kinds == {"continuous", "heterogeneous"}

    def test_overhead_comparison(self):
        rows = overhead_comparison(
            optimizers=("ga", "vanilla_bo"),
            n_iterations=30,
            checkpoints=(10, 30),
            scale=TINY,
            seed=3,
        )
        by_name = {r.optimizer: r for r in rows}
        assert by_name["vanilla_bo"].total_seconds > by_name["ga"].total_seconds

    def test_transfer_comparison(self):
        result = transfer_comparison(scale=TINY, seed=3, pretrain_iterations=8)
        frameworks = {(r.framework, r.base) for r in result.rows}
        assert ("rgpe", "smac") in frameworks
        assert ("fine-tune", "ddpg") in frameworks
        assert len(result.rows) == 5 * 3  # five baselines, three targets
        assert "avg" in result.absolute_rankings

    def test_surrogate_model_table(self):
        tables = surrogate_model_table(scale=TINY, n_splits=3, seed=3)
        assert set(tables) == {"JOB", "SYSBENCH"}
        for scores in tables.values():
            assert {s.name for s in scores} == {"RF", "GB", "SVR", "NuSVR", "KNN", "RR"}

    def test_surrogate_tuning_comparison(self):
        result = surrogate_tuning_comparison(
            optimizers=("smac", "ga"), scale=TINY, n_runs=1, seed=3
        )
        assert result.speedup_range[0] > 50
        assert {r.optimizer for r in result.rows} == {"smac", "ga"}
        assert all(np.isfinite(r.improvement) for r in result.rows)
