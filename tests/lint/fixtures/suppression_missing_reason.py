"""A reason-less suppression: rejected with R000, finding still reported."""

import numpy as np


def no_reason_given():
    return np.random.default_rng()  # reprolint: disable=R001
