"""True positives for R005: mutable default arguments."""


def list_default(values=[]):  # finding
    values.append(1)
    return values


def dict_default(options={}):  # finding
    return options


def set_call_default(seen=set()):  # finding
    return seen


def kwonly_mutable(*, acc=list()):  # finding
    return acc
