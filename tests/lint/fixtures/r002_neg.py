"""True negatives for R002: generators derived from the provided state."""

import numpy as np


def derives_from_seed_param(x, seed=None):
    rng = np.random.default_rng(seed)
    return x + rng.normal()


def fallback_from_attribute(self_like, rng=None):
    rng = np.random.default_rng(self_like.seed) if rng is None else rng
    return rng.normal()


def no_governing_param(x):
    # function receives neither rng nor seed: R002 does not apply
    # (R001 would flag a *seedless* call; this one is constant-seeded,
    # which is reproducible when there is nothing to derive from).
    rng = np.random.default_rng(0)
    return x + rng.normal()
