"""Engine behaviour: suppressions, select/ignore, parse errors, discovery."""

from pathlib import Path

from repro.lint import LintConfig, Linter
from repro.lint.engine import discover_files
from repro.lint.findings import scan_suppressions

FIXTURES = Path(__file__).parent / "fixtures"


def lint(name: str, **config_kwargs):
    return Linter(LintConfig(**config_kwargs)).lint_file(FIXTURES / name)


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------
def test_suppression_with_reason_absorbs_finding():
    report = lint("suppression_ok.py")
    assert report.findings == []
    assert len(report.suppressed) == 2
    assert {f.rule for f in report.suppressed} == {"R001", "R008"}


def test_reasonless_suppression_is_rejected_and_finding_survives():
    report = lint("suppression_missing_reason.py")
    rules = [f.rule for f in report.findings]
    # R000 for the bad suppression AND the original R001 both surface.
    assert "R000" in rules
    assert "R001" in rules
    assert report.suppressed == []


def test_suppression_only_covers_listed_rules():
    source = (
        "import numpy as np\n"
        "def f(x):\n"
        "    return np.random.default_rng(), x == 0.5  "
        "# reprolint: disable=R008 exact probe sentinel\n"
    )
    report = Linter(LintConfig()).lint_source(source, "inline.py")
    assert [f.rule for f in report.findings] == ["R001"]
    assert [f.rule for f in report.suppressed] == ["R008"]


def test_suppression_all_keyword():
    source = (
        "import numpy as np\n"
        "def f(x):\n"
        "    return np.random.default_rng(), x == 0.5  "
        "# reprolint: disable=all generated fixture line\n"
    )
    report = Linter(LintConfig()).lint_source(source, "inline.py")
    assert report.findings == []
    assert len(report.suppressed) == 2


def test_scan_suppressions_parses_codes_and_reason():
    suppressions, findings = scan_suppressions(
        "x.py", ["x = 1  # reprolint: disable=R001,R003 mixed cleanup"]
    )
    assert findings == []
    assert suppressions[1].codes == frozenset({"R001", "R003"})
    assert suppressions[1].reason == "mixed cleanup"


def test_malformed_code_is_not_a_suppression():
    # Typo'd codes do not silently suppress anything.
    suppressions, findings = scan_suppressions(
        "x.py", ["x = 1  # reprolint: disable=R01 oops"]
    )
    assert suppressions == {}
    assert findings == []


# ----------------------------------------------------------------------
# select / ignore
# ----------------------------------------------------------------------
def test_select_restricts_rules():
    report = lint("r001_pos.py", select=["R003"])
    assert report.findings == []


def test_ignore_drops_rules():
    report = lint("r001_pos.py", ignore=["R001"])
    assert all(f.rule != "R001" for f in report.findings)


def test_unknown_rule_id_raises():
    import pytest

    with pytest.raises(ValueError, match="unknown rule"):
        Linter(LintConfig(select=["R999"]))


# ----------------------------------------------------------------------
# parse errors and discovery
# ----------------------------------------------------------------------
def test_syntax_error_reports_e001(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def broken(:\n")
    report = Linter(LintConfig()).lint_file(bad)
    assert [f.rule for f in report.findings] == ["E001"]
    assert "syntax error" in report.findings[0].message


def test_missing_file_reports_e001(tmp_path):
    report = Linter(LintConfig()).lint_file(tmp_path / "absent.py")
    assert [f.rule for f in report.findings] == ["E001"]


def test_discover_files_honours_exclude(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "skip").mkdir()
    (tmp_path / "pkg" / "skip" / "b.py").write_text("x = 2\n")
    config = LintConfig(exclude=["pkg/skip"], root=tmp_path)
    files = discover_files([tmp_path / "pkg"], config)
    assert [f.name for f in files] == ["a.py"]


def test_discover_files_deduplicates(tmp_path):
    target = tmp_path / "a.py"
    target.write_text("x = 1\n")
    files = discover_files([target, tmp_path], LintConfig(root=tmp_path))
    assert len(files) == 1


def test_clean_file_reports_ok(tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text("def f(x):\n    return x + 1\n")
    report = Linter(LintConfig()).lint_file(clean)
    assert report.ok


# ----------------------------------------------------------------------
# multi-code suppressions (regression: only the first code was honored
# when the list contained whitespace after commas)
# ----------------------------------------------------------------------
def test_multi_code_suppression_with_spaces_honors_every_code():
    source = (
        "import numpy as np\n"
        "def f(x):\n"
        "    return np.random.default_rng(), x == 0.5  "
        "# reprolint: disable=R001, R008 fixture probes both rules\n"
    )
    report = Linter(LintConfig()).lint_source(source, "inline.py")
    assert report.findings == []
    assert sorted(f.rule for f in report.suppressed) == ["R001", "R008"]


def test_multi_code_suppression_scan_tolerates_spaces():
    suppressions, findings = scan_suppressions(
        "x.py", ["x = 1  # reprolint: disable=R001 , R003 mixed cleanup"]
    )
    assert findings == []
    assert suppressions[1].codes == frozenset({"R001", "R003"})
    assert suppressions[1].reason == "mixed cleanup"


def test_multi_code_suppression_without_reason_still_r000():
    # Assembled at runtime so the linter does not read this test file's
    # own literal as a reason-less suppression comment.
    line = "x = 1  # reprolint: " + "disable=R001, R003"
    suppressions, findings = scan_suppressions("x.py", [line])
    assert suppressions == {}
    assert [f.rule for f in findings] == ["R000"]


# ----------------------------------------------------------------------
# robustness: BOM / CRLF / null bytes / undecodable files (regression:
# these crashed the linter with a traceback instead of reporting E001)
# ----------------------------------------------------------------------
def test_utf8_bom_file_lints_clean(tmp_path):
    target = tmp_path / "bom.py"
    target.write_bytes(b"\xef\xbb\xbfdef f(x):\n    return x + 1\n")
    report = Linter(LintConfig()).lint_file(target)
    assert report.findings == []


def test_utf8_bom_file_still_reports_real_findings(tmp_path):
    target = tmp_path / "bom_bad.py"
    target.write_bytes(b"\xef\xbb\xbfimport numpy as np\nr = np.random.default_rng()\n")
    report = Linter(LintConfig()).lint_file(target)
    assert [f.rule for f in report.findings] == ["R001"]


def test_crlf_file_lints_clean(tmp_path):
    target = tmp_path / "crlf.py"
    target.write_bytes(b"def f(x):\r\n    return x + 1\r\n")
    report = Linter(LintConfig()).lint_file(target)
    assert report.findings == []


def test_null_byte_file_reports_e001_not_traceback(tmp_path):
    target = tmp_path / "nulls.py"
    target.write_bytes(b"x = 1\x00\n")
    report = Linter(LintConfig()).lint_file(target)
    assert [f.rule for f in report.findings] == ["E001"]


def test_undecodable_file_reports_e001_not_traceback(tmp_path):
    target = tmp_path / "latin.py"
    target.write_bytes(b"# caf\xe9\nx = 1\n")
    report = Linter(LintConfig()).lint_file(target)
    assert [f.rule for f in report.findings] == ["E001"]
    assert "cannot read file" in report.findings[0].message


def test_lint_source_full_returns_context_and_suppressions():
    source = "x = 1  # reprolint: disable=R008 fixture\n"
    report, ctx, suppressions = Linter(LintConfig()).lint_source_full(
        source, "inline.py"
    )
    assert report.findings == []
    assert ctx is not None and ctx.tree is not None
    assert suppressions[1].codes == frozenset({"R008"})
