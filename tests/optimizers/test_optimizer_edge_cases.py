"""Edge-case behaviour shared by all optimizers: adversarial histories."""

import numpy as np
import pytest

from repro.optimizers import OPTIMIZER_REGISTRY
from repro.optimizers.base import History, Observation
from repro.space import CategoricalKnob, ConfigurationSpace, ContinuousKnob

ALL_NAMES = ["vanilla_bo", "mixed_kernel_bo", "smac", "tpe", "turbo", "ddpg", "ga", "random"]


@pytest.fixture
def space():
    return ConfigurationSpace(
        [
            ContinuousKnob("x", 0.0, 1.0, 0.5),
            CategoricalKnob("m", ["a", "b"], "a"),
        ],
        seed=0,
    )


def _history_with(space, scores, failed_flags=None):
    failed_flags = failed_flags or [False] * len(scores)
    rng = np.random.default_rng(0)
    h = History(space)
    for score, failed in zip(scores, failed_flags):
        config = space.sample_configuration(rng)
        obs = Observation(config=config, objective=score, score=score, failed=failed)
        h.append(obs)
    return h


@pytest.mark.parametrize("name", ALL_NAMES)
class TestAdversarialHistories:
    def test_all_identical_scores(self, name, space):
        """Constant objective: optimizers must not crash or loop."""
        opt = OPTIMIZER_REGISTRY[name](space, seed=0)
        h = _history_with(space, [1.0] * 8)
        config = opt.suggest(h)
        assert space.validate(config)

    def test_all_failed_history(self, name, space):
        """Sessions clamp failed scores, so scores exist but none succeeded."""
        opt = OPTIMIZER_REGISTRY[name](space, seed=0)
        h = _history_with(space, [-1.0] * 6, failed_flags=[True] * 6)
        config = opt.suggest(h)
        assert space.validate(config)

    def test_single_observation(self, name, space):
        opt = OPTIMIZER_REGISTRY[name](space, seed=0)
        h = _history_with(space, [2.0])
        config = opt.suggest(h)
        assert space.validate(config)

    def test_extreme_score_scale(self, name, space):
        """Scores in the 1e9 range (e.g. raw byte counters) must not break."""
        opt = OPTIMIZER_REGISTRY[name](space, seed=0)
        h = _history_with(space, list(np.linspace(1e9, 2e9, 10)))
        config = opt.suggest(h)
        assert space.validate(config)

    def test_negative_scores(self, name, space):
        """Latency objectives are negated: all scores negative is normal."""
        opt = OPTIMIZER_REGISTRY[name](space, seed=0)
        h = _history_with(space, list(-np.linspace(100, 200, 10)))
        config = opt.suggest(h)
        assert space.validate(config)

    def test_observe_unseen_config(self, name, space):
        """Observations the optimizer never suggested (warm starts) are fine."""
        opt = OPTIMIZER_REGISTRY[name](space, seed=0)
        obs = Observation(
            config=space.default_configuration(), objective=1.0, score=1.0
        )
        opt.observe(obs)  # must not raise
