"""Acquisition functions for model-based optimizers (maximization form)."""

from __future__ import annotations

import numpy as np
from scipy import stats


def expected_improvement(
    mean: np.ndarray, std: np.ndarray, best: float, xi: float = 0.0
) -> np.ndarray:
    """EI over the incumbent ``best`` for a maximization problem.

    ``EI(x) = (mu - best - xi) * Phi(z) + sigma * phi(z)`` with
    ``z = (mu - best - xi) / sigma``; zero where sigma vanishes.
    """
    mean = np.asarray(mean, dtype=float)
    std = np.asarray(std, dtype=float)
    improvement = mean - best - xi
    with np.errstate(divide="ignore", invalid="ignore"):
        z = np.where(std > 0, improvement / std, 0.0)
    ei = improvement * stats.norm.cdf(z) + std * stats.norm.pdf(z)
    return np.where(std > 0, np.maximum(ei, 0.0), np.maximum(improvement, 0.0))


def probability_of_improvement(
    mean: np.ndarray, std: np.ndarray, best: float, xi: float = 0.0
) -> np.ndarray:
    """PI over the incumbent for a maximization problem."""
    mean = np.asarray(mean, dtype=float)
    std = np.asarray(std, dtype=float)
    with np.errstate(divide="ignore", invalid="ignore"):
        z = np.where(std > 0, (mean - best - xi) / std, np.inf * np.sign(mean - best - xi))
    return stats.norm.cdf(z)


def ucb(mean: np.ndarray, std: np.ndarray, beta: float = 2.0) -> np.ndarray:
    """Upper confidence bound ``mu + beta * sigma``."""
    return np.asarray(mean, dtype=float) + beta * np.asarray(std, dtype=float)
