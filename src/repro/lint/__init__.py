"""repro.lint — AST-based determinism & contract linter for this repository.

The repository's headline guarantee — bit-identical serial/parallel
experiment histories — only holds while every random number consumed under
``src/repro`` is threaded from the ``SeedSequence`` tree rather than pulled
from global state.  This package turns that convention (and a handful of
neighbouring reproducibility contracts) into machine-checked rules:

========  =============================================================
Rule      What it catches
========  =============================================================
R001      Seedless RNG: ``np.random.default_rng()`` with no argument and
          any module-level-state call (``random.random()``,
          ``np.random.rand()``, ...).
R002      Shadow RNG streams: a generator created from nothing (or a
          hard-coded constant) inside a function that already receives
          an ``rng``/``seed`` parameter.
R003      Iteration over ``set(...)`` / ``.keys()`` feeding ordered
          output (the fig6 bug class).
R004      Optimizer/estimator contract: ``suggest``/``observe``
          signatures, ``seed`` parameters on randomized components.
R005      Mutable default arguments.
R006      Bare ``except:`` and ``except Exception: pass`` handlers that
          swallow evaluation failures.
R007      Wall-clock reads (``time.time()``, ``datetime.now()``) in
          result-producing code.
R008      Float ``==``/``!=`` against non-sentinel literals.
R009      Catch-all ``except`` handlers that neither re-raise nor record
          a classified failure (Observation / RunResult / FailureKind).
R010      Whole-program: an RNG sink reachable without any tainted seed
          flowing into it (seed provenance broken across modules).
R011      Whole-program: a function accepts a seed but never threads it
          to any RNG, callee, return, or stored attribute (dropped seed).
R012      Whole-program: call sites invoking ``suggest``/``observe`` with
          a shape no registered Optimizer accepts (and drifted defs).
R013      Whole-program: checkpoint schema asymmetry between
          ``*_to_record`` writers and ``record_to_*`` readers.
R014      Whole-program: wall-clock values flowing into recorded or
          fingerprinted payloads via the call graph.
========  =============================================================

Findings are suppressed inline with ``# reprolint: disable=RXXX <reason>``;
the reason string is mandatory (a reason-less suppression is itself reported
as R000).  Configuration lives in ``[tool.reprolint]`` in ``pyproject.toml``.

Usage::

    python -m repro.lint src tests --format json

The framework is stdlib-only (``ast`` + ``argparse``); see
``docs/LINTING.md`` for the full rule catalog and suppression policy.
"""

from __future__ import annotations

from repro.lint.config import LintConfig, load_config
from repro.lint.engine import FileReport, Linter, lint_paths
from repro.lint.findings import Finding
from repro.lint.registry import RULES, Rule, rule_catalog

#: Engine version, used to salt the whole-program analysis cache — bump
#: whenever rule semantics or summary extraction change.
ENGINE_VERSION = "2.0"

__all__ = [
    "ENGINE_VERSION",
    "Finding",
    "FileReport",
    "LintConfig",
    "Linter",
    "RULES",
    "Rule",
    "lint_paths",
    "load_config",
    "rule_catalog",
]
