"""Gaussian-process regression (Rasmussen & Williams, 2006, ch. 2).

Exact GP inference with Cholesky factorization, target standardization, and
marginal-likelihood hyperparameter fitting by multi-restart L-BFGS-B over
the kernel's log-parameters.  This is the surrogate behind vanilla BO,
mixed-kernel BO, TuRBO's local models, and RGPE's base models.

The O(n^3) Cholesky cost per (re)fit is intentional and *measured* by the
algorithm-overhead experiment (paper Figure 9).  What is **not** intentional
is implementation overhead on top of it, so ``fit`` threads a per-fit
:class:`~repro.perf.cache.KernelCache` through every kernel evaluation
(the pairwise distances are theta-independent and identical across the
~120 likelihood evaluations of one hyperparameter search) and derives the
final ``log_marginal_likelihood_`` from the factorization it already has
instead of running a third Cholesky.  Both are bit-identical to the naive
path.  :meth:`augment` additionally offers an *opt-in* O(n^2) incremental
refit for callers that append one observation at a time with fixed theta.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import linalg, optimize, stats

from repro.ml.kernels import Kernel, RBFKernel
from repro.perf.cache import KernelCache
from repro.perf.incremental import cholesky_append


class GaussianProcessRegressor:
    """Exact GP regression with a pluggable kernel.

    Parameters
    ----------
    kernel:
        Covariance function (default: isotropic RBF).
    noise:
        Observation-noise variance added to the diagonal (jitter floor of
        ``1e-8`` is always applied for numerical stability).
    normalize_y:
        Standardize targets before fitting; predictions are de-standardized.
    optimize_hyperparams:
        Maximize the log marginal likelihood over the kernel's ``theta``.
    n_restarts:
        Number of random restarts for the hyperparameter search.
    seed:
        RNG seed for restart sampling.
    cache_distances:
        Reuse theta-independent pairwise kernel structures across the
        likelihood evaluations of one ``fit`` (bit-identical; default on;
        off reproduces the pre-acceleration code path for benchmarking).
    """

    def __init__(
        self,
        kernel: Kernel | None = None,
        noise: float = 1e-6,
        normalize_y: bool = True,
        optimize_hyperparams: bool = True,
        n_restarts: int = 2,
        seed: int | None = None,
        cache_distances: bool = True,
    ) -> None:
        if noise < 0:
            raise ValueError("noise must be >= 0")
        self.kernel = kernel if kernel is not None else RBFKernel()
        self.noise = noise
        self.normalize_y = normalize_y
        self.optimize_hyperparams = optimize_hyperparams
        self.n_restarts = n_restarts
        self.seed = seed
        self.cache_distances = cache_distances

        self._X: np.ndarray | None = None
        self._y_raw: np.ndarray | None = None
        self._y_mean: float = 0.0
        self._y_std: float = 1.0
        self._chol: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._diag_add: float = 0.0
        self.log_marginal_likelihood_: float = float("-inf")

    # ------------------------------------------------------------------
    def _lml(self, X: np.ndarray, y: np.ndarray, cache: KernelCache | None = None) -> float:
        """Log marginal likelihood at the kernel's current theta."""
        n = len(X)
        K = self.kernel(X, X, cache) + (self.noise + 1e-8) * np.eye(n)
        try:
            L = linalg.cholesky(K, lower=True)
        except linalg.LinAlgError:
            return float("-inf")
        alpha = linalg.cho_solve((L, True), y)
        return float(
            -0.5 * y @ alpha - np.sum(np.log(np.diag(L))) - 0.5 * n * np.log(2.0 * np.pi)
        )

    def _fit_hyperparams(
        self, X: np.ndarray, y: np.ndarray, cache: KernelCache | None = None
    ) -> None:
        bounds = self.kernel.bounds
        if not bounds:
            return
        rng = np.random.default_rng(self.seed)

        best_theta = self.kernel.theta.copy()
        # The incumbent value is computed once and memoized: L-BFGS-B
        # re-evaluates its start point, which used to cost a duplicate
        # O(n^3) likelihood evaluation per fit.
        memo: dict[bytes, float] = {}

        def negative_lml(theta: np.ndarray) -> float:
            key = np.asarray(theta, dtype=float).tobytes()
            hit = memo.get(key)
            if hit is not None:
                return hit
            self.kernel.theta = theta
            return -self._lml(X, y, cache)

        best_val = negative_lml(best_theta)
        memo[best_theta.tobytes()] = best_val
        starts = [best_theta]
        for _ in range(self.n_restarts):
            starts.append(np.array([rng.uniform(lo, hi) for lo, hi in bounds]))
        for start in starts:
            result = optimize.minimize(
                negative_lml,
                start,
                method="L-BFGS-B",
                bounds=bounds,
                options={"maxiter": 30, "eps": 1e-3},
            )
            if np.isfinite(result.fun) and result.fun < best_val:
                best_val = float(result.fun)
                best_theta = result.x.copy()
        # Always restore the best theta: `negative_lml` mutates the kernel
        # as a side effect, so without this the kernel would be left at the
        # optimizer's *last evaluated* point — including when every
        # `minimize` call came back non-finite, where the incumbent must win.
        self.kernel.theta = best_theta

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianProcessRegressor":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if len(X) != len(y):
            raise ValueError("X and y length mismatch")
        if len(X) == 0:
            raise ValueError("cannot fit on empty data")
        if self.normalize_y:
            self._y_mean = float(y.mean())
            std = float(y.std())
            self._y_std = std if std > 0 else 1.0
        else:
            self._y_mean, self._y_std = 0.0, 1.0
        yn = (y - self._y_mean) / self._y_std

        cache = KernelCache() if self.cache_distances else None
        if self.optimize_hyperparams:
            self._fit_hyperparams(X, yn, cache)

        n = len(X)
        K = self.kernel(X, X, cache) + (self.noise + 1e-8) * np.eye(n)
        jitter = 1e-8
        while True:
            try:
                self._chol = linalg.cholesky(K + jitter * np.eye(n), lower=True)
                break
            except linalg.LinAlgError:
                jitter *= 10.0
                if jitter > 1e-2:
                    raise
        self._alpha = linalg.cho_solve((self._chol, True), yn)
        self._X = X
        self._y_raw = y.copy()
        self._diag_add = self.noise + 1e-8 + jitter
        # Derived from the factorization above — the third Cholesky the
        # seed implementation ran here was redundant.
        self.log_marginal_likelihood_ = self._lml_from_factorization(yn)
        return self

    def _lml_from_factorization(self, yn: np.ndarray) -> float:
        assert self._chol is not None and self._alpha is not None
        return float(
            -0.5 * yn @ self._alpha
            - np.sum(np.log(np.diag(self._chol)))
            - 0.5 * len(yn) * np.log(2.0 * np.pi)
        )

    # ------------------------------------------------------------------
    def augment(self, x: np.ndarray, y_new: float) -> "GaussianProcessRegressor":
        """Append one observation at fixed theta in O(n^2) (opt-in path).

        Extends the stored Cholesky factor by a bordered row/column
        (:func:`~repro.perf.incremental.cholesky_append`) instead of
        refactorizing, then refreshes the target normalization and
        ``alpha`` with O(n^2) solves.  Hyperparameters are **not**
        re-optimized — callers own the refit schedule.  Falls back to a
        full fixed-theta refactorization when the bordered matrix is not
        positive definite (e.g. a near-duplicate point at tiny jitter).
        """
        if self._X is None or self._chol is None or self._y_raw is None:
            raise RuntimeError("GP is not fitted")
        x = np.asarray(x, dtype=float).ravel()
        if x.shape != (self._X.shape[1],):
            raise ValueError(
                f"expected a single point of shape ({self._X.shape[1]},), got {x.shape}"
            )
        X_new = np.vstack([self._X, x[None, :]])
        y_raw = np.concatenate([self._y_raw, [float(y_new)]])

        k = self.kernel(x[None, :], self._X).ravel()
        kappa = float(self.kernel.diag(x[None, :])[0]) + self._diag_add
        try:
            chol = cholesky_append(self._chol, k, kappa)
        except linalg.LinAlgError:
            # Keep theta; redo the factorization with the jitter ladder.
            hyperopt = self.optimize_hyperparams
            self.optimize_hyperparams = False
            try:
                return self.fit(X_new, y_raw)
            finally:
                self.optimize_hyperparams = hyperopt

        if self.normalize_y:
            self._y_mean = float(y_raw.mean())
            std = float(y_raw.std())
            self._y_std = std if std > 0 else 1.0
        yn = (y_raw - self._y_mean) / self._y_std
        self._chol = chol
        self._alpha = linalg.cho_solve((chol, True), yn)
        self._X = X_new
        self._y_raw = y_raw
        self.log_marginal_likelihood_ = self._lml_from_factorization(yn)
        return self

    def extends_by_one(self, X: np.ndarray, y: np.ndarray) -> bool:
        """True when ``(X, y)`` equals the fitted data plus one new row."""
        if self._X is None or self._y_raw is None:
            return False
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        n = len(self._X)
        return (
            len(X) == n + 1
            and len(y) == n + 1
            and np.array_equal(X[:n], self._X)
            and np.array_equal(y[:n], self._y_raw)
        )

    # ------------------------------------------------------------------
    def predict(
        self, X: np.ndarray, return_std: bool = False
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        """Posterior mean (and optional standard deviation) at test points."""
        if self._X is None or self._chol is None or self._alpha is None:
            raise RuntimeError("GP is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        K_star = self.kernel(X, self._X)
        mean = K_star @ self._alpha * self._y_std + self._y_mean
        if not return_std:
            return mean
        v = linalg.solve_triangular(self._chol, K_star.T, lower=True)
        var = self.kernel.diag(X) - np.sum(v**2, axis=0)
        std = np.sqrt(np.maximum(var, 1e-12)) * self._y_std
        return mean, std

    def predict_with_std(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Alias matching the forest surrogate interface."""
        mean, std = self.predict(X, return_std=True)
        return mean, std

    def sample_posterior(
        self, X: np.ndarray, n_samples: int = 1, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Draw joint posterior samples at test points, shape ``(s, n)``.

        Without an explicit ``rng`` the draw is deterministic in
        ``self.seed``: two calls on the same fitted GP return identical
        samples.  Callers that want fresh draws per call must thread their
        own generator.

        A single test point short-circuits to a univariate draw: the full
        ``kernel(X, X)`` test covariance degenerates to the kernel
        diagonal there, so no test-test covariance matrix is built.
        """
        if self._X is None or self._chol is None or self._alpha is None:
            raise RuntimeError("GP is not fitted")
        rng = np.random.default_rng(self.seed) if rng is None else rng
        X = np.atleast_2d(np.asarray(X, dtype=float))
        cache = KernelCache() if self.cache_distances else None
        K_star = self.kernel(X, self._X, cache)
        mean = K_star @ self._alpha
        v = linalg.solve_triangular(self._chol, K_star.T, lower=True)
        if len(X) == 1:
            var = float(self.kernel.diag(X)[0]) - float(np.sum(v**2)) + 1e-8
            draws = mean[0] + math.sqrt(max(var, 0.0)) * rng.standard_normal(n_samples)
            draws = draws[:, None]
        else:
            cov = self.kernel(X, X, cache) - v.T @ v
            cov += 1e-8 * np.eye(len(X))
            draws = stats.multivariate_normal.rvs(
                mean=mean, cov=cov, size=n_samples, random_state=rng
            )
            draws = np.atleast_2d(draws)
        return draws * self._y_std + self._y_mean
