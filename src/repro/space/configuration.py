"""Immutable knob-value assignments."""

from __future__ import annotations

from typing import Any, Iterator, Mapping


class Configuration(Mapping[str, Any]):
    """An immutable mapping from knob names to native values.

    Configurations are hashable so they can key history repositories and be
    deduplicated by optimizers.  Values are compared by string representation
    for hashing purposes (native values may be floats).
    """

    __slots__ = ("_values", "_hash")

    def __init__(self, values: Mapping[str, Any]) -> None:
        self._values = dict(values)
        self._hash: int | None = None

    def __getitem__(self, name: str) -> Any:
        return self._values[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(tuple(sorted((k, repr(v)) for k, v in self._values.items())))
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Configuration):
            return self._values == other._values
        if isinstance(other, Mapping):
            return self._values == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self._values.items()))
        return f"Configuration({inner})"

    def with_values(self, **updates: Any) -> "Configuration":
        """Return a copy with some knob values replaced."""
        merged = dict(self._values)
        merged.update(updates)
        return Configuration(merged)

    def as_dict(self) -> dict[str, Any]:
        """Return a plain mutable dict copy of the assignment."""
        return dict(self._values)
