"""Sensitivity analysis of importance measurements (paper §5.2, Figure 4).

For each training-set size, the measurement is run ``n_repeats`` times on
random subsamples of the full pool; the similarity of its top-k knobs to
the full-pool baseline ranking (intersection-over-union) quantifies its
*stability*, and the surrogate R² on held-out data quantifies how well
its underlying model captures the configuration-performance relationship.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.ml.metrics import intersection_over_union, r2_score
from repro.selection.base import ImportanceMeasurement
from repro.space import Configuration


@dataclass
class SensitivityPoint:
    """Stability/quality of one measurement at one sample size."""

    n_samples: int
    similarity: float
    similarity_std: float
    r2: float
    r2_std: float


def sensitivity_analysis(
    measurement_factory: Callable[[int], ImportanceMeasurement],
    configs: Sequence[Configuration],
    scores: np.ndarray,
    default_score: float,
    sample_sizes: Sequence[int],
    n_repeats: int = 10,
    top_k: int = 5,
    holdout_fraction: float = 0.2,
    seed: int | None = None,
) -> list[SensitivityPoint]:
    """Figure 4's two curves for one importance measurement.

    ``measurement_factory(seed)`` builds a fresh measurement instance.
    The baseline top-k comes from running on the full pool.
    """
    scores = np.asarray(scores, dtype=float)
    rng = np.random.default_rng(seed)
    n = len(configs)
    n_holdout = max(1, int(round(holdout_fraction * n)))
    holdout_idx = rng.choice(n, size=n_holdout, replace=False)
    holdout_mask = np.zeros(n, dtype=bool)
    holdout_mask[holdout_idx] = True
    pool_idx = np.nonzero(~holdout_mask)[0]

    baseline = measurement_factory(0 if seed is None else seed)
    baseline_top = set(
        baseline.rank(
            [configs[i] for i in pool_idx], scores[pool_idx], default_score
        ).top(top_k)
    )
    holdout_configs = [configs[i] for i in holdout_idx]
    holdout_scores = scores[holdout_idx]

    points: list[SensitivityPoint] = []
    for size in sample_sizes:
        size = min(size, len(pool_idx))
        sims: list[float] = []
        r2s: list[float] = []
        for rep in range(n_repeats):
            sub = rng.choice(pool_idx, size=size, replace=False)
            m = measurement_factory(rep if seed is None else seed + rep + 1)
            result = m.rank([configs[i] for i in sub], scores[sub], default_score)
            sims.append(intersection_over_union(set(result.top(top_k)), baseline_top))
            r2s.append(_holdout_r2(m, holdout_configs, holdout_scores))
        points.append(
            SensitivityPoint(
                n_samples=size,
                similarity=float(np.mean(sims)),
                similarity_std=float(np.std(sims)),
                r2=float(np.mean(r2s)),
                r2_std=float(np.std(r2s)),
            )
        )
    return points


def _holdout_r2(
    measurement: ImportanceMeasurement,
    configs: Sequence[Configuration],
    scores: np.ndarray,
) -> float:
    """Validation R² of the measurement's fitted surrogate, if it has one.

    Measurements expose ``predict_holdout`` when their surrogate can
    score unseen configurations; otherwise the training R² recorded
    during ranking is used (Lasso's model is the regression itself).
    """
    predict = getattr(measurement, "predict_holdout", None)
    if callable(predict):
        pred = predict(configs)
        return r2_score(scores, pred)
    return measurement.surrogate_r2_ if measurement.surrogate_r2_ is not None else 0.0
