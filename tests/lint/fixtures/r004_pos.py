"""True positives for R004: optimizer/estimator contract violations."""

import numpy as np


class Optimizer:
    def __init__(self, space, seed=None):
        self.space = space
        self.seed = seed


class BadSignatureOptimizer(Optimizer):
    def suggest(self, hist):  # finding: second param must be `history`
        return hist

    def observe(self, obs):  # finding: second param must be `observation`
        return obs


class NoSeedOptimizer(Optimizer):
    def __init__(self, space):  # finding: must accept `seed`
        super().__init__(space)

    def suggest(self, history):
        return history


class SeedlessEstimator:
    """Randomized estimator without a seed attribute."""

    def __init__(self, n_trees):  # finding: no seed param, no self.seed
        self.n_trees = n_trees

    def fit(self, X, y, rng=None):
        del y
        return np.asarray(X)
