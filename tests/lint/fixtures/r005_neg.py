"""True negatives for R005: immutable or None defaults."""


def none_default(values=None):
    values = [] if values is None else values
    return values


def tuple_default(values=()):
    return list(values)


def scalar_defaults(n=10, scale=1.0, label="run", flag=False):
    return (n, scale, label, flag)
