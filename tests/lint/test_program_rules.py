"""Whole-program rules R010–R014 over the fixture mini-packages."""

from pathlib import Path

from repro.lint import LintConfig
from repro.lint.program.driver import run_program_analysis

FIXTURES = Path(__file__).parent / "fixtures" / "program"

PROGRAM_RULES = ["R010", "R011", "R012", "R013", "R014"]


def analyze(*packages, select=PROGRAM_RULES):
    result = run_program_analysis(
        [FIXTURES / p for p in packages],
        LintConfig(select=list(select)),
        use_cache=False,
    )
    return result.findings


def names(findings):
    return sorted((f.rule, Path(f.path).name, f.line) for f in findings)


# ----------------------------------------------------------------------
# R010 / R011 — seed provenance
# ----------------------------------------------------------------------
def test_seedpkg_expected_findings_exactly():
    findings = analyze("seedpkg", select=["R010", "R011"])
    assert names(findings) == [
        ("R010", "flow.py", 14),  # BadTuner: sink fed unrelated_value()
        ("R011", "flow.py", 9),   # BadTuner: seed never used at all
        ("R011", "flow.py", 24),  # DroppingSampler: stored, never read
    ]


def test_cross_module_provenance_silences_r010():
    # GoodTuner seeds via seedpkg.seeds.derive_seed — no finding.
    findings = analyze("seedpkg", select=["R010"])
    assert all("GoodTuner" not in f.message for f in findings)


def test_forwarding_to_subcomponent_silences_r011():
    findings = analyze("seedpkg", select=["R011"])
    assert all("ForwardingSampler" not in f.message for f in findings)
    assert all("checked_but_used" not in f.message for f in findings)


# ----------------------------------------------------------------------
# R012 — optimizer call-site contract
# ----------------------------------------------------------------------
def test_optpkg_expected_findings_exactly():
    findings = analyze("optpkg", select=["R012"])
    assert names(findings) == [
        ("R012", "drive.py", 13),  # suggest(history, 0.5)
        ("R012", "drive.py", 15),  # observe(obs, strict=True)
        ("R012", "impls.py", 17),  # DriftedOptimizer.suggest signature
    ]


def test_r012_ignores_non_optimizer_receivers():
    findings = analyze("optpkg", select=["R012"])
    assert all("thing" not in f.message for f in findings)


def test_r012_accepts_defaulted_keyword_only_params():
    findings = analyze("optpkg", select=["R012"])
    assert all("FlexibleOptimizer" not in f.message for f in findings)


# ----------------------------------------------------------------------
# R013 / R014 — checkpoint symmetry and clock flow
# ----------------------------------------------------------------------
def test_recpkg_expected_findings_exactly():
    findings = analyze("recpkg", select=["R013", "R014"])
    assert names(findings) == [
        ("R013", "records.py", 6),   # run_to_record writes `extra`
        ("R013", "records.py", 16),  # record_to_run reads `missing`
        ("R014", "records.py", 36),  # payload["when"] = stamp()
    ]


def test_r013_conditional_fields_with_get_are_symmetric():
    findings = analyze("recpkg", select=["R013"])
    assert all("state" not in f.message for f in findings)


def test_r014_perf_counter_durations_are_clean():
    findings = analyze("recpkg", select=["R014"])
    assert all("timing_to_payload" not in f.message for f in findings)


# ----------------------------------------------------------------------
# scoping
# ----------------------------------------------------------------------
def test_packages_are_analyzed_in_separate_scopes():
    """Analyzing all three packages together must not change any verdict:
    each top-level package is its own scope, so one package's attribute
    reads or helpers cannot rescue (or indict) another's."""
    combined = analyze("seedpkg", "recpkg", "optpkg")
    separate = (
        analyze("seedpkg", select=["R010", "R011"])
        + analyze("recpkg", select=["R013", "R014"])
        + analyze("optpkg", select=["R012"])
    )
    assert names(combined) == names(separate)


def test_program_rules_quiet_on_repo_src():
    """The production tree carries an empty baseline for R010–R014."""
    repo_root = Path(__file__).resolve().parents[2]
    result = run_program_analysis(
        [repo_root / "src"],
        LintConfig(select=PROGRAM_RULES),
        use_cache=False,
    )
    assert result.findings == []
