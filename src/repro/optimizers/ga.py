"""Genetic-algorithm optimizer (paper §3.2).

Classic generational GA over the unit-encoded space: tournament selection,
uniform crossover, Gaussian mutation for numeric genes and random re-draw
for categorical genes, with elitism.  Categorical knobs are supported
natively (Table 3), but with 200 evaluations the GA completes only a few
generations — the sample inefficiency behind its poor paper ranking.
"""

from __future__ import annotations

import numpy as np

from repro.optimizers.base import History, Observation, Optimizer
from repro.space import Configuration, ConfigurationSpace
from repro.space.sampling import latin_hypercube


class GA(Optimizer):
    """Generational genetic algorithm emitting one individual per suggest."""

    name = "ga"
    uses_lhs_init = False  # the GA seeds its own initial population

    def __init__(
        self,
        space: ConfigurationSpace,
        seed: int | None = None,
        population_size: int = 20,
        tournament_size: int = 3,
        crossover_prob: float = 0.9,
        mutation_prob: float = 0.1,
        mutation_sigma: float = 0.15,
        n_elites: int = 2,
    ) -> None:
        super().__init__(space, seed)
        if population_size < 4:
            raise ValueError("population_size must be >= 4")
        if not 0 <= n_elites < population_size:
            raise ValueError("n_elites must be in [0, population_size)")
        self.population_size = population_size
        self.tournament_size = tournament_size
        self.crossover_prob = crossover_prob
        self.mutation_prob = mutation_prob
        self.mutation_sigma = mutation_sigma
        self.n_elites = n_elites
        self._queue: list[np.ndarray] = []
        self._evaluated: list[tuple[np.ndarray, float]] = []
        self._pending: dict[int, np.ndarray] = {}
        self.generation = 0

    # ------------------------------------------------------------------
    def _tournament(self) -> np.ndarray:
        idx = self.rng.choice(len(self._evaluated), size=self.tournament_size, replace=True)
        best = max(idx, key=lambda i: self._evaluated[int(i)][1])
        return self._evaluated[int(best)][0]

    def _crossover(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        mask = self.rng.random(len(a)) < 0.5
        return np.where(mask, a, b)

    def _mutate(self, genome: np.ndarray) -> np.ndarray:
        out = genome.copy()
        cat = self.space.categorical_mask
        for j in range(len(out)):
            if self.rng.random() >= self.mutation_prob:
                continue
            if cat[j]:
                out[j] = self.rng.random()
            else:
                out[j] = float(np.clip(out[j] + self.rng.normal(0.0, self.mutation_sigma), 0.0, 1.0))
        return out

    def _next_generation(self) -> list[np.ndarray]:
        ranked = sorted(self._evaluated, key=lambda t: t[1], reverse=True)
        children: list[np.ndarray] = [g.copy() for g, __ in ranked[: self.n_elites]]
        while len(children) < self.population_size:
            parent_a = self._tournament()
            parent_b = self._tournament()
            if self.rng.random() < self.crossover_prob:
                child = self._crossover(parent_a, parent_b)
            else:
                child = parent_a.copy()
            children.append(self._mutate(child))
        return children

    # ------------------------------------------------------------------
    def suggest(self, history: History) -> Configuration:
        if not self._queue:
            if len(self._evaluated) >= self.population_size:
                self._queue = self._next_generation()
                self._evaluated = []
                self.generation += 1
            else:
                design = latin_hypercube(self.population_size, self.space.n_dims, self.rng)
                self._queue = [row for row in design]
        genome = self._queue.pop()
        config = self.space.decode(genome)
        self._pending[hash(config)] = self.space.encode(config)
        return config

    def observe(self, observation: Observation) -> None:
        genome = self._pending.pop(hash(observation.config), None)
        if genome is None:
            genome = self.space.encode(observation.config)
        self._evaluated.append((genome, observation.score))
