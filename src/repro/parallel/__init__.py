"""Parallel experiment execution.

Every evaluation artifact in the reproduction boils down to a batch of
fully independent ``(server, optimizer, session)`` runs.  This package
fans those runs out over a process pool while keeping them bit-identical
to serial execution — and keeps the work durable when workers die:

- :mod:`repro.parallel.spec` describes one run (:class:`RunSpec`) and its
  outcome (:class:`RunResult`), and derives per-run seeds from a single
  root seed via ``numpy.random.SeedSequence.spawn`` so the simulator's
  noise stream, the optimizer's sampling stream, and the session's LHS
  stream are statistically independent *and* independent of the execution
  order.
- :mod:`repro.parallel.executor` schedules specs onto a
  ``ProcessPoolExecutor``, harvesting futures as they complete.  A broken
  pool costs only the run on the dead worker (charged a retryable failed
  attempt); results that completed before the break are preserved via the
  worker-side attempt journal, and unstarted runs are resubmitted on a
  fresh pool free of charge.
- :mod:`repro.parallel.telemetry` streams one JSON line per finished run
  *attempt* the moment it completes (plus per-run ``"final"`` records at
  study end) — tailable, append-only, and readable past a torn final
  line.
- :mod:`repro.parallel.checkpoint` persists completed results to an
  append-only :class:`StudyCheckpoint` keyed by a content hash of the
  spec, so a killed study resumes without re-running finished work.
- :mod:`repro.parallel.faults` injects deterministic worker deaths,
  objective failures, and torn writes — the harness proving all of the
  above.
"""

from repro.parallel.checkpoint import (
    StudyCheckpoint,
    history_fingerprint,
    record_to_result,
    result_fingerprint,
    result_to_record,
    spec_key,
)
from repro.parallel.executor import ParallelExecutor, execute_run
from repro.parallel.faults import (
    FlakyEval,
    HangingObjective,
    InjectedFault,
    RaisingObjective,
    TransientObjective,
    WorkerKiller,
    choose_victims,
    transient_schedule,
    truncate_tail,
)
from repro.parallel.spec import (
    RegistryOptimizerFactory,
    RunResult,
    RunSeeds,
    RunSpec,
    derive_run_seeds,
)
from repro.parallel.telemetry import (
    append_telemetry_record,
    attempt_records,
    final_records,
    read_telemetry,
    telemetry_record,
    write_telemetry,
)

__all__ = [
    "FlakyEval",
    "HangingObjective",
    "InjectedFault",
    "ParallelExecutor",
    "RaisingObjective",
    "RegistryOptimizerFactory",
    "RunResult",
    "RunSeeds",
    "RunSpec",
    "StudyCheckpoint",
    "TransientObjective",
    "WorkerKiller",
    "append_telemetry_record",
    "attempt_records",
    "choose_victims",
    "derive_run_seeds",
    "execute_run",
    "final_records",
    "history_fingerprint",
    "read_telemetry",
    "record_to_result",
    "result_fingerprint",
    "result_to_record",
    "spec_key",
    "telemetry_record",
    "transient_schedule",
    "truncate_tail",
    "write_telemetry",
]
