"""Objectives: what a tuning session evaluates.

A :class:`DatabaseObjective` binds a (simulated) server to the knob
subspace being tuned; partial configurations are completed with defaults
by the server.  A :class:`SurrogateObjective` exposes the same interface
over a trained regression surrogate — the cheap benchmark of Section 8.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.dbms.server import MySQLServer
from repro.optimizers.base import Observation
from repro.space import Configuration, ConfigurationSpace


class DatabaseObjective:
    """Evaluate configurations against a (simulated) DBMS.

    Scores are maximization targets: throughput as-is, latency negated.
    """

    def __init__(self, server: MySQLServer, space: ConfigurationSpace) -> None:
        self.server = server
        self.space = space

    @property
    def direction(self) -> str:
        return self.server.objective_direction

    def score_of(self, objective_value: float) -> float:
        """Convert a raw objective value to a maximization score."""
        return -objective_value if self.direction == "min" else objective_value

    def default_score(self) -> float:
        return self.score_of(self.server.default_objective())

    def failure_fallback_score(self) -> float:
        """Score assigned to failures before any success exists.

        A crashed DBMS is decisively worse than the default: a third of
        the default throughput, or three times the default latency.
        """
        default = self.server.default_objective()
        if self.direction == "min":
            return self.score_of(default * 3.0)
        return self.score_of(default / 3.0)

    def __call__(self, config: Mapping[str, Any]) -> Observation:
        result = self.server.evaluate(config)
        if result.failed:
            score = float("nan")
        else:
            score = self.score_of(result.objective)
        return Observation(
            config=Configuration(dict(config)),
            objective=result.objective,
            score=score,
            failed=result.failed,
            failure_reason=result.failure_reason,
            failure_kind=result.failure_kind,
            metrics=result.metrics,
            simulated_seconds=result.simulated_seconds,
        )


class SurrogateObjective:
    """The Section 8 tuning benchmark: a model stands in for the DBMS.

    ``predictor`` maps an encoded configuration matrix to predicted raw
    objective values.  Evaluations are deterministic, near-instant, and
    never fail, which is precisely the benchmark's value proposition.
    """

    def __init__(
        self,
        space: ConfigurationSpace,
        predictor: Callable[[Any], Any],
        direction: str = "max",
        default_objective: float | None = None,
        simulated_seconds_per_eval: float = 0.08,
    ) -> None:
        if direction not in ("max", "min"):
            raise ValueError("direction must be 'max' or 'min'")
        self.space = space
        self.predictor = predictor
        self.direction = direction
        self._default_objective = default_objective
        self.simulated_seconds_per_eval = simulated_seconds_per_eval
        self.n_evaluations = 0

    def score_of(self, objective_value: float) -> float:
        return -objective_value if self.direction == "min" else objective_value

    def default_score(self) -> float:
        if self._default_objective is None:
            default = self.space.default_configuration()
            value = float(self.predictor(self.space.encode(default)[None, :])[0])
            self._default_objective = value
        return self.score_of(self._default_objective)

    def failure_fallback_score(self) -> float:
        # Surrogate evaluations cannot fail; keep the interface uniform.
        return self.default_score()

    def __call__(self, config: Mapping[str, Any]) -> Observation:
        cfg = Configuration(dict(config))
        value = float(self.predictor(self.space.encode(cfg)[None, :])[0])
        self.n_evaluations += 1
        return Observation(
            config=cfg,
            objective=value,
            score=self.score_of(value),
            failed=False,
            simulated_seconds=self.simulated_seconds_per_eval,
        )
