"""True positives for R008: exact float comparison against non-sentinels."""


def compare_fraction(x):
    return x == 0.5  # finding


def not_equal_pi(x):
    return x != 3.14159  # finding


def negative_literal(x):
    return x == -2.5  # finding


def chained(x, y):
    return 0.1 == x == y  # finding (left literal)
