"""Checkpoint/resume for long studies.

The paper's headline cost — 10+ hours for one 200-iteration tuning
session (§4.1) — means a study interrupted near the end must never
re-run its finished work.  This module makes run results durable:

- :func:`spec_key` derives a content hash of a :class:`RunSpec` that is
  stable across processes and restarts, so a resumed study can recognize
  "the same run" without trusting object identity or list positions.
- :func:`result_to_record` / :func:`record_to_result` serialize a full
  :class:`RunResult` — including every observation of its history — to a
  JSON record and back.  Floats round-trip exactly (``json`` emits
  ``repr``-precision), so a reloaded history is value-identical to the
  one that was executed.
- :class:`StudyCheckpoint` is an append-only JSONL file of completed
  results keyed by :func:`spec_key`.  Each record is appended the moment
  its run finishes, so a study killed mid-flight keeps everything it had
  completed; the reader tolerates a torn final line (a kill mid-write).
- :func:`history_fingerprint` / :func:`result_fingerprint` hash the
  *deterministic projection* of a result (configs, objectives, scores,
  failure flags, simulated time — never host wall-clock), which is what
  kill-and-resume equivalence is asserted on byte-for-byte.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import warnings
from typing import Any

import numpy as np

from repro.optimizers.base import History, Observation
from repro.parallel.spec import RunResult, RunSpec
from repro.resilience.taxonomy import FailureKind
from repro.space import Configuration, ConfigurationSpace


# ----------------------------------------------------------------------
# canonical JSON helpers
# ----------------------------------------------------------------------
def _native(value: Any) -> Any:
    """Convert numpy scalars to the equivalent builtin (value-exact)."""
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    raise TypeError(f"not JSON-serializable: {type(value).__name__}")


def _dumps(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, default=_native)


# ----------------------------------------------------------------------
# spec identity
# ----------------------------------------------------------------------
def _describe(obj: Any) -> str | None:
    """A process-stable description of an optimizer factory / objective.

    Dataclasses (e.g. ``RegistryOptimizerFactory``, the fault injectors)
    have deterministic reprs; for plain objects we use the class name plus
    sorted instance attributes, never the default ``repr`` (whose memory
    address would change every process and silently defeat resume).
    """
    if obj is None:
        return None
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return repr(obj)
    state = getattr(obj, "__dict__", None)
    if state is not None:
        inner = ",".join(f"{k}={state[k]!r}" for k in sorted(state))
        return f"{type(obj).__qualname__}({inner})"
    return type(obj).__qualname__


def _describe_space(space: ConfigurationSpace) -> list[str]:
    out = []
    for knob in space.knobs:
        bounds = ""
        lower = getattr(knob, "lower", None)
        upper = getattr(knob, "upper", None)
        choices = getattr(knob, "choices", None)
        if lower is not None or upper is not None:
            bounds = f"[{lower!r},{upper!r}]"
        elif choices is not None:
            bounds = repr(tuple(choices))
        out.append(f"{type(knob).__name__}:{knob.name}={knob.default!r}{bounds}")
    return out


def spec_key(spec: RunSpec) -> str:
    """Content hash identifying one run across processes and restarts.

    Covers everything that determines the run's results: workload,
    instance, budget, the seed triple, the knob space, the optimizer
    factory/instance, the objective, and the warm start.  Deliberately
    excludes ``iteration_hook`` (observers must not affect results, so a
    study resumed with its fault injectors removed still matches) and
    ``tags`` (display metadata).
    """
    payload = {
        "run_index": spec.run_index,
        "workload": spec.workload,
        "instance": spec.instance,
        "n_iterations": spec.n_iterations,
        "n_initial": spec.n_initial,
        "server_seed": spec.server_seed,
        "optimizer_seed": spec.optimizer_seed,
        "session_seed": spec.session_seed,
        "space": _describe_space(spec.space),
        "optimizer": _describe(spec.optimizer_factory or spec.optimizer),
        "objective": _describe(spec.objective),
        "warm_start": [observation_to_record(o) for o in spec.warm_start or []],
    }
    # Budget and guard policy change a run's results, so they belong in
    # the key — but only when set, so keys of pre-resilience specs (and
    # their checkpoints) are unchanged.  ``guard_seed`` is excluded like
    # ``iteration_hook``: backoff jitter affects wall-clock, not results.
    if spec.max_simulated_hours is not None:
        payload["max_simulated_hours"] = spec.max_simulated_hours
    if spec.guard is not None:
        describe = getattr(spec.guard, "describe", None)
        payload["guard"] = describe() if describe is not None else _describe(spec.guard)
    return hashlib.sha256(_dumps(payload).encode("utf-8")).hexdigest()[:20]


# ----------------------------------------------------------------------
# result (de)serialization
# ----------------------------------------------------------------------
def observation_to_record(obs: Observation) -> dict[str, Any]:
    record = {
        "config": {k: obs.config[k] for k in sorted(obs.config)},
        "objective": obs.objective,
        "score": obs.score,
        "failed": obs.failed,
        "failure_reason": obs.failure_reason,
        "metrics": {k: obs.metrics[k] for k in sorted(obs.metrics)},
        "iteration": obs.iteration,
        "suggest_seconds": obs.suggest_seconds,
        "simulated_seconds": obs.simulated_seconds,
    }
    # Resilience fields appear only at non-default values: observations
    # from unguarded runs serialize byte-identically to the pre-resilience
    # format, so their history fingerprints (and spec keys of warm-started
    # specs) are unchanged.
    if obs.failure_kind is not None:
        record["failure_kind"] = obs.failure_kind.value
    if obs.eval_attempts != 1:
        record["eval_attempts"] = obs.eval_attempts
    return record


def record_to_observation(record: dict[str, Any]) -> Observation:
    # ``.get`` for fields that postdate the original record format, so
    # checkpoints written before the resilience layer still load.
    kind = record.get("failure_kind")
    return Observation(
        config=Configuration(record["config"]),
        objective=record["objective"],
        score=record["score"],
        failed=record["failed"],
        failure_reason=record["failure_reason"],
        failure_kind=None if kind is None else FailureKind(kind),
        metrics=dict(record["metrics"]),
        iteration=record["iteration"],
        suggest_seconds=record["suggest_seconds"],
        simulated_seconds=record["simulated_seconds"],
        eval_attempts=record.get("eval_attempts", 1),
    )


def history_to_record(history: History) -> dict[str, Any]:
    return {
        "task_id": history.task_id,
        "observations": [observation_to_record(o) for o in history],
    }


def record_to_history(record: dict[str, Any], space: ConfigurationSpace) -> History:
    history = History(space, task_id=record["task_id"])
    for obs_record in record["observations"]:
        history.append(record_to_observation(obs_record))
    return history


def result_to_record(result: RunResult) -> dict[str, Any]:
    """Full-precision JSON view of a result (unlike the rounded telemetry)."""
    return {
        "run_index": result.run_index,
        "failed": result.failed,
        "error": result.error,
        "attempts": result.attempts,
        "wall_seconds": result.wall_seconds,
        "suggest_seconds": result.suggest_seconds,
        "eval_seconds": result.eval_seconds,
        "simulated_hours": result.simulated_hours,
        "n_iterations": result.n_iterations,
        "n_failed_evals": result.n_failed_evals,
        "stop_reason": result.stop_reason,
        "failure_kinds": result.failure_kinds,
        "tags": result.tags,
        "history": None if result.history is None else history_to_record(result.history),
    }


def record_to_result(record: dict[str, Any], space: ConfigurationSpace) -> RunResult:
    history = record["history"]
    return RunResult(
        run_index=record["run_index"],
        history=None if history is None else record_to_history(history, space),
        failed=record["failed"],
        error=record["error"],
        attempts=record["attempts"],
        wall_seconds=record["wall_seconds"],
        suggest_seconds=record["suggest_seconds"],
        eval_seconds=record["eval_seconds"],
        simulated_hours=record["simulated_hours"],
        n_iterations=record["n_iterations"],
        n_failed_evals=record["n_failed_evals"],
        stop_reason=record.get("stop_reason"),
        failure_kinds=dict(record.get("failure_kinds") or {}),
        tags=dict(record["tags"]),
    )


# ----------------------------------------------------------------------
# deterministic fingerprints
# ----------------------------------------------------------------------
def _observation_projection(obs: Observation) -> dict[str, Any]:
    record = observation_to_record(obs)
    # Host wall-clock is the only run-dependent field of an observation;
    # everything else is fully determined by the spec's seeds.
    del record["suggest_seconds"]
    return record


def history_fingerprint(history: History) -> str:
    """SHA-256 of the deterministic projection of a history.

    Two histories produced from the same spec — serially, in parallel, or
    across a kill-and-resume boundary — have equal fingerprints; host
    timing fields (``suggest_seconds``) are excluded.
    """
    payload = [_observation_projection(o) for o in history]
    return hashlib.sha256(_dumps(payload).encode("utf-8")).hexdigest()


def result_fingerprint(result: RunResult) -> str:
    """Fingerprint of a result's deterministic fields (no wall-clock)."""
    payload = {
        "run_index": result.run_index,
        "failed": result.failed,
        "simulated_hours": result.simulated_hours,
        "n_iterations": result.n_iterations,
        "n_failed_evals": result.n_failed_evals,
        "history": None
        if result.history is None
        else [_observation_projection(o) for o in result.history],
    }
    return hashlib.sha256(_dumps(payload).encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# the checkpoint file
# ----------------------------------------------------------------------
class StudyCheckpoint:
    """Append-only JSONL of completed runs, keyed by :func:`spec_key`.

    One record per line: ``{"key": <spec_key>, "result": <result record>}``.
    Records are appended (open/write/close per run) the moment a run
    completes, so the file is valid after a kill at any instant except
    mid-write of the final line — which :meth:`load` tolerates by skipping
    a torn trailing line with a warning.  Only successful results are
    recorded: a failed run stays eligible for re-execution on resume.
    """

    def __init__(self, path: str) -> None:
        self.path = path

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def load(self) -> dict[str, dict[str, Any]]:
        """Key -> result record for every intact line (last write wins)."""
        if not self.exists():
            return {}
        cache: dict[str, dict[str, Any]] = {}
        with open(self.path, encoding="utf-8") as fh:
            lines = [ln for ln in (raw.strip() for raw in fh) if ln]
        for i, line in enumerate(lines):
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                if i == len(lines) - 1:
                    warnings.warn(
                        f"skipping torn final checkpoint line in {self.path} "
                        "(study was likely killed mid-write)",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    break
                raise
            cache[entry["key"]] = entry["result"]
        return cache

    def record(self, key: str, result: RunResult) -> None:
        """Durably append one completed result (no-op for failed runs)."""
        if result.failed:
            return
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        line = json.dumps({"key": key, "result": result_to_record(result)}, default=_native)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()

    def get(self, key: str, space: ConfigurationSpace) -> RunResult | None:
        record = self.load().get(key)
        if record is None:
            return None
        return record_to_result(record, space)
