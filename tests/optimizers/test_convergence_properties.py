"""Convergence sanity on canonical synthetic landscapes.

These are slower behavioural tests pinning each optimizer family's
characteristic strength on the landscape type the paper associates it
with.
"""

import numpy as np
import pytest

from repro.optimizers import GA, SMAC, TPE, MixedKernelBO, TuRBO, VanillaBO
from repro.optimizers.base import History, Observation
from repro.space import CategoricalKnob, ConfigurationSpace, ContinuousKnob


def drive(optimizer, space, objective, n_iters, seed=0):
    rng = np.random.default_rng(seed)
    history = History(space)
    for i in range(n_iters):
        config = (
            space.sample_configuration(rng) if i < 6 else optimizer.suggest(history)
        )
        obs = Observation(config=config, objective=objective(config), score=objective(config))
        history.append(obs)
        optimizer.observe(obs)
    return history


@pytest.fixture
def space6():
    return ConfigurationSpace(
        [ContinuousKnob(f"x{i}", 0.0, 1.0, 0.5) for i in range(6)], seed=0
    )


class TestLandscapes:
    def test_gp_bo_on_smooth_bowl(self, space6):
        """Low-dimensional smooth landscape: GP-BO territory."""
        target = np.array([0.2, 0.8, 0.4, 0.6, 0.3, 0.7])
        objective = lambda c: -sum(  # noqa: E731
            (c[f"x{i}"] - target[i]) ** 2 for i in range(6)
        )
        h = drive(VanillaBO(space6, seed=0), space6, objective, 50)
        assert h.best().score > -0.08

    def test_smac_on_rugged_interaction_landscape(self, space6):
        """Conditional structure: forest-surrogate territory."""

        def objective(c):
            base = -abs(c["x0"] - 0.7)
            bonus = 0.5 if (c["x1"] > 0.6 and c["x2"] > 0.6) else 0.0
            return base + bonus

        h = drive(SMAC(space6, seed=0), space6, objective, 60)
        best = h.best().config
        assert best["x1"] > 0.6 and best["x2"] > 0.6

    def test_turbo_local_refinement(self, space6):
        """TuRBO should refine within a narrow basin once it finds it."""
        objective = lambda c: -20.0 * (c["x0"] - 0.55) ** 2 - sum(  # noqa: E731
            0.1 * (c[f"x{i}"] - 0.5) ** 2 for i in range(1, 6)
        )
        h = drive(TuRBO(space6, seed=1, n_regions=2), space6, objective, 60)
        assert abs(h.best().config["x0"] - 0.55) < 0.1

    def test_tpe_struggles_with_xor_interaction(self, space6):
        """The paper's TPE critique: per-dimension densities miss XOR."""

        def xor_objective(c):
            a, b = c["x0"] > 0.5, c["x1"] > 0.5
            return 1.0 if (a ^ b) else 0.0

        rng_scores = []
        for seed in range(3):
            h = drive(TPE(space6, seed=seed), space6, xor_objective, 40, seed=seed)
            # fraction of post-warmup suggestions landing in a good XOR cell
            good = np.mean([o.score for o in h.observations[6:]])
            rng_scores.append(good)
        # TPE cannot exceed the random baseline (0.5) by much on pure XOR
        assert np.mean(rng_scores) < 0.85

    def test_ga_improves_across_generations(self, space6):
        objective = lambda c: c["x0"] + c["x1"]  # noqa: E731
        opt = GA(space6, seed=0, population_size=8)
        h = drive(opt, space6, objective, 50)
        first_gen = max(o.score for o in h.observations[:8])
        assert h.best().score >= first_gen

    def test_mixed_bo_categorical_landscape(self):
        space = ConfigurationSpace(
            [
                CategoricalKnob("c1", ["a", "b", "c", "d"], "a"),
                CategoricalKnob("c2", ["p", "q", "r", "s"], "p"),
                ContinuousKnob("x", 0.0, 1.0, 0.5),
            ],
            seed=0,
        )
        bonus = {("b", "q"): 1.0, ("c", "r"): 0.6}
        objective = lambda c: bonus.get((c["c1"], c["c2"]), 0.0) - 0.2 * abs(  # noqa: E731
            c["x"] - 0.5
        )
        h = drive(MixedKernelBO(space, seed=0), space, objective, 50)
        assert (h.best().config["c1"], h.best().config["c2"]) in bonus
