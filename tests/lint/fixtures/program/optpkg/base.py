"""The contract root the fixture optimizers inherit from."""

import numpy as np


class Optimizer:
    def __init__(self, space, seed=None):
        self.space = space
        self.rng = np.random.default_rng(seed)

    def suggest(self, history):
        raise NotImplementedError

    def observe(self, observation):
        raise NotImplementedError
