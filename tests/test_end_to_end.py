"""End-to-end integration: the paper's recommended path.

Section 9: "using SHAP measurement to prune the unimportant knobs and
adopting SMAC optimizer in the RGPE transfer framework could reach the
best end-to-end performance."  This test walks that full path at small
scale: sample pool -> SHAP selection -> source histories -> RGPE(SMAC)
tuning -> reporting, and checks every seam.
"""

import numpy as np

from repro.dbms import MySQLServer, mysql_knob_space
from repro.optimizers import SMAC
from repro.selection import ShapImportance, collect_samples
from repro.transfer import RGPESMAC, SourceTask, TransferRepository
from repro.tuning import (
    DatabaseObjective,
    TuningSession,
    improvement_over_default,
    performance_enhancement,
)


def test_full_paper_pipeline():
    # 1. knob selection: SHAP over an LHS pool on the full 197-knob space
    full = mysql_knob_space("B", seed=0)
    pool_server = MySQLServer("SYSBENCH", "B", seed=1)
    configs, scores, default_score = collect_samples(pool_server, full, 250, seed=1)
    shap = ShapImportance(full, seed=1, n_targets=8, n_permutations=4)
    ranking = shap.rank(configs, scores, default_score=default_score)
    space = full.subspace(ranking.top(10), seed=0)

    # 2. historical data from source workloads over the pruned space
    repo = TransferRepository()
    for idx, source in enumerate(("SEATS", "Smallbank")):
        server = MySQLServer(source, "B", seed=10 + idx)
        objective = DatabaseObjective(server, space)
        session = TuningSession(
            objective, SMAC(space, seed=idx), space,
            max_iterations=15, n_initial=5, seed=idx,
        )
        repo.add(SourceTask(source, session.run()))

    # 3. target tuning: SMAC without transfer vs RGPE(SMAC)
    def tune(optimizer, seed):
        server = MySQLServer("TPC-C", "B", seed=seed)
        objective = DatabaseObjective(server, space)
        session = TuningSession(
            objective, optimizer, space, max_iterations=20, n_initial=5, seed=seed
        )
        return server, session.run()

    server_base, base = tune(SMAC(space, seed=5), 21)
    server_rgpe, rgpe = tune(RGPESMAC(space, repo, seed=5), 21)

    # 4. reporting
    improvement = improvement_over_default(
        rgpe.best().objective, server_rgpe.default_objective(), "max"
    )
    pe = performance_enhancement(rgpe.best().score, base.best().score)
    assert improvement > 0.0  # the pipeline beats MySQL defaults
    assert np.isfinite(pe)
    assert len(rgpe) == 20
    # the transfer machinery was actually engaged: at least one non-init
    # suggestion happened, using the RGPE ensemble
    assert any(o.suggest_seconds > 0 for o in rgpe)
    assert len(base) == 20
