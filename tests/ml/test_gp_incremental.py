"""Incremental (bordered) Cholesky append and ``GaussianProcessRegressor.augment``."""

import numpy as np
import pytest
from scipy import linalg

from repro.ml.gp import GaussianProcessRegressor
from repro.ml.kernels import ConstantKernel, RBFKernel
from repro.perf.incremental import cholesky_append


def _spd_matrix(n, rng):
    A = rng.standard_normal((n, n))
    return A @ A.T + n * np.eye(n)


class TestCholeskyAppend:
    def test_matches_full_factorization(self):
        rng = np.random.default_rng(11)
        K = _spd_matrix(8, rng)
        k = rng.standard_normal(8) * 0.1
        kappa = 12.0
        bordered = np.zeros((9, 9))
        bordered[:8, :8] = K
        bordered[8, :8] = k
        bordered[:8, 8] = k
        bordered[8, 8] = kappa
        L = linalg.cholesky(K, lower=True)
        L_inc = cholesky_append(L, k, kappa)
        L_full = linalg.cholesky(bordered, lower=True)
        np.testing.assert_allclose(L_inc, L_full, atol=1e-10)

    def test_empty_factor(self):
        L = cholesky_append(np.zeros((0, 0)), np.zeros(0), 4.0)
        np.testing.assert_allclose(L, [[2.0]])

    def test_rejects_non_positive_definite(self):
        rng = np.random.default_rng(3)
        K = _spd_matrix(5, rng)
        L = linalg.cholesky(K, lower=True)
        # Duplicate an existing row/column with its exact diagonal entry:
        # the Schur complement is (numerically) zero, so the bordered
        # matrix is singular.
        with pytest.raises(linalg.LinAlgError, match="positive definite"):
            cholesky_append(L, K[:, 2], float(K[2, 2]))

    def test_shape_validation(self):
        rng = np.random.default_rng(4)
        L = linalg.cholesky(_spd_matrix(4, rng), lower=True)
        with pytest.raises(ValueError, match="shape"):
            cholesky_append(L, np.zeros(3), 1.0)
        with pytest.raises(ValueError, match="square"):
            cholesky_append(np.zeros((4, 3)), np.zeros(4), 1.0)


class TestAugment:
    def _make_gp(self, seed=0):
        return GaussianProcessRegressor(
            kernel=ConstantKernel(1.0) * RBFKernel(0.5),
            noise=1e-4,
            optimize_hyperparams=False,
            seed=seed,
        )

    def test_fifty_appends_match_full_refit(self):
        """The ISSUE acceptance check: 50 sequential O(n^2) appends stay
        within atol=1e-8 of a from-scratch fit on the same data."""
        rng = np.random.default_rng(42)
        d = 4
        X_all = rng.random((60, d))
        y_all = np.sin(4.0 * X_all[:, 0]) + X_all[:, 1] ** 2 + 0.05 * rng.standard_normal(60)
        X_test = rng.random((25, d))

        inc = self._make_gp().fit(X_all[:10], y_all[:10])
        for i in range(10, 60):
            inc.augment(X_all[i], float(y_all[i]))

        full = self._make_gp().fit(X_all, y_all)
        mean_inc, std_inc = inc.predict(X_test, return_std=True)
        mean_full, std_full = full.predict(X_test, return_std=True)
        np.testing.assert_allclose(mean_inc, mean_full, atol=1e-8)
        np.testing.assert_allclose(std_inc, std_full, atol=1e-8)
        np.testing.assert_allclose(
            inc.log_marginal_likelihood_, full.log_marginal_likelihood_, atol=1e-8
        )

    def test_augment_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            self._make_gp().augment(np.zeros(3), 1.0)

    def test_augment_shape_validation(self):
        rng = np.random.default_rng(5)
        gp = self._make_gp().fit(rng.random((6, 3)), rng.random(6))
        with pytest.raises(ValueError, match="shape"):
            gp.augment(np.zeros(2), 1.0)

    def test_augment_falls_back_to_full_refit(self, monkeypatch):
        """A non-PD bordered matrix triggers a fixed-theta refactorization,
        and the ``optimize_hyperparams`` flag survives the fallback."""
        rng = np.random.default_rng(6)
        X = rng.random((8, 3))
        y = rng.random(8)
        gp = GaussianProcessRegressor(
            kernel=ConstantKernel(1.0) * RBFKernel(0.5), noise=1e-4, seed=0
        )
        gp.fit(X, y)
        theta_before = gp.kernel.theta.copy()

        def _always_non_pd(L, k, kappa):
            raise linalg.LinAlgError("forced non-PD")

        monkeypatch.setattr("repro.ml.gp.cholesky_append", _always_non_pd)
        x_new = rng.random(3)
        gp.augment(x_new, 0.5)
        assert gp.optimize_hyperparams is True  # restored after fallback
        assert len(gp._X) == 9
        # Fallback refactorizes at the *frozen* theta — no re-optimization.
        np.testing.assert_array_equal(gp.kernel.theta, theta_before)
        mean = gp.predict(x_new[None, :])
        assert np.all(np.isfinite(mean))

    def test_extends_by_one(self):
        rng = np.random.default_rng(7)
        X = rng.random((5, 2))
        y = rng.random(5)
        gp = self._make_gp().fit(X, y)
        grown_X = np.vstack([X, rng.random((1, 2))])
        grown_y = np.concatenate([y, [0.3]])
        assert gp.extends_by_one(grown_X, grown_y)
        assert not gp.extends_by_one(X, y)  # same size, not +1
        assert not gp.extends_by_one(grown_X[::-1], grown_y)  # reordered prefix
        assert not gp.extends_by_one(
            np.vstack([X, rng.random((2, 2))]), np.concatenate([y, [0.1, 0.2]])
        )  # +2 rows
        assert not self._make_gp().extends_by_one(grown_X, grown_y)  # unfitted
