"""Random forest regression (Breiman, 2001).

The forest is the workhorse of the paper: SMAC's surrogate, the ablation
and SHAP surrogates, the fANOVA base model, and the winning surrogate of
the tuning benchmark (Table 9) are all random forests.  Besides the mean
prediction it exposes the across-tree variance that SMAC's Gaussian
assumption ``N(y | mu, sigma^2)`` requires.
"""

from __future__ import annotations

import numpy as np

from repro.ml.tree import DecisionTreeRegressor


class RandomForestRegressor:
    """Bagged CART ensemble with per-tree feature subsampling."""

    def __init__(
        self,
        n_estimators: int = 30,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = 0.8,
        bootstrap: bool = True,
        seed: int | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.seed = seed
        self.trees_: list[DecisionTreeRegressor] = []
        self.n_features_: int = 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if len(X) != len(y):
            raise ValueError("X and y length mismatch")
        if len(X) == 0:
            raise ValueError("cannot fit on empty data")
        n = len(X)
        self.n_features_ = X.shape[1]
        rng = np.random.default_rng(self.seed)
        self.trees_ = []
        for _ in range(self.n_estimators):
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            if self.bootstrap:
                idx = rng.integers(0, n, size=n)
                tree.fit(X[idx], y[idx])
            else:
                tree.fit(X, y)
            self.trees_.append(tree)
        return self

    def _check_fitted(self) -> None:
        if not self.trees_:
            raise RuntimeError("forest is not fitted")

    def tree_predictions(self, X: np.ndarray) -> np.ndarray:
        """Per-tree predictions, shape ``(n_estimators, n_samples)``."""
        self._check_fitted()
        return np.array([tree.predict(X) for tree in self.trees_])

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Mean prediction across trees."""
        return self.tree_predictions(X).mean(axis=0)

    def predict_with_std(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Mean and across-tree standard deviation (SMAC's mu, sigma).

        A small floor keeps sigma positive so acquisition functions stay
        well-defined even where all trees agree.
        """
        preds = self.tree_predictions(X)
        mean = preds.mean(axis=0)
        std = preds.std(axis=0)
        return mean, np.maximum(std, 1e-9)

    def split_counts(self) -> np.ndarray:
        """Total split counts per feature across trees (Gini score basis)."""
        self._check_fitted()
        counts = np.zeros(self.n_features_)
        for tree in self.trees_:
            counts += tree.split_counts()
        return counts

    def feature_importances(self) -> np.ndarray:
        """Mean normalized impurity-decrease importances across trees."""
        self._check_fitted()
        imp = np.zeros(self.n_features_)
        for tree in self.trees_:
            imp += tree.feature_importances()
        total = imp.sum()
        return imp / total if total > 0 else imp
