"""Per-transaction trace synthesis for OLTP stress tests.

The engine produces aggregate throughput; real controllers (OLTP-Bench)
also report per-transaction latency percentiles.  This module expands an
aggregate stress-test result into a synthetic transaction trace whose
latency distribution is consistent with the aggregate numbers:

- mean latency follows Little's law (``threads / throughput``),
- the body is lognormal (typical of OLTP latency distributions),
- checkpoint/flush stalls appear as a heavy tail whose mass grows with
  the workload's write fraction and observed dirty-page pressure.

Traces make latency-percentile objectives (p95/p99) available for OLTP
workloads, mirroring the paper's note that any chosen metric can be the
tuning objective (§2.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dbms.server import StressTestResult
from repro.workloads.profiles import WorkloadProfile


@dataclass
class TransactionTrace:
    """A synthesized stress-test trace."""

    latencies_ms: np.ndarray
    duration_s: float
    threads: int

    @property
    def throughput(self) -> float:
        """Transactions per second implied by the trace."""
        return len(self.latencies_ms) / self.duration_s

    def percentile(self, q: float) -> float:
        """Latency percentile in milliseconds (q in [0, 100])."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        return float(np.percentile(self.latencies_ms, q))

    @property
    def mean_latency_ms(self) -> float:
        return float(self.latencies_ms.mean())


def synthesize_trace(
    result: StressTestResult,
    workload: WorkloadProfile,
    duration_s: float = 180.0,
    seed: int | None = None,
    max_transactions: int = 200_000,
) -> TransactionTrace:
    """Expand an aggregate stress-test result into a transaction trace.

    The trace reproduces the aggregate throughput exactly (up to the
    transaction-count cap) and synthesizes a latency distribution whose
    mean satisfies Little's law for the workload's client parallelism.
    """
    if result.failed:
        raise ValueError("cannot synthesize a trace for a failed stress test")
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    rng = np.random.default_rng(seed)
    tps = float(result.objective)
    threads = workload.client_threads
    n = int(min(tps * duration_s, max_transactions))
    if n < 1:
        raise ValueError("throughput too low to synthesize a trace")

    mean_ms = 1000.0 * threads / tps  # Little's law
    # Lognormal body with coefficient of variation ~0.6.
    cv = 0.6
    sigma = np.sqrt(np.log(1.0 + cv**2))
    mu = np.log(mean_ms) - 0.5 * sigma**2
    latencies = rng.lognormal(mu, sigma, size=n)

    # Heavy stall tail: fraction of transactions hit a checkpoint stall.
    dirty_pressure = min(result.metrics.get("bp_pages_dirty_pct", 0.0) / 100.0, 1.0)
    stall_frac = 0.02 * workload.write_frac * (0.5 + dirty_pressure)
    n_stalled = int(n * stall_frac)
    if n_stalled > 0:
        idx = rng.choice(n, size=n_stalled, replace=False)
        latencies[idx] *= rng.uniform(4.0, 12.0, size=n_stalled)

    # Renormalize the mean so Little's law still holds after the tail.
    latencies *= mean_ms / latencies.mean()
    return TransactionTrace(latencies_ms=latencies, duration_s=duration_s, threads=threads)


def latency_percentile_objective(
    result: StressTestResult,
    workload: WorkloadProfile,
    q: float = 95.0,
    seed: int | None = None,
) -> float:
    """A p-quantile latency objective (ms) derived from the trace.

    Deterministic given the seed, so it can serve as a session objective
    (minimize) in place of throughput.
    """
    trace = synthesize_trace(result, workload, seed=seed)
    return trace.percentile(q)
