"""Surrogate-benchmark experiments: Table 9 and Figure 10 (paper §8)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dbms.server import RESTART_SECONDS, STRESS_TEST_SECONDS, MySQLServer
from repro.experiments.scale import Scale, bench_scale
from repro.experiments.spaces import paper_spaces
from repro.parallel import ParallelExecutor, RegistryOptimizerFactory, RunSpec
from repro.selection.base import collect_samples
from repro.surrogate.benchmark import SurrogateBenchmark
from repro.surrogate.models import SurrogateModelScore, compare_surrogate_models
from repro.tuning.metrics import improvement_over_default


def surrogate_model_table(
    scale: Scale | None = None,
    n_splits: int = 10,
    instance: str = "B",
    seed: int = 17,
) -> dict[str, list[SurrogateModelScore]]:
    """Table 9: candidate regressors on the two benchmark spaces.

    The paper trains on the small space of JOB and the medium space of
    SYSBENCH; RMSE for JOB is in seconds of latency, for SYSBENCH in txn/s.
    """
    scale = scale or bench_scale()
    out: dict[str, list[SurrogateModelScore]] = {}
    for workload, size in (("JOB", "small"), ("SYSBENCH", "medium")):
        space = paper_spaces(workload, instance, scale.n_pool_samples, seed)[size]
        server = MySQLServer(workload, instance, seed=seed)
        configs, scores, __ = collect_samples(server, space, scale.n_pool_samples, seed=seed)
        sign = -1.0 if server.objective_direction == "min" else 1.0
        X = space.encode_many(configs)
        y = sign * np.asarray(scores)
        out[workload] = compare_surrogate_models(X, y, n_splits=n_splits, seed=seed)
    return out


@dataclass
class SurrogateTuningRow:
    """One Figure 10 curve."""

    workload: str
    optimizer: str
    improvement: float
    best_trajectory: list[float]
    session_seconds: float


@dataclass
class SurrogateTuningComparison:
    rows: list[SurrogateTuningRow]
    speedup_range: tuple[float, float]


def surrogate_tuning_comparison(
    workload: str = "SYSBENCH",
    space_size: str = "medium",
    optimizers: tuple[str, ...] = ("vanilla_bo", "mixed_kernel_bo", "smac", "tpe", "ga"),
    scale: Scale | None = None,
    n_runs: int | None = None,
    instance: str = "B",
    seed: int = 17,
    n_workers: int = 1,
) -> SurrogateTuningComparison:
    """Figure 10: optimizer comparison on the RF surrogate benchmark.

    Also computes the session-level speedup over a real testbed: a real
    200-iteration session costs (restart + stress test) per iteration
    plus algorithm overhead; a benchmark session costs model predictions
    plus the same overhead — the paper's 150-311x.
    """
    scale = scale or bench_scale()
    runs = n_runs if n_runs is not None else scale.n_runs
    space = paper_spaces(workload, instance, scale.n_pool_samples, seed)[space_size]
    bench = SurrogateBenchmark.build(
        workload, space, n_samples=scale.n_pool_samples, instance=instance, seed=seed
    )
    specs = [
        RunSpec(
            run_index=len(optimizers) * run + opt_idx,
            workload=workload,
            instance=instance,
            space=space,
            objective=bench.objective(),
            optimizer_factory=RegistryOptimizerFactory(name),
            optimizer_seed=seed + run,
            session_seed=seed + 31 * run,
            n_iterations=scale.n_iterations,
            n_initial=scale.n_initial,
            tags={"workload": workload, "optimizer": name, "run": run},
        )
        for opt_idx, name in enumerate(optimizers)
        for run in range(runs)
    ]
    results = ParallelExecutor(n_workers=n_workers).run(specs)
    by_name: dict[str, list] = {name: [] for name in optimizers}
    for spec, result in zip(specs, results):
        if result.history is None:
            raise RuntimeError(
                f"surrogate run {spec.tags} failed: {result.error}"
            )
        by_name[spec.tags["optimizer"]].append(result.history)

    rows: list[SurrogateTuningRow] = []
    speedups: list[float] = []
    for name in optimizers:
        histories = by_name[name]
        improvements = [
            improvement_over_default(
                h.best().objective, bench.default_objective, bench.direction
            )
            for h in histories
        ]
        trajectory = histories[0].best_score_trajectory().tolist()
        overhead = sum(o.suggest_seconds for o in histories[-1])
        real_session = scale.n_iterations * (RESTART_SECONDS + STRESS_TEST_SECONDS) + overhead
        cheap_session = scale.n_iterations * bench.seconds_per_model_eval + overhead
        speedups.append(real_session / cheap_session)
        rows.append(
            SurrogateTuningRow(
                workload=workload,
                optimizer=name,
                improvement=float(np.median(improvements)),
                best_trajectory=trajectory,
                session_seconds=cheap_session,
            )
        )
    return SurrogateTuningComparison(
        rows=rows, speedup_range=(float(min(speedups)), float(max(speedups)))
    )
