"""Configuration optimizers (paper §3.2, Table 3).

Seven optimizers share one interface (:class:`~repro.optimizers.base.Optimizer`):

====================  =========================  ============================
Optimizer             Surrogate / mechanism      Origin
====================  =========================  ============================
:class:`VanillaBO`    GP with RBF kernel + EI    iTuned / OtterTune
:class:`MixedKernelBO`  GP Matérn x Hamming + EI  OpenBox / RoBO
:class:`SMAC`         random forest + EI         Hutter et al., 2011
:class:`TPE`          per-dim Parzen estimators  Bergstra et al., 2011
:class:`TuRBO`        trust-region local GPs     Eriksson et al., 2019
:class:`DDPG`         actor-critic RL            CDBTune / QTune
:class:`GA`           genetic algorithm          classic meta-heuristic
====================  =========================  ============================

All optimizers *maximize* the observation ``score`` (tuning sessions negate
latency objectives), work over one :class:`~repro.space.ConfigurationSpace`,
and consume the shared :class:`~repro.optimizers.base.History`.
"""

from repro.optimizers.acquisitions import expected_improvement, probability_of_improvement, ucb
from repro.optimizers.base import History, Observation, Optimizer
from repro.optimizers.bo import MixedKernelBO, VanillaBO
from repro.optimizers.ddpg import DDPG, DDPGAgent
from repro.optimizers.ga import GA
from repro.optimizers.random_search import LHSOptimizer, RandomSearch
from repro.optimizers.smac import SMAC
from repro.optimizers.tpe import TPE
from repro.optimizers.turbo import TuRBO

OPTIMIZER_REGISTRY = {
    "vanilla_bo": VanillaBO,
    "mixed_kernel_bo": MixedKernelBO,
    "smac": SMAC,
    "tpe": TPE,
    "turbo": TuRBO,
    "ddpg": DDPG,
    "ga": GA,
    "random": RandomSearch,
    "lhs": LHSOptimizer,
}

__all__ = [
    "DDPG",
    "DDPGAgent",
    "GA",
    "History",
    "LHSOptimizer",
    "MixedKernelBO",
    "OPTIMIZER_REGISTRY",
    "Observation",
    "Optimizer",
    "RandomSearch",
    "SMAC",
    "TPE",
    "TuRBO",
    "VanillaBO",
    "expected_improvement",
    "probability_of_improvement",
    "ucb",
]
