"""Failure-clamping coverage (paper §4.1).

A failed stress test is scored as the worst success seen so far; before
any success exists, the objective's ``failure_fallback_score`` applies —
a third of the default throughput for ``max`` objectives, three times
the default latency for ``min`` objectives.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dbms.server import MySQLServer
from repro.optimizers import RandomSearch
from repro.optimizers.base import Observation
from repro.tuning import DatabaseObjective, TuningSession


def _failed_obs(space) -> Observation:
    return Observation(
        config=space.default_configuration(),
        objective=float("nan"),
        score=float("nan"),
        failed=True,
    )


def _ok_obs(space, score: float) -> Observation:
    return Observation(
        config=space.default_configuration(), objective=score, score=score
    )


def _session(space, objective) -> TuningSession:
    return TuningSession(
        objective, RandomSearch(space, seed=0), space, max_iterations=5, seed=0
    )


class TestClampFailure:
    def test_before_first_success_uses_fallback(self, sysbench_space, sysbench_server):
        obj = DatabaseObjective(sysbench_server, sysbench_space)
        session = _session(sysbench_space, obj)
        obs = _failed_obs(sysbench_space)
        session._clamp_failure(obs)
        assert obs.score == obj.failure_fallback_score()

    def test_after_first_success_uses_worst_seen(self, sysbench_space, sysbench_server):
        obj = DatabaseObjective(sysbench_server, sysbench_space)
        session = _session(sysbench_space, obj)
        session.history.append(_ok_obs(sysbench_space, 120.0))
        session.history.append(_ok_obs(sysbench_space, 80.0))
        obs = _failed_obs(sysbench_space)
        session._clamp_failure(obs)
        assert obs.score == 80.0

    def test_clamp_ignores_earlier_failures(self, sysbench_space, sysbench_server):
        # A clamped failure must not itself become the "worst seen".
        obj = DatabaseObjective(sysbench_server, sysbench_space)
        session = _session(sysbench_space, obj)
        first = _failed_obs(sysbench_space)
        session._record(first, 0.0)
        assert first.score == obj.failure_fallback_score()
        session.history.append(_ok_obs(sysbench_space, 200.0))
        later = _failed_obs(sysbench_space)
        session._clamp_failure(later)
        assert later.score == 200.0  # worst *success*, not the earlier clamp


class TestFallbackDirections:
    def test_max_objective_fallback_is_third_of_default(
        self, sysbench_space, sysbench_server
    ):
        obj = DatabaseObjective(sysbench_server, sysbench_space)
        assert obj.direction == "max"
        default = sysbench_server.default_objective()
        assert obj.failure_fallback_score() == pytest.approx(default / 3.0)
        assert obj.failure_fallback_score() < obj.default_score()

    def test_min_objective_fallback_is_triple_default_latency(
        self, job_server, mysql_space
    ):
        obj = DatabaseObjective(job_server, mysql_space)
        assert obj.direction == "min"
        default = job_server.default_objective()
        # latency is negated onto the maximization scale
        assert obj.failure_fallback_score() == pytest.approx(-(default * 3.0))
        assert obj.failure_fallback_score() < obj.default_score()

    def test_min_direction_session_clamps_finite(self, mysql_space):
        server = MySQLServer("JOB", "B", seed=3)
        space = mysql_space
        obj = DatabaseObjective(server, space)
        session = TuningSession(
            obj, RandomSearch(space, seed=3), space, max_iterations=15, seed=3
        )
        history = session.run()
        assert np.isfinite(history.scores()).all()
        for obs in history:
            if obs.failed:
                prior = [
                    o.score
                    for o in history
                    if not o.failed and o.iteration < obs.iteration
                ]
                expected = min(prior) if prior else obj.failure_fallback_score()
                assert obs.score == expected
