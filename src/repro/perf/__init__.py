"""GP/BO hot-path acceleration primitives and the tracked benchmark harness.

Every optimizer study in the paper spends its wall-clock inside the GP
surrogate: ``_GPBasedBO.suggest`` refits the GP from scratch each
iteration, which is the cubic algorithm-overhead growth the paper
*measures* in Figure 9 — but the implementation overhead on top of the
mathematically necessary O(n^3) is pure waste.  This package holds the
pieces that remove it:

- :mod:`repro.perf.cache` — :class:`KernelCache`, a per-fit store for
  theta-independent pairwise structures (squared distances, Hamming
  mismatch counts) reused across the ~120 log-marginal-likelihood
  evaluations one L-BFGS-B hyperparameter fit performs.  Bit-identical
  to the uncached path by construction.
- :mod:`repro.perf.incremental` — :func:`cholesky_append`, the O(n^2)
  bordered-Cholesky update behind the GP's opt-in incremental refit.
- :mod:`repro.perf.bench` — ``python -m repro.perf.bench``, the
  microbenchmark harness that times GP fit/predict, candidate-pool
  construction, and one steady-state BO iteration at several history
  sizes and emits ``benchmarks/perf/BENCH_PR4.json`` so the perf
  trajectory is tracked from PR 4 onward (see ``docs/PERFORMANCE.md``).
"""

from repro.perf.cache import KernelCache
from repro.perf.incremental import cholesky_append

__all__ = ["KernelCache", "cholesky_append"]
