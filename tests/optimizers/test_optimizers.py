"""Behavioural tests for all seven optimizers on synthetic objectives."""

import numpy as np
import pytest

from repro.optimizers import (
    DDPG,
    GA,
    LHSOptimizer,
    OPTIMIZER_REGISTRY,
    RandomSearch,
    SMAC,
    TPE,
    TuRBO,
    MixedKernelBO,
    VanillaBO,
)
from repro.optimizers.base import History, Observation
from repro.optimizers.ddpg import DDPGAgent, cdbtune_reward
from repro.space import (
    CategoricalKnob,
    Configuration,
    ConfigurationSpace,
    ContinuousKnob,
)

ALL_NAMES = ["vanilla_bo", "mixed_kernel_bo", "smac", "tpe", "turbo", "ddpg", "ga", "random"]


@pytest.fixture
def cont_space():
    return ConfigurationSpace(
        [ContinuousKnob(f"x{i}", 0.0, 1.0, 0.5) for i in range(3)], seed=0
    )


@pytest.fixture
def mixed_space():
    return ConfigurationSpace(
        [
            ContinuousKnob("x", 0.0, 1.0, 0.5),
            ContinuousKnob("y", 0.0, 1.0, 0.5),
            CategoricalKnob("m", ["bad", "good", "worse"], "bad"),
        ],
        seed=0,
    )


def synthetic_objective(config) -> float:
    """Smooth unimodal function with a categorical bonus."""
    score = -((config["x"] - 0.7) ** 2) - (config["y"] - 0.3) ** 2
    bonus = {"bad": 0.0, "good": 0.3, "worse": -0.3}[config["m"]]
    return score + bonus


def drive(optimizer, space, objective, n_iters=35, seed=0):
    """Minimal session loop without the tuning package."""
    rng = np.random.default_rng(seed)
    history = History(space)
    for i in range(n_iters):
        if i < 5:
            config = space.sample_configuration(rng)
        else:
            config = optimizer.suggest(history)
        obs = Observation(config=config, objective=objective(config), score=objective(config))
        history.append(obs)
        optimizer.observe(obs)
    return history


@pytest.mark.parametrize("name", ALL_NAMES)
class TestAllOptimizers:
    def test_suggest_returns_valid_config(self, name, mixed_space):
        opt = OPTIMIZER_REGISTRY[name](mixed_space, seed=0)
        history = drive(opt, mixed_space, synthetic_objective, n_iters=8)
        config = opt.suggest(history)
        assert mixed_space.validate(config)

    def test_suggest_on_empty_history(self, name, mixed_space):
        opt = OPTIMIZER_REGISTRY[name](mixed_space, seed=0)
        config = opt.suggest(History(mixed_space))
        assert mixed_space.validate(config)

    def test_seeded_determinism(self, name, mixed_space):
        h1 = drive(OPTIMIZER_REGISTRY[name](mixed_space, seed=3), mixed_space, synthetic_objective, 15, seed=1)
        h2 = drive(OPTIMIZER_REGISTRY[name](mixed_space, seed=3), mixed_space, synthetic_objective, 15, seed=1)
        assert h1.configs() == h2.configs()


@pytest.mark.parametrize("name", ["vanilla_bo", "mixed_kernel_bo", "smac", "tpe", "turbo", "ga"])
def test_model_based_beats_random(name, mixed_space):
    """Each adaptive optimizer should out-optimize random search."""
    adaptive = drive(
        OPTIMIZER_REGISTRY[name](mixed_space, seed=0), mixed_space, synthetic_objective, 45
    )
    random = drive(RandomSearch(mixed_space, seed=0), mixed_space, synthetic_objective, 45)
    assert adaptive.best().score >= random.best().score - 0.05


class TestBO:
    def test_mixed_kernel_handles_categorical_better(self, mixed_space):
        """Mixed-kernel BO should reach the 'good' category reliably."""
        h = drive(MixedKernelBO(mixed_space, seed=1), mixed_space, synthetic_objective, 40)
        assert h.best().config["m"] == "good"

    def test_vanilla_bo_finds_continuous_optimum(self, cont_space):
        objective = lambda c: -sum((c[f"x{i}"] - 0.5) ** 2 for i in range(3))  # noqa: E731
        h = drive(VanillaBO(cont_space, seed=0), cont_space, objective, 40)
        assert h.best().score > -0.02


class TestSMAC:
    def test_random_interleave_probability(self, mixed_space):
        opt = SMAC(mixed_space, seed=0, random_interleave_prob=1.0)
        # with interleave 1.0 every suggestion is random yet still valid
        history = drive(opt, mixed_space, synthetic_objective, 12)
        assert len(history) == 12

    def test_invalid_interleave(self, mixed_space):
        with pytest.raises(ValueError):
            SMAC(mixed_space, random_interleave_prob=1.5)


class TestTPE:
    def test_gamma_validation(self, mixed_space):
        with pytest.raises(ValueError):
            TPE(mixed_space, gamma=0.0)

    def test_learns_good_region(self, cont_space):
        objective = lambda c: -abs(c["x0"] - 0.8)  # noqa: E731
        h = drive(TPE(cont_space, seed=0), cont_space, objective, 60)
        assert abs(h.best().config["x0"] - 0.8) < 0.15


class TestTuRBO:
    def test_trust_regions_restart_on_collapse(self, cont_space):
        opt = TuRBO(cont_space, seed=0, n_regions=2)
        drive(opt, cont_space, lambda c: c["x0"], 30)
        assert all(not r.collapsed for r in opt._regions)

    def test_region_length_adapts(self, cont_space):
        opt = TuRBO(cont_space, seed=0, n_regions=1, init_length=0.4)
        drive(opt, cont_space, lambda c: c["x0"], 40)
        # the region must have moved its center or changed its length
        region = opt._regions[0]
        assert region.best_score > float("-inf")

    def test_invalid_regions(self, cont_space):
        with pytest.raises(ValueError):
            TuRBO(cont_space, n_regions=0)


class TestGA:
    def test_population_cycles_generations(self, cont_space):
        opt = GA(cont_space, seed=0, population_size=6)
        drive(opt, cont_space, lambda c: c["x0"], 30)
        assert opt.generation >= 2

    def test_param_validation(self, cont_space):
        with pytest.raises(ValueError):
            GA(cont_space, population_size=2)
        with pytest.raises(ValueError):
            GA(cont_space, population_size=6, n_elites=6)


class TestDDPG:
    def test_reward_shapes(self):
        assert cdbtune_reward(2.0, 1.0, 1.0) > 0
        assert cdbtune_reward(0.5, 1.0, 1.0) < 0
        # improving twice as much from start earns superlinear reward
        small = cdbtune_reward(1.1, 1.0, 1.0)
        big = cdbtune_reward(2.0, 1.0, 1.0)
        assert big > 2 * small

    def test_agent_weight_roundtrip(self):
        agent = DDPGAgent(action_dim=4, seed=0)
        weights = agent.get_weights()
        other = DDPGAgent(action_dim=4, seed=1)
        other.set_weights(weights)
        state = np.zeros(agent.state_dim)
        np.testing.assert_array_equal(agent.act(state), other.act(state))

    def test_agent_action_dim_mismatch(self, cont_space):
        agent = DDPGAgent(action_dim=7, seed=0)
        with pytest.raises(ValueError):
            DDPG(cont_space, agent=agent)

    def test_training_updates_networks(self, cont_space):
        opt = DDPG(cont_space, seed=0, train_steps_per_observation=2)
        before = [w.copy() for w in opt.agent.actor.get_weights()]
        drive(opt, cont_space, lambda c: c["x0"], 60)
        after = opt.agent.actor.get_weights()
        assert any(not np.array_equal(a, b) for a, b in zip(before, after))
        assert opt.agent.train_steps > 0

    def test_exploration_noise_decays(self, cont_space):
        opt = DDPG(cont_space, seed=0, noise_initial=0.5, noise_final=0.1, noise_decay_iters=10)
        start = opt._noise_scale()
        drive(opt, cont_space, lambda c: c["x0"], 15)
        assert opt._noise_scale() < start


class TestLHSOptimizer:
    def test_batches_are_valid(self, cont_space):
        opt = LHSOptimizer(cont_space, seed=0, batch_size=8)
        history = History(cont_space)
        configs = [opt.suggest(history) for _ in range(10)]
        assert all(cont_space.validate(c) for c in configs)

    def test_invalid_batch(self, cont_space):
        with pytest.raises(ValueError):
            LHSOptimizer(cont_space, batch_size=0)


def test_dedupe_avoids_repeats(cont_space):
    opt = RandomSearch(cont_space, seed=0)
    history = History(cont_space)
    config = cont_space.default_configuration()
    history.append(Observation(config=config, objective=0.0, score=0.0))
    suggestion = opt._dedupe(config, history)
    assert suggestion != config
