"""Per-file analysis context: parsed AST, import alias map, name resolution.

Rules operate on a :class:`FileContext` rather than a bare ``ast.Module`` so
they can resolve local names (``np``, ``default_rng``) back to canonical
dotted paths (``numpy.random.default_rng``) regardless of how the module
spelled its imports.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath


def _collect_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the canonical dotted path they were imported as.

    ``import numpy as np``                 -> ``{"np": "numpy"}``
    ``from numpy import random as npr``    -> ``{"npr": "numpy.random"}``
    ``from numpy.random import default_rng`` ->
    ``{"default_rng": "numpy.random.default_rng"}``

    Only module-level and function-level ``import`` statements are
    considered; attribute reassignments are out of scope for a linter.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                local = item.asname or item.name.split(".")[0]
                target = item.name if item.asname else item.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for item in node.names:
                if item.name == "*":
                    continue
                aliases[item.asname or item.name] = f"{node.module}.{item.name}"
    return aliases


def attribute_chain(node: ast.expr) -> list[str] | None:
    """``np.random.default_rng`` -> ``["np", "random", "default_rng"]``.

    Returns ``None`` for expressions that are not a plain dotted name
    (calls, subscripts, literals, ...).
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return parts


@dataclass
class FileContext:
    """Everything a rule needs to analyze one file."""

    path: str
    lines: list[str] = field(default_factory=list)
    tree: ast.Module = field(default_factory=ast.Module)
    aliases: dict[str, str] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: str, source: str) -> "FileContext":
        tree = ast.parse(source, filename=path)
        return cls(
            path=path,
            lines=source.splitlines(),
            tree=tree,
            aliases=_collect_aliases(tree),
        )

    # ------------------------------------------------------------------
    def resolve(self, node: ast.expr) -> str | None:
        """Canonical dotted path of a name/attribute expression, if its
        root is an imported module or object; ``None`` otherwise.

        ``self.rng.normal`` resolves to ``None`` (root is a local name),
        so instance-level generator calls are never mistaken for
        module-level state.
        """
        chain = attribute_chain(node)
        if chain is None:
            return None
        root, rest = chain[0], chain[1:]
        target = self.aliases.get(root)
        if target is None:
            return None
        return ".".join([target, *rest])

    def posix_path(self) -> str:
        return PurePosixPath(self.path).as_posix()
