"""Optimizer experiments: Figure 7 / Table 7, Figure 8, Figure 9 (paper §6)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.overhead import overhead_at_checkpoints
from repro.experiments.runner import median_improvement, run_sessions
from repro.experiments.scale import Scale, bench_scale
from repro.experiments.spaces import heterogeneity_spaces, paper_spaces
from repro.parallel import RegistryOptimizerFactory
from repro.tuning.metrics import average_ranks

#: The seven optimizers of Table 3, in the paper's reporting order.
OPTIMIZERS = (
    "vanilla_bo",
    "mixed_kernel_bo",
    "smac",
    "tpe",
    "turbo",
    "ddpg",
    "ga",
)

#: GP-based optimizers whose Figure 9 runs must refit from scratch each
#: iteration (``full_refit=True``) so the measured overhead stays honest.
_FULL_REFIT_OPTIMIZERS = frozenset({"vanilla_bo", "mixed_kernel_bo"})

@dataclass
class OptimizerRow:
    """One Figure 7 curve endpoint."""

    workload: str
    space_size: str
    optimizer: str
    improvement: float
    best_trajectory: list[float]

@dataclass
class OptimizerComparison:
    """Figure 7 data plus Table 7 per-size and overall rankings."""

    rows: list[OptimizerRow]
    rankings: dict[str, dict[str, float]]  # space size (+ "overall") -> ranking

def optimizer_comparison(
    workloads: tuple[str, ...] = ("SYSBENCH", "JOB"),
    space_sizes: tuple[str, ...] = ("small", "medium", "large"),
    optimizers: tuple[str, ...] = OPTIMIZERS,
    scale: Scale | None = None,
    instance: str = "B",
    seed: int = 17,
    n_workers: int = 1,
) -> OptimizerComparison:
    """Figure 7 / Table 7: all optimizers over small/medium/large spaces."""
    scale = scale or bench_scale()
    rows: list[OptimizerRow] = []
    for workload in workloads:
        spaces = paper_spaces(workload, instance, scale.n_pool_samples, seed)
        for size in space_sizes:
            space = spaces[size]
            for name in optimizers:
                histories = run_sessions(
                    workload,
                    space,
                    RegistryOptimizerFactory(name),
                    n_runs=scale.n_runs,
                    n_iterations=scale.n_iterations,
                    n_initial=scale.n_initial,
                    instance=instance,
                    seed=seed,
                    n_workers=n_workers,
                )
                trajectory = histories[0].best_score_trajectory().tolist()
                rows.append(
                    OptimizerRow(
                        workload=workload,
                        space_size=size,
                        optimizer=name,
                        improvement=median_improvement(histories, workload, instance),
                        best_trajectory=trajectory,
                    )
                )

    rankings: dict[str, dict[str, float]] = {}
    for size in space_sizes:
        per_opt = {
            name: [
                r.improvement
                for r in rows
                if r.optimizer == name and r.space_size == size
            ]
            for name in optimizers
        }
        rankings[size] = average_ranks(per_opt, higher_is_better=True)
    per_opt_all = {
        name: [r.improvement for r in rows if r.optimizer == name] for name in optimizers
    }
    rankings["overall"] = average_ranks(per_opt_all, higher_is_better=True)
    return OptimizerComparison(rows=rows, rankings=rankings)

@dataclass
class HeterogeneityRow:
    """One Figure 8 curve."""

    space_kind: str  # "continuous" | "heterogeneous"
    optimizer: str
    improvement: float
    best_trajectory: list[float]

def heterogeneity_comparison(
    workload: str = "JOB",
    optimizers: tuple[str, ...] = ("vanilla_bo", "mixed_kernel_bo", "smac", "ddpg"),
    scale: Scale | None = None,
    instance: str = "B",
    seed: int = 17,
    n_workers: int = 1,
) -> list[HeterogeneityRow]:
    """Figure 8: continuous vs heterogeneous top-20 spaces on JOB."""
    scale = scale or bench_scale()
    spaces = heterogeneity_spaces(workload, instance, scale.n_pool_samples, seed)
    rows: list[HeterogeneityRow] = []
    for kind, space in spaces.items():
        for name in optimizers:
            histories = run_sessions(
                workload,
                space,
                RegistryOptimizerFactory(name),
                n_runs=scale.n_runs,
                n_iterations=scale.n_iterations,
                n_initial=scale.n_initial,
                instance=instance,
                seed=seed,
                n_workers=n_workers,
            )
            rows.append(
                HeterogeneityRow(
                    space_kind=kind,
                    optimizer=name,
                    improvement=median_improvement(histories, workload, instance),
                    best_trajectory=histories[0].best_score_trajectory().tolist(),
                )
            )
    return rows

@dataclass
class OverheadRow:
    """One Figure 9 series: per-iteration overhead at checkpoints."""

    optimizer: str
    checkpoints: dict[int, float]
    total_seconds: float

def overhead_comparison(
    workload: str = "JOB",
    optimizers: tuple[str, ...] = OPTIMIZERS,
    n_iterations: int | None = None,
    checkpoints: tuple[int, ...] = (50, 100, 150, 200, 400),
    scale: Scale | None = None,
    instance: str = "B",
    seed: int = 17,
    n_workers: int = 1,
    telemetry_path: str | None = None,
    checkpoint_path: str | None = None,
) -> list[OverheadRow]:
    """Figure 9: suggestion wall-time per iteration over the medium space.

    GP-based optimizers refit an exact GP on the full history each
    iteration, so their overhead grows superlinearly; forest/parzen/RL
    methods stay near-constant.  ``telemetry_path`` appends the per-run
    JSONL records (suggest/eval wall-time, failures, simulated hours)
    that this figure's analysis is derived from.  ``checkpoint_path``
    makes the study resumable: an interrupted invocation re-run with the
    same arguments skips every optimizer's already-completed run.
    """
    scale = scale or bench_scale()
    iters = n_iterations if n_iterations is not None else min(3 * scale.n_iterations, 400)
    space = paper_spaces(workload, instance, scale.n_pool_samples, seed)["medium"]
    rows: list[OverheadRow] = []
    for name in optimizers:
        # The GP optimizers must run the honest from-scratch refit here:
        # the measured cubic overhead growth IS the experiment's claim, so
        # the opt-in incremental/refit-schedule accelerations are forced
        # off regardless of their defaults ever changing.
        options = (("full_refit", True),) if name in _FULL_REFIT_OPTIMIZERS else ()
        histories = run_sessions(
            workload,
            space,
            RegistryOptimizerFactory(name, options=options),
            n_runs=1,
            n_iterations=iters,
            n_initial=scale.n_initial,
            instance=instance,
            seed=seed,
            n_workers=n_workers,
            telemetry_path=telemetry_path,
            checkpoint_path=checkpoint_path,
        )
        times = [o.suggest_seconds for o in histories[0]]
        rows.append(
            OverheadRow(
                optimizer=name,
                checkpoints=overhead_at_checkpoints(times, checkpoints),
                total_seconds=float(np.sum(times)),
            )
        )
    return rows
