"""True negatives for R007: monotonic durations and injected timestamps."""

import time


def measured_duration(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def injected_timestamp(value, timestamp):
    return {"value": value, "ts": timestamp}


def monotonic_deadline(budget_s):
    return time.monotonic() + budget_s
