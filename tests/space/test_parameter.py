"""Unit tests for knob types."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.space import CategoricalKnob, ContinuousKnob, IntegerKnob


class TestContinuousKnob:
    def test_unit_roundtrip_linear(self):
        knob = ContinuousKnob("x", -5.0, 5.0, 0.0)
        assert knob.from_unit(knob.to_unit(2.5)) == pytest.approx(2.5)
        assert knob.to_unit(-5.0) == 0.0
        assert knob.to_unit(5.0) == 1.0

    def test_unit_roundtrip_log(self):
        knob = ContinuousKnob("x", 1.0, 1024.0, 32.0, log=True)
        assert knob.from_unit(knob.to_unit(64.0)) == pytest.approx(64.0)
        assert knob.from_unit(0.5) == pytest.approx(32.0)

    def test_clip_and_validate(self):
        knob = ContinuousKnob("x", 0.0, 10.0, 5.0)
        assert knob.clip(42.0) == 10.0
        assert knob.clip(-1.0) == 0.0
        assert knob.validate(3.3)
        assert not knob.validate(10.5)
        assert not knob.validate("nope")

    def test_out_of_range_default_is_clamped(self):
        knob = ContinuousKnob("x", 0.0, 1.0, 7.0)
        assert knob.default == 1.0

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            ContinuousKnob("x", 2.0, 1.0, 1.5)
        with pytest.raises(ValueError):
            ContinuousKnob("x", 0.0, 1.0, 0.5, log=True)

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_from_unit_always_in_domain(self, u):
        knob = ContinuousKnob("x", -3.0, 7.0, 0.0)
        value = knob.from_unit(u)
        assert -3.0 <= value <= 7.0

    def test_sample_within_domain(self):
        knob = ContinuousKnob("x", 2.0, 4.0, 3.0, log=True)
        rng = np.random.default_rng(1)
        for _ in range(20):
            assert 2.0 <= knob.sample(rng) <= 4.0


class TestIntegerKnob:
    def test_unit_roundtrip(self):
        knob = IntegerKnob("n", 0, 100, 50)
        for v in (0, 17, 50, 100):
            assert knob.from_unit(knob.to_unit(v)) == v

    def test_log_roundtrip(self):
        knob = IntegerKnob("n", 1, 2**20, 1024, log=True)
        for v in (1, 2, 1024, 2**20):
            assert knob.from_unit(knob.to_unit(v)) == v

    def test_from_unit_is_integer(self):
        knob = IntegerKnob("n", 0, 9, 5)
        assert isinstance(knob.from_unit(0.33), int)

    def test_validate_rejects_bool_and_float(self):
        knob = IntegerKnob("n", 0, 10, 5)
        assert knob.validate(5)
        assert not knob.validate(True)
        assert not knob.validate(5.5)
        assert not knob.validate(11)

    @given(st.integers(min_value=1, max_value=10**9))
    @settings(max_examples=50, deadline=None)
    def test_unit_monotonicity(self, v):
        knob = IntegerKnob("n", 1, 10**9, 100, log=True)
        u = knob.to_unit(v)
        assert 0.0 <= u <= 1.0
        if v > 1:
            assert knob.to_unit(v) > knob.to_unit(max(1, v // 2))


class TestCategoricalKnob:
    def test_roundtrip_all_choices(self):
        knob = CategoricalKnob("m", ["a", "b", "c", "d"], "b")
        for choice in knob.choices:
            assert knob.from_unit(knob.to_unit(choice)) == choice

    def test_uniform_unit_samples_cover_choices(self):
        knob = CategoricalKnob("m", ["x", "y", "z"], "x")
        seen = {knob.from_unit(u) for u in np.linspace(0.01, 0.99, 30)}
        assert seen == {"x", "y", "z"}

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            CategoricalKnob("m", ["only"], "only")
        with pytest.raises(ValueError):
            CategoricalKnob("m", ["a", "a"], "a")
        with pytest.raises(ValueError):
            CategoricalKnob("m", ["a", "b"], "c")

    def test_choice_index_and_validate(self):
        knob = CategoricalKnob("m", ["a", "b"], "a")
        assert knob.choice_index("b") == 1
        with pytest.raises(ValueError):
            knob.choice_index("z")
        assert knob.validate("a")
        assert not knob.validate("z")

    def test_clip_replaces_invalid_with_default(self):
        knob = CategoricalKnob("m", ["a", "b"], "b")
        assert knob.clip("z") == "b"
        assert knob.clip("a") == "a"

    def test_unit_encoding_is_bin_midpoint(self):
        knob = CategoricalKnob("m", ["a", "b"], "a")
        assert knob.to_unit("a") == pytest.approx(0.25)
        assert knob.to_unit("b") == pytest.approx(0.75)


def test_knob_requires_name():
    with pytest.raises(ValueError):
        ContinuousKnob("", 0.0, 1.0, 0.5)


def test_nan_unit_is_clamped():
    knob = ContinuousKnob("x", 0.0, 1.0, 0.5)
    assert 0.0 <= knob.from_unit(0.0) <= 1.0
    assert math.isfinite(knob.from_unit(1.0))
