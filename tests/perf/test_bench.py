"""The ``repro.perf.bench`` harness: payload generation, schema validation,
and the CLI round trip.  Timing *magnitudes* are never asserted — CI
runners are too noisy for that — only structure and value domains."""

import json

import pytest

from repro.perf import bench


@pytest.fixture(scope="module")
def payload():
    # One tiny real run shared by the structural tests.
    return bench.run_bench(sizes=(6,), seed=3, repeats=1, pool_rows=32, smoke=True)


def test_run_bench_payload_is_schema_valid(payload):
    assert bench.validate_payload(payload) == []


def test_payload_covers_all_operations(payload):
    ops = {row["op"] for row in payload["results"]}
    assert ops == set(bench.OPS)
    assert payload["schema_version"] == bench.SCHEMA_VERSION
    assert payload["seed"] == 3
    assert payload["smoke"] is True


def test_payload_has_no_wall_clock_state(payload):
    # Reproducibility contract: rerunning with the same seed must produce a
    # payload that differs only in measured durations — no timestamps.
    text = json.dumps(payload)
    for banned in ("timestamp", "created_at", "wall_clock"):
        assert banned not in text


def test_summary_reports_largest_size(payload):
    assert "bo_iteration_n6_speedup" in payload["summary"]
    assert "candidate_pool_n32_speedup" in payload["summary"]


@pytest.mark.parametrize(
    "mutate, fragment",
    [
        (lambda p: p.update(schema_version=2), "schema_version"),
        (lambda p: p.pop("seed"), "seed"),
        (lambda p: p.update(results=[]), "non-empty"),
        (lambda p: p["results"][0].update(op="warp_drive"), "op"),
        (lambda p: p["results"][0].update(baseline_seconds=-1.0), "baseline_seconds"),
        (lambda p: p["results"][0].update(n="six"), ".n"),
        (lambda p: p.update(sizes=[0]), "sizes"),
        (lambda p: p["env"].pop("numpy"), "env.numpy"),
        (lambda p: p["summary"].update(bogus="text"), "summary.bogus"),
    ],
)
def test_validator_catches_broken_payloads(payload, mutate, fragment):
    broken = json.loads(json.dumps(payload))  # deep copy
    mutate(broken)
    errors = bench.validate_payload(broken)
    assert errors, f"mutation {fragment!r} was not caught"
    assert any(fragment in e for e in errors)


def test_validator_rejects_non_object():
    assert bench.validate_payload([1, 2, 3]) == ["payload is not a JSON object"]


def test_cli_smoke_and_validate_round_trip(tmp_path, capsys):
    out = tmp_path / "bench.json"
    code = bench.main(
        ["--smoke", "--sizes", "6", "--repeats", "1", "--seed", "3", "--out", str(out)]
    )
    assert code == 0
    assert out.exists()
    assert bench.main(["--validate", str(out)]) == 0
    captured = capsys.readouterr()
    assert "schema OK" in captured.out


def test_cli_validate_rejects_broken_file(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema_version": 0}))
    assert bench.main(["--validate", str(bad)]) == 1
    assert "schema violation" in capsys.readouterr().err


def test_cli_validate_missing_file(tmp_path, capsys):
    assert bench.main(["--validate", str(tmp_path / "nope.json")]) == 2
    assert "cannot read" in capsys.readouterr().err


def test_tracked_payload_is_valid():
    """The committed BENCH_PR4.json must always pass its own schema."""
    from pathlib import Path

    tracked = Path(__file__).resolve().parents[2] / "benchmarks" / "perf" / "BENCH_PR4.json"
    assert tracked.exists(), "benchmarks/perf/BENCH_PR4.json is missing"
    assert bench.validate_payload(json.loads(tracked.read_text())) == []
