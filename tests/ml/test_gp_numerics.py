"""Numerical-robustness tests for the GP implementation."""

import numpy as np
import pytest

from repro.ml.gp import GaussianProcessRegressor
from repro.ml.kernels import ConstantKernel, HammingKernel, RBFKernel, WhiteKernel


class TestCholeskyRobustness:
    def test_duplicate_points_need_jitter(self):
        """Identical rows make K singular; the jitter ladder must save it."""
        X = np.vstack([np.full((5, 2), 0.3), np.full((5, 2), 0.7)])
        y = np.concatenate([np.zeros(5), np.ones(5)])
        gp = GaussianProcessRegressor(
            kernel=RBFKernel(0.5), noise=0.0, optimize_hyperparams=False
        )
        gp.fit(X, y)
        pred = gp.predict(np.array([[0.3, 0.3], [0.7, 0.7]]))
        assert pred[0] < pred[1]

    def test_huge_lengthscale_constant_kernel(self):
        """A near-constant covariance matrix must still factorize."""
        rng = np.random.default_rng(0)
        X = rng.random((20, 3))
        y = rng.normal(size=20)
        gp = GaussianProcessRegressor(
            kernel=RBFKernel(100.0), noise=1e-6, optimize_hyperparams=False
        )
        gp.fit(X, y)
        assert np.isfinite(gp.predict(X)).all()

    def test_white_kernel_composition(self):
        rng = np.random.default_rng(1)
        X = rng.random((30, 2))
        y = X[:, 0] + rng.normal(0, 0.1, 30)
        kernel = ConstantKernel(1.0) * RBFKernel(0.5) + WhiteKernel(1e-2)
        gp = GaussianProcessRegressor(kernel=kernel, noise=0.0, optimize_hyperparams=False)
        gp.fit(X, y)
        # At *new* points the white-noise variance keeps the posterior std
        # strictly positive even arbitrarily close to training data.
        near = np.clip(X + 1e-4, 0.0, 1.0)
        __, std = gp.predict(near, return_std=True)
        assert (std > 1e-2).all()  # ~sqrt(noise) floor

    def test_pure_hamming_gp_on_categorical_grid(self):
        """GP over a purely categorical (unit-coded) space."""
        # two binary knobs -> 4 cells at unit midpoints
        cells = np.array([[0.25, 0.25], [0.25, 0.75], [0.75, 0.25], [0.75, 0.75]])
        y = np.array([0.0, 1.0, 1.0, 2.0])
        gp = GaussianProcessRegressor(
            kernel=ConstantKernel(1.0) * HammingKernel(1.0),
            noise=1e-6,
            optimize_hyperparams=False,
        )
        gp.fit(cells, y)
        pred = gp.predict(cells)
        assert np.argmax(pred) == 3 and np.argmin(pred) == 0

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            GaussianProcessRegressor(noise=-1.0)

    def test_single_point_fit(self):
        gp = GaussianProcessRegressor(optimize_hyperparams=False)
        gp.fit(np.array([[0.5]]), np.array([2.0]))
        mean, std = gp.predict(np.array([[0.5], [0.9]]), return_std=True)
        assert mean[0] == pytest.approx(2.0, abs=1e-3)
        assert std[1] > std[0]

    def test_lml_finite_after_fit(self):
        rng = np.random.default_rng(2)
        X = rng.random((15, 2))
        gp = GaussianProcessRegressor(optimize_hyperparams=True, n_restarts=1, seed=0)
        gp.fit(X, X.sum(axis=1))
        assert np.isfinite(gp.log_marginal_likelihood_)
