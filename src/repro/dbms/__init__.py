"""Simulated MySQL 5.7 substrate.

The paper tunes RDS MySQL 5.7 on four cloud instance types.  This package
replaces that testbed with an analytical simulator exposing the same
surfaces a tuning system interacts with:

- a 197-knob configuration space with real MySQL 5.7 knob names, domains,
  and defaults (:mod:`repro.dbms.catalog`),
- four hardware profiles A-D (:mod:`repro.dbms.instances`, paper Table 5),
- an analytical performance model with knob interactions, robust defaults,
  evaluation noise, and crash semantics (:mod:`repro.dbms.engine`),
- internal-metric telemetry for RL state and workload mapping
  (:mod:`repro.dbms.metrics`),
- a server facade with restart/stress-test semantics
  (:mod:`repro.dbms.server`).
"""

from repro.dbms.advisor import Advice, lint_configuration
from repro.dbms.catalog import (
    KNOB_CATALOG,
    MODELED_KNOBS,
    mysql_knob_space,
)
from repro.dbms.engine import EngineResult, PerformanceModel
from repro.dbms.instances import INSTANCES, HardwareInstance
from repro.dbms.metrics import INTERNAL_METRIC_NAMES
from repro.dbms.server import MySQLServer, StressTestResult

__all__ = [
    "Advice",
    "HardwareInstance",
    "lint_configuration",
    "INSTANCES",
    "INTERNAL_METRIC_NAMES",
    "KNOB_CATALOG",
    "MODELED_KNOBS",
    "EngineResult",
    "MySQLServer",
    "PerformanceModel",
    "StressTestResult",
    "mysql_knob_space",
]
