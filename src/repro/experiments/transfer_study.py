"""Knowledge-transfer experiment: Table 8 (paper §7)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.scale import Scale, bench_scale
from repro.experiments.spaces import transfer_space
from repro.optimizers import DDPG, MixedKernelBO, SMAC
from repro.optimizers.base import Optimizer
from repro.parallel import ParallelExecutor, RunSpec
from repro.transfer import (
    MappedOptimizer,
    RGPEMixedKernelBO,
    RGPESMAC,
    fine_tuned_ddpg,
    pretrain_ddpg,
)
from repro.tuning.metrics import average_ranks, performance_enhancement, speedup

#: Paper §7.1: source workloads for historical data / pre-training.
SOURCE_WORKLOADS = ("SEATS", "Voter", "TATP", "Smallbank", "SIBench")
#: Paper §7.1: target workloads.
TARGET_WORKLOADS = ("TPC-C", "SYSBENCH", "Twitter")


@dataclass
class TransferRow:
    """One Table 8 cell group: a framework/base pair on one target."""

    target: str
    framework: str  # "rgpe" | "mapping" | "fine-tune"
    base: str  # "smac" | "mixed_kernel_bo" | "ddpg"
    speedup: float | None  # None renders as the paper's "x"
    performance_enhancement: float
    best_score: float


@dataclass
class TransferComparison:
    rows: list[TransferRow]
    absolute_rankings: dict[str, dict[str, float]]  # per target + "avg"


def _run_all(
    optimizers: dict, target: str, space, scale: Scale, instance: str, seed: int,
    n_workers: int,
) -> dict:
    """Run every (label -> optimizer) session for one target, possibly in
    parallel; all methods share the target's server/session seeds (the
    paper's paired-comparison setup)."""
    labels = list(optimizers)
    specs = [
        RunSpec(
            run_index=idx,
            workload=target,
            instance=instance,
            space=space,
            optimizer=optimizer,
            n_iterations=scale.n_iterations,
            n_initial=scale.n_initial,
            server_seed=seed,
            session_seed=seed + 5,
            tags={"workload": target, "method": str(label)},
        )
        for idx, (label, optimizer) in enumerate(optimizers.items())
    ]
    results = ParallelExecutor(n_workers=n_workers).run(specs)
    histories: dict = {}
    for label, result in zip(labels, results):
        if result.history is None:
            raise RuntimeError(
                f"transfer run {label!r} on {target} failed: {result.error}"
            )
        histories[label] = result.history
    return histories


def transfer_comparison(
    scale: Scale | None = None,
    instance: str = "B",
    seed: int = 17,
    pretrain_iterations: int | None = None,
    n_workers: int = 1,
) -> TransferComparison:
    """Table 8: five transfer baselines against their base optimizers.

    DDPG is pre-trained on the five source workloads in turn; its
    training observations double as the historical data for workload
    mapping and RGPE (the paper's data-fairness setup).
    """
    scale = scale or bench_scale()
    space = transfer_space(instance, scale.n_pool_samples, seed)
    pretrain_iters = (
        pretrain_iterations if pretrain_iterations is not None else scale.n_iterations
    )
    agent, repository = pretrain_ddpg(
        space,
        list(SOURCE_WORKLOADS),
        instance=instance,
        iterations_per_source=pretrain_iters,
        seed=seed,
    )

    rows: list[TransferRow] = []
    per_target_scores: dict[str, dict[str, float]] = {}
    for t_idx, target in enumerate(TARGET_WORKLOADS):
        t_seed = seed + 100 * (t_idx + 1)
        optimizers: dict[object, Optimizer] = {
            "smac": SMAC(space, seed=t_seed),
            "mixed_kernel_bo": MixedKernelBO(space, seed=t_seed),
            "ddpg": DDPG(space, seed=t_seed),
            ("rgpe", "mixed_kernel_bo"): RGPEMixedKernelBO(space, repository, seed=t_seed),
            ("rgpe", "smac"): RGPESMAC(space, repository, seed=t_seed),
            ("mapping", "mixed_kernel_bo"): MappedOptimizer(
                MixedKernelBO(space, seed=t_seed), repository
            ),
            ("mapping", "smac"): MappedOptimizer(SMAC(space, seed=t_seed), repository),
            ("fine-tune", "ddpg"): fine_tuned_ddpg(space, agent, seed=t_seed),
        }
        all_histories = _run_all(
            optimizers, target, space, scale, instance, t_seed, n_workers
        )
        base_histories = {
            k: h for k, h in all_histories.items() if isinstance(k, str)
        }
        transfer_histories = {
            k: h for k, h in all_histories.items() if isinstance(k, tuple)
        }
        scores: dict[str, float] = {}
        for (framework, base), history in transfer_histories.items():
            base_history = base_histories[base]
            best = history.best().score
            rows.append(
                TransferRow(
                    target=target,
                    framework=framework,
                    base=base,
                    speedup=speedup(base_history, history),
                    performance_enhancement=performance_enhancement(
                        best, base_history.best().score
                    ),
                    best_score=best,
                )
            )
            scores[f"{framework}({base})"] = best
        per_target_scores[target] = scores

    rankings: dict[str, dict[str, float]] = {}
    methods = list(next(iter(per_target_scores.values())))
    for target, scores in per_target_scores.items():
        rankings[target] = average_ranks(
            {m: [scores[m]] for m in methods}, higher_is_better=True
        )
    rankings["avg"] = {
        m: float(np.mean([rankings[t][m] for t in per_target_scores])) for m in methods
    }
    return TransferComparison(rows=rows, absolute_rankings=rankings)
