"""Failure taxonomy: classification, retryability, and engine threading."""

import pytest

from repro.dbms.engine import OOM_FRACTION, UNSTARTABLE_FRACTION, PerformanceModel
from repro.dbms.instances import INSTANCES
from repro.dbms.server import MySQLServer
from repro.resilience import (
    CONFIG_INDUCED_KINDS,
    FailureKind,
    classify_failure_reason,
    is_retryable,
)
from repro.workloads.profiles import get_workload

GIB = 1 << 30


def test_kinds_are_json_friendly_strings():
    for kind in FailureKind:
        assert isinstance(kind.value, str)
        assert str(kind) == kind.value


def test_only_transient_is_retryable():
    assert is_retryable(FailureKind.TRANSIENT)
    for kind in FailureKind:
        if kind is not FailureKind.TRANSIENT:
            assert not is_retryable(kind)


def test_config_induced_kinds_feed_quarantine():
    assert FailureKind.CRASH in CONFIG_INDUCED_KINDS
    assert FailureKind.UNSTARTABLE in CONFIG_INDUCED_KINDS
    assert FailureKind.TRANSIENT not in CONFIG_INDUCED_KINDS


@pytest.mark.parametrize(
    "reason,expected",
    [
        ("oom: memory overcommit, mysqld killed during stress test", FailureKind.CRASH),
        ("oom: memory overcommit, mysqld unable to start", FailureKind.UNSTARTABLE),
        ("timeout: evaluation exceeded deadline", FailureKind.TIMEOUT),
        ("transient: connection reset", FailureKind.TRANSIENT),
        ("quarantined: configuration inside a known crash region", FailureKind.CRASH),
        (None, None),
        ("some novel failure", None),
    ],
)
def test_classify_failure_reason(reason, expected):
    assert classify_failure_reason(reason) is expected


# ----------------------------------------------------------------------
# engine predicate -> FailureKind mapping (docs/SIMULATOR.md table)
# ----------------------------------------------------------------------
def _engine_result(bp_bytes, mysql_space):
    instance = INSTANCES["B"]
    model = PerformanceModel(instance, seed=3)
    config = mysql_space.complete({"innodb_buffer_pool_size": bp_bytes})
    return model.evaluate(config, get_workload("SYSBENCH"), noise=False)


def test_engine_classifies_mid_band_overcommit_as_crash(mysql_space):
    ram = INSTANCES["B"].ram_gb
    assert OOM_FRACTION < UNSTARTABLE_FRACTION
    result = _engine_result(int(1.0 * ram * GIB), mysql_space)
    assert result.failed
    assert result.failure_kind is FailureKind.CRASH
    assert "oom" in result.failure_reason


def test_engine_classifies_extreme_overcommit_as_unstartable(mysql_space):
    ram = INSTANCES["B"].ram_gb
    result = _engine_result(int(2.0 * ram * GIB), mysql_space)
    assert result.failed
    assert result.failure_kind is FailureKind.UNSTARTABLE
    assert "unable to start" in result.failure_reason


def test_engine_success_has_no_kind(mysql_space):
    result = _engine_result(4 * GIB, mysql_space)
    assert not result.failed
    assert result.failure_kind is None


def test_server_threads_kind_and_counts_per_kind(sysbench_space):
    server = MySQLServer("SYSBENCH", "B", seed=5, noise=False)
    ram = INSTANCES["B"].ram_gb
    ok = server.evaluate({"innodb_buffer_pool_size": 4 * GIB})
    assert ok.failure_kind is None
    crashed = server.evaluate({"innodb_buffer_pool_size": int(1.0 * ram * GIB)})
    assert crashed.failed and crashed.failure_kind is FailureKind.CRASH
    unstartable = server.evaluate({"innodb_buffer_pool_size": int(2.0 * ram * GIB)})
    assert unstartable.failed and unstartable.failure_kind is FailureKind.UNSTARTABLE
    assert server.failure_counts == {"crash": 1, "unstartable": 1}
    assert server.n_failures == 2


def test_history_failure_summary(sysbench_space):
    from repro.optimizers.base import History, Observation
    from repro.space import Configuration

    history = History(sysbench_space)
    default = sysbench_space.default_configuration()

    def obs(failed, kind=None):
        return Observation(
            config=Configuration(dict(default)),
            objective=1.0,
            score=1.0,
            failed=failed,
            failure_kind=kind,
        )

    history.append(obs(False))
    history.append(obs(True, FailureKind.CRASH))
    history.append(obs(True, FailureKind.CRASH))
    history.append(obs(True, FailureKind.TIMEOUT))
    history.append(obs(True))  # legacy failure without a kind
    assert history.failure_summary() == {"crash": 2, "timeout": 1, "unclassified": 1}
