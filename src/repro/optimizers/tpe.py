"""Tree-structured Parzen estimator (Bergstra et al., 2011).

TPE models ``p(theta | y)`` instead of ``p(y | theta)``: observations are
split into a "good" set (top ``gamma`` quantile) and a "bad" set, and each
gets a per-dimension density — 1-D Parzen (kernel) estimators for numeric
knobs and smoothed categorical histograms for categorical knobs.
Candidates are sampled from the good density ``l(x)`` and ranked by the
ratio ``l(x) / g(x)``, which is EI-optimal under TPE's assumptions.

Because the densities factor **per dimension**, TPE cannot represent
interactions between knobs — the weakness the paper identifies as the
reason TPE trails every other optimizer (§6.2.1).
"""

from __future__ import annotations

import numpy as np

from repro.optimizers.base import History, Optimizer
from repro.space import CategoricalKnob, Configuration, ConfigurationSpace


class _NumericParzen:
    """1-D Gaussian-kernel density over unit-interval samples."""

    def __init__(self, samples: np.ndarray, rng: np.random.Generator) -> None:
        self.rng = rng
        # Always include a flat prior pseudo-sample at the center.
        self.centers = np.concatenate([np.asarray(samples, dtype=float), [0.5]])
        n = len(self.centers)
        spread = max(self.centers.std(), 0.05)
        self.bandwidth = max(1.06 * spread * n ** (-0.2), 0.03)

    def sample(self, size: int) -> np.ndarray:
        idx = self.rng.integers(0, len(self.centers), size=size)
        draws = self.centers[idx] + self.rng.normal(0.0, self.bandwidth, size=size)
        return np.clip(draws, 0.0, 1.0)

    def log_pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        diff = (x[:, None] - self.centers[None, :]) / self.bandwidth
        log_kernels = -0.5 * diff**2 - np.log(self.bandwidth * np.sqrt(2.0 * np.pi))
        max_log = log_kernels.max(axis=1, keepdims=True)
        return (
            max_log.ravel()
            + np.log(np.exp(log_kernels - max_log).sum(axis=1))
            - np.log(len(self.centers))
        )


class _CategoricalParzen:
    """Smoothed categorical histogram."""

    def __init__(self, indices: np.ndarray, n_choices: int, rng: np.random.Generator) -> None:
        self.rng = rng
        counts = np.bincount(np.asarray(indices, dtype=int), minlength=n_choices).astype(float)
        counts += 1.0  # Laplace smoothing = uniform prior
        self.probs = counts / counts.sum()

    def sample(self, size: int) -> np.ndarray:
        return self.rng.choice(len(self.probs), size=size, p=self.probs)

    def log_pdf(self, idx: np.ndarray) -> np.ndarray:
        return np.log(self.probs[np.asarray(idx, dtype=int)])


class TPE(Optimizer):
    """Independent per-dimension good/bad Parzen densities + l/g ranking."""

    name = "tpe"

    def __init__(
        self,
        space: ConfigurationSpace,
        seed: int | None = None,
        gamma: float = 0.25,
        n_candidates: int = 64,
        min_observations: int = 4,
    ) -> None:
        super().__init__(space, seed)
        if not 0.0 < gamma < 1.0:
            raise ValueError("gamma must be in (0, 1)")
        self.gamma = gamma
        self.n_candidates = n_candidates
        self.min_observations = min_observations

    def suggest(self, history: History) -> Configuration:
        if len(history) < self.min_observations:
            return self._dedupe(self._random_config(), history)
        X, y = self._training_data(history)
        n_good = max(1, int(np.ceil(self.gamma * len(y))))
        order = np.argsort(-y)  # maximization: best first
        good_idx, bad_idx = order[:n_good], order[n_good:]
        if len(bad_idx) == 0:
            return self._dedupe(self._random_config(), history)

        d = self.space.n_dims
        cand = np.empty((self.n_candidates, d))
        log_l = np.zeros(self.n_candidates)
        log_g = np.zeros(self.n_candidates)
        for j, knob in enumerate(self.space.knobs):
            if isinstance(knob, CategoricalKnob):
                to_idx = np.clip(
                    (X[:, j] * knob.n_choices).astype(int), 0, knob.n_choices - 1
                )
                good = _CategoricalParzen(to_idx[good_idx], knob.n_choices, self.rng)
                bad = _CategoricalParzen(to_idx[bad_idx], knob.n_choices, self.rng)
                draws = good.sample(self.n_candidates)
                log_l += good.log_pdf(draws)
                log_g += bad.log_pdf(draws)
                cand[:, j] = (draws + 0.5) / knob.n_choices
            else:
                good = _NumericParzen(X[good_idx, j], self.rng)
                bad = _NumericParzen(X[bad_idx, j], self.rng)
                draws = good.sample(self.n_candidates)
                log_l += good.log_pdf(draws)
                log_g += bad.log_pdf(draws)
                cand[:, j] = draws
        choice = self.space.decode(cand[int(np.argmax(log_l - log_g))])
        return self._dedupe(choice, history)
