"""SHAP knob ranking (Lundberg & Lee, 2017; paper §3.1.2).

Shapley values decompose, additively and uniquely, the performance change
from the default configuration to a target configuration across the knobs
that differ.  We estimate them by permutation sampling on a random-forest
surrogate (the classic sampling approximation of the Shapley value):

    phi_i = E_pi [ f(default with S_pi(i) + {i} set to target)
                   - f(default with S_pi(i) set to target) ]

where ``S_pi(i)`` is the set of knobs preceding ``i`` in a random
permutation.  Following the paper's adaptation, the *base* configuration
is the given default, and each knob's tunability score is the average of
its **positive** SHAP values across better-than-default targets — a knob
whose changes only ever hurt scores zero, which is exactly how SHAP
avoids the query-cache/max_connections traps that mislead variance-based
measurements.
"""

from __future__ import annotations

import numpy as np

from repro.ml.forest import RandomForestRegressor
from repro.ml.metrics import r2_score
from repro.selection.base import ImportanceMeasurement
from repro.space import Configuration


class ShapImportance(ImportanceMeasurement):
    """Permutation-sampled Shapley tunability scores."""

    name = "shap"

    def __init__(
        self,
        space,
        seed: int | None = None,
        n_targets: int = 20,
        n_permutations: int = 10,
        noise_floor_frac: float = 0.03,
        n_trees: int = 40,
    ) -> None:
        super().__init__(space, seed)
        self.n_targets = n_targets
        self.n_permutations = n_permutations
        self.noise_floor_frac = noise_floor_frac
        self.n_trees = n_trees

    def _fit_surrogate(self, X: np.ndarray, y: np.ndarray) -> RandomForestRegressor:
        forest = RandomForestRegressor(
            n_estimators=self.n_trees,
            max_depth=18,
            min_samples_leaf=3,
            max_features=0.6,
            seed=self.seed,
        )
        forest.fit(X, y)
        self.surrogate_r2_ = r2_score(y, forest.predict(X))
        self._surrogate = forest
        return forest

    def predict_holdout(self, configs) -> np.ndarray:
        """Surrogate predictions for unseen configurations (Figure 4)."""
        if getattr(self, "_surrogate", None) is None:
            raise RuntimeError("measurement has not been run")
        return self._surrogate.predict(self.space.encode_many(configs))

    def shap_values(
        self,
        forest: RandomForestRegressor,
        default: Configuration,
        target: Configuration,
    ) -> dict[str, float]:
        """Sampling-approximated Shapley values for one default->target pair."""
        differing = [n for n in self.space.names if default[n] != target[n]]
        if not differing:
            return {}
        phi = {name: 0.0 for name in differing}
        for __ in range(self.n_permutations):
            order = list(self.rng.permutation(differing))
            # Walk the permutation, switching knobs to target one by one;
            # batch-predict the whole chain for efficiency.
            chain: list[Configuration] = [default]
            current = default
            for name in order:
                current = current.with_values(**{name: target[name]})
                chain.append(current)
            preds = forest.predict(self.space.encode_many(chain))
            for i, name in enumerate(order):
                phi[name] += float(preds[i + 1] - preds[i])
        return {name: value / self.n_permutations for name, value in phi.items()}

    def _compute(self, configs, scores, default_score) -> np.ndarray:
        if default_score is None:
            raise ValueError("SHAP tunability requires the default score")
        X = self.space.encode_many(configs)
        y = np.asarray(scores, dtype=float)
        forest = self._fit_surrogate(X, y)

        order = np.argsort(-y)
        targets = [configs[i] for i in order if y[i] > default_score][: self.n_targets]
        if not targets:
            targets = [configs[i] for i in order[: self.n_targets]]
        default = self.space.default_configuration()

        totals = np.zeros(self.space.n_dims)
        index = {name: i for i, name in enumerate(self.space.names)}
        for target in targets:
            phis = self.shap_values(forest, default, target)
            if not phis:
                continue
            # Accumulate *signed* phi across targets so zero-mean surrogate
            # noise cancels; a knob's tunability is the positive part of
            # its mean contribution.  Tiny values below the per-target
            # noise floor are dropped either way.
            floor = self.noise_floor_frac * max(abs(v) for v in phis.values())
            for name, phi in phis.items():
                if abs(phi) > floor:
                    totals[index[name]] += phi
        return np.maximum(totals / len(targets), 0.0)
