"""Distance caching, derived LML, hyperparameter-fit regressions, posterior
short-circuit — the default-on (bit-identical) GP acceleration layer."""

import numpy as np
import pytest

from repro.ml.gp import GaussianProcessRegressor
from repro.ml.kernels import (
    ConstantKernel,
    HammingKernel,
    Matern52Kernel,
    MixedKernel,
    RBFKernel,
)
from repro.perf.cache import KernelCache


def _data(seed=0, n=20, d=5):
    rng = np.random.default_rng(seed)
    X = rng.random((n, d))
    y = np.sin(3.0 * X[:, 0]) - X[:, 2] + 0.1 * rng.standard_normal(n)
    return X, y


KERNELS = {
    "rbf": lambda: ConstantKernel(1.0) * RBFKernel(0.5),
    "matern": lambda: ConstantKernel(1.0) * Matern52Kernel(0.4),
    "mixed": lambda: ConstantKernel(1.0) * MixedKernel([0, 1, 2], [3, 4]),
}


class TestBitIdentity:
    @pytest.mark.parametrize("kernel_name", sorted(KERNELS))
    def test_cached_fit_is_bit_identical(self, kernel_name):
        """cache_distances=True must not perturb the hyperparameter search
        trajectory, the resulting theta, or predictions — byte for byte."""
        X, y = _data()
        results = {}
        for cached in (False, True):
            gp = GaussianProcessRegressor(
                kernel=KERNELS[kernel_name](),
                noise=1e-4,
                n_restarts=1,
                seed=123,
                cache_distances=cached,
            )
            gp.fit(X, y)
            mean, std = gp.predict(X[:7] + 0.01, return_std=True)
            results[cached] = (
                gp.kernel.theta.tobytes(),
                gp.log_marginal_likelihood_,
                mean.tobytes(),
                std.tobytes(),
            )
        assert results[False] == results[True]

    def test_cache_is_actually_used(self):
        X, y = _data(n=15)
        cache = KernelCache()
        kernel = ConstantKernel(1.0) * RBFKernel(0.5)
        kernel(X, X, cache)
        assert cache.misses == 1 and cache.hits == 0
        kernel.theta = kernel.theta + 0.1  # new theta, same distances
        kernel(X, X, cache)
        assert cache.misses == 1 and cache.hits == 1


class TestKernelCache:
    def test_get_memoizes_by_key(self):
        cache = KernelCache()
        calls = []

        def build():
            calls.append(1)
            return np.arange(3.0)

        first = cache.get("k", build)
        second = cache.get("k", build)
        assert first is second
        assert len(calls) == 1
        assert cache.hits == 1 and cache.misses == 1
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0
        cache.get("k", build)
        assert len(calls) == 2


class TestFitHyperparams:
    def test_incumbent_lml_evaluated_once(self):
        """L-BFGS-B re-evaluates its start point; the memo must absorb the
        duplicate so the incumbent costs exactly one O(n^3) evaluation."""
        X, y = _data(n=12)

        class CountingGP(GaussianProcessRegressor):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.eval_thetas = []

            def _lml(self, X, y, cache=None):
                self.eval_thetas.append(self.kernel.theta.tobytes())
                return super()._lml(X, y, cache)

        gp = CountingGP(
            kernel=ConstantKernel(1.0) * RBFKernel(0.5), noise=1e-4, n_restarts=1, seed=0
        )
        incumbent = gp.kernel.theta.tobytes()
        gp.fit(X, y)
        assert gp.eval_thetas.count(incumbent) == 1

    def test_theta_restored_when_all_results_non_finite(self, monkeypatch):
        """If every L-BFGS-B run returns a non-finite objective, the kernel
        must be left at the incumbent theta — not at the search's last
        evaluated point."""
        from scipy import optimize

        X, y = _data(n=10)
        gp = GaussianProcessRegressor(
            kernel=ConstantKernel(1.0) * RBFKernel(0.5), noise=1e-4, n_restarts=2, seed=9
        )
        incumbent = gp.kernel.theta.copy()

        def _diverge(fun, x0, **kwargs):
            # Mimic a search that wandered off and failed: it *evaluated*
            # other thetas (mutating the kernel) but reports non-finite.
            fun(np.asarray(x0, dtype=float) + 1.0)
            return optimize.OptimizeResult(
                x=np.asarray(x0, dtype=float) + 1.0, fun=float("nan"), success=False
            )

        monkeypatch.setattr("repro.ml.gp.optimize.minimize", _diverge)
        gp.fit(X, y)
        np.testing.assert_array_equal(gp.kernel.theta, incumbent)

    def test_derived_lml_matches_direct_evaluation(self):
        X, y = _data(n=14)
        gp = GaussianProcessRegressor(
            kernel=ConstantKernel(1.0) * RBFKernel(0.5), noise=1e-4, n_restarts=0, seed=1
        )
        gp.fit(X, y)
        yn = (gp._y_raw - gp._y_mean) / gp._y_std
        # The stored value comes from the final factorization (which may
        # carry ladder jitter); it must agree with a fresh evaluation at
        # the fitted theta to numerical precision.
        direct = gp._lml(gp._X, yn)
        np.testing.assert_allclose(gp.log_marginal_likelihood_, direct, rtol=1e-9, atol=1e-9)


class TestSamplePosteriorSinglePoint:
    def _fitted(self, seed=21):
        X, y = _data(seed=seed, n=18, d=3)
        gp = GaussianProcessRegressor(
            kernel=ConstantKernel(1.0) * RBFKernel(0.5), noise=1e-4, n_restarts=0, seed=seed
        )
        return gp.fit(X, y)

    def test_shape_and_determinism(self):
        gp = self._fitted()
        x = np.full((1, 3), 0.3)
        draws = gp.sample_posterior(x, n_samples=6)
        assert draws.shape == (6, 1)
        np.testing.assert_array_equal(draws, gp.sample_posterior(x, n_samples=6))

    def test_consistent_with_posterior_moments(self):
        gp = self._fitted()
        x = np.full((1, 3), 0.6)
        rng = np.random.default_rng(77)
        draws = gp.sample_posterior(x, n_samples=4000, rng=rng).ravel()
        mean, std = gp.predict(x, return_std=True)
        assert abs(draws.mean() - mean[0]) < 5.0 * std[0] / np.sqrt(4000) + 1e-6
        assert draws.std() < 3.0 * std[0] + 1e-6

    def test_multi_point_path_unchanged(self):
        gp = self._fitted()
        X_test = np.linspace(0.1, 0.9, 12).reshape(4, 3)
        draws = gp.sample_posterior(X_test, n_samples=3)
        assert draws.shape == (3, 4)
        assert np.all(np.isfinite(draws))


class TestHammingCache:
    def test_hamming_kernel_accepts_cache(self):
        rng = np.random.default_rng(13)
        A = rng.integers(0, 3, (10, 4)).astype(float)
        cache = KernelCache()
        kernel = HammingKernel()
        first = kernel(A, A, cache)
        second = kernel(A, A, cache)
        np.testing.assert_array_equal(first, second)
        assert cache.hits >= 1
        np.testing.assert_array_equal(first, kernel(A, A))
