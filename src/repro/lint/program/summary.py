"""Per-file fact extraction for the whole-program passes.

One AST walk distills a :class:`FileSummary` — everything the program
rules need, and nothing they don't, so summaries are small, picklable,
JSON-serializable, and cacheable by content hash.  The heart is a
two-color intra-procedural taint analysis:

- **seed** taint tracks values derived from the SeedSequence tree
  (``seed``/``rng`` parameters, ``*.seed`` attribute loads, RNG
  constructor results) through assignments, arithmetic, unpacking, and
  call arguments to the RNG sinks (R010) and records how each ``seed``
  parameter is consumed (R011);
- **clock** taint tracks values derived from wall-clock reads
  (``time.time()``, ``datetime.now()``, ...) into record-dict writes and
  hash/serialization sinks (R014).

Cross-module flows cannot be decided per file; wherever a value's taint
hinges on what a callee returns, the summary records the callee as a
*dependency* and the program pass resolves it against the global
fixpoint of seed-returning / clock-returning functions.
"""

from __future__ import annotations

import ast
import re
from dataclasses import asdict, dataclass, field, replace

from repro.lint.context import attribute_chain
from repro.lint.rules import _SEEDED_CONSTRUCTORS, WallClockInResults

#: Resolved call targets that *create* an RNG stream.  A call with at
#: least one argument is a seed **sink**: whatever flows in determines
#: every draw that comes out.
RNG_SINKS = frozenset(
    {f"numpy.random.{name}" for name in _SEEDED_CONSTRUCTORS} | {"random.Random"}
)

#: Resolved call targets that read the wall clock (shared with R007).
CLOCK_SOURCES = frozenset(WallClockInResults._BANNED)

#: Resolved call targets whose arguments get hashed/serialized into
#: durable artifacts — the terminal sinks of the R014 flow.
HASH_SINKS = frozenset(
    {
        "json.dumps",
        "json.dump",
        "hashlib.sha256",
        "hashlib.sha1",
        "hashlib.md5",
        "hashlib.blake2b",
        "pickle.dumps",
        "pickle.dump",
    }
)

_SEED_NAME_RE = re.compile(r"seed|random_state", re.IGNORECASE)

#: Functions whose *name* marks them as producing recorded/fingerprinted
#: payloads; clock taint reaching a dict value inside them is an R014.
RECORDISH_NAME_RE = re.compile(
    r"to_record|to_payload|fingerprint|telemetry|checkpoint|journal|snapshot",
    re.IGNORECASE,
)


def is_seedish(name: str) -> bool:
    """Names that carry seed provenance by convention."""
    return bool(_SEED_NAME_RE.search(name)) or name.lower() in {"rng", "rngs", "seeds"}


# ----------------------------------------------------------------------
# taint values
# ----------------------------------------------------------------------
@dataclass
class Taint:
    """Taint state of one value for one color.

    ``definite`` means the taint is proven locally; ``deps`` lists callee
    names whose (globally computed) return taint would also taint this
    value.  Absence of both means clean.
    """

    definite: bool = False
    deps: frozenset[str] = frozenset()

    def merged(self, other: "Taint") -> "Taint":
        return Taint(self.definite or other.definite, self.deps | other.deps)

    @property
    def clean(self) -> bool:
        return not self.definite and not self.deps


@dataclass
class Taints:
    seed: Taint = field(default_factory=Taint)
    clock: Taint = field(default_factory=Taint)

    def merged(self, other: "Taints") -> "Taints":
        return Taints(self.seed.merged(other.seed), self.clock.merged(other.clock))


_CLEAN = Taints()


# ----------------------------------------------------------------------
# recorded facts
# ----------------------------------------------------------------------
@dataclass
class SinkCall:
    """One RNG-constructor call with >= 1 argument."""

    line: int
    col: int
    callee: str
    #: "tainted" | "untainted" | "constant" (all-literal args: R002's
    #: territory, not a provenance break).
    status: str
    #: Callee names that could rescue an "untainted" verdict globally.
    deps: list[str] = field(default_factory=list)


@dataclass
class SeedParamUse:
    """How one seed/rng parameter is consumed inside its function."""

    name: str
    calls: int = 0  # forwarded as a call argument (sub-component)
    sinks: int = 0  # fed into an RNG sink
    returns: int = 0  # returned to the caller
    other: int = 0  # any other read (arithmetic, conditions, ...)
    none_checks: int = 0  # `seed is None` style guards only
    stores: list[str] = field(default_factory=list)  # `self.X = seed`


@dataclass
class DictWrite:
    """A string-keyed dict value written inside a function."""

    line: int
    col: int
    key: str
    clock_definite: bool = False
    clock_deps: list[str] = field(default_factory=list)


@dataclass
class HashSinkArg:
    """Clock taint of an argument to a hash/serialization sink."""

    line: int
    col: int
    callee: str
    clock_definite: bool = False
    clock_deps: list[str] = field(default_factory=list)


@dataclass
class FunctionFacts:
    """Compact summary of one top-level function or method."""

    name: str
    qualname: str  # "func" or "Class.method" within the module
    line: int
    col: int
    # signature shape (for R012)
    pos_params: list[str] = field(default_factory=list)
    n_required_pos: int = 0
    required_kwonly: list[str] = field(default_factory=list)
    all_params: list[str] = field(default_factory=list)
    has_vararg: bool = False
    has_kwarg: bool = False
    is_stub: bool = False
    # seed provenance (R010/R011)
    seed_params: list[SeedParamUse] = field(default_factory=list)
    reads_seed_attr: bool = False
    sink_calls: list[SinkCall] = field(default_factory=list)
    return_seed_definite: bool = False
    return_seed_deps: list[str] = field(default_factory=list)
    # clock flow (R014)
    return_clock_definite: bool = False
    return_clock_deps: list[str] = field(default_factory=list)
    dict_writes: list[DictWrite] = field(default_factory=list)
    hash_sink_args: list[HashSinkArg] = field(default_factory=list)
    # checkpoint schema (R013)
    record_write_keys: list[str] = field(default_factory=list)
    record_read_keys: list[str] = field(default_factory=list)


@dataclass
class ClassFacts:
    name: str
    line: int
    col: int
    #: Raw (unresolved) dotted base names, e.g. ``["Optimizer"]`` or
    #: ``["base.Optimizer"]`` — the ProgramIndex resolves them.
    bases: list[str] = field(default_factory=list)
    methods: dict[str, FunctionFacts] = field(default_factory=dict)


@dataclass
class ContractCall:
    """A ``<recv>.suggest(...)`` / ``<recv>.observe(...)`` call site."""

    line: int
    col: int
    method: str
    n_pos: int
    kwargs: list[str] = field(default_factory=list)
    has_star: bool = False
    has_kwstar: bool = False
    receiver: str = ""


@dataclass
class FileSummary:
    """Everything the whole-program passes need from one file."""

    path: str
    module: str  # dotted module name ("" when unknown)
    package: str  # top-level package name ("" for loose files)
    is_init: bool = False
    aliases: dict[str, str] = field(default_factory=dict)
    attr_loads: list[str] = field(default_factory=list)
    functions: list[FunctionFacts] = field(default_factory=list)
    classes: list[ClassFacts] = field(default_factory=list)
    contract_calls: list[ContractCall] = field(default_factory=list)
    #: line -> suppression codes, so program findings honor inline
    #: ``# reprolint: disable=`` comments without re-reading the file.
    suppressions: dict[int, list[str]] = field(default_factory=dict)

    def with_path(self, path: str) -> "FileSummary":
        """Copy with a rewritten path (content-addressed cache hits on a
        moved file carry the old path string)."""
        if path == self.path:
            return self
        clone = replace(self, path=path)
        return clone

    # -- serialization (cache) -----------------------------------------
    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FileSummary":
        data = dict(data)
        data["functions"] = [_function_from_dict(f) for f in data.get("functions", [])]
        data["classes"] = [
            ClassFacts(
                name=c["name"],
                line=c["line"],
                col=c["col"],
                bases=list(c.get("bases", [])),
                methods={
                    name: _function_from_dict(m)
                    for name, m in c.get("methods", {}).items()
                },
            )
            for c in data.get("classes", [])
        ]
        data["contract_calls"] = [
            ContractCall(**c) for c in data.get("contract_calls", [])
        ]
        data["suppressions"] = {
            int(line): list(codes)
            for line, codes in data.get("suppressions", {}).items()
        }
        return cls(**data)


def _function_from_dict(data: dict) -> FunctionFacts:
    data = dict(data)
    data["seed_params"] = [SeedParamUse(**u) for u in data.get("seed_params", [])]
    data["sink_calls"] = [SinkCall(**s) for s in data.get("sink_calls", [])]
    data["dict_writes"] = [DictWrite(**w) for w in data.get("dict_writes", [])]
    data["hash_sink_args"] = [HashSinkArg(**h) for h in data.get("hash_sink_args", [])]
    return FunctionFacts(**data)


# ----------------------------------------------------------------------
# expression taint evaluation
# ----------------------------------------------------------------------
class _FunctionAnalyzer:
    """Intra-procedural, flow-insensitive-to-a-fault taint walk.

    The statement list is processed in order twice, so a name assigned
    below its first use inside a loop still converges.  Precision favors
    *over*-tainting: a false "tainted" merely silences a finding, while a
    false "untainted" would page a human.
    """

    def __init__(self, summary: FileSummary, module: str, cls: str | None) -> None:
        self.summary = summary
        self.module = module
        self.cls = cls
        self.env: dict[str, Taints] = {}

    # -- callee canonicalization ---------------------------------------
    def resolve_callee(self, func: ast.expr) -> str | None:
        """Best-effort canonical name of a call target.

        ``f()`` -> alias target or ``module.f`` (assumed local);
        ``self.m()`` -> ``module.Class.m``; ``obj.m()`` -> ``?m`` (matched
        leniently by terminal name at index time); unresolvable -> None.
        """
        chain = attribute_chain(func)
        if chain is None:
            return None
        root = chain[0]
        target = self.summary.aliases.get(root)
        if target is not None:
            return ".".join([target, *chain[1:]])
        if len(chain) == 1:
            return f"{self.module}.{root}" if self.module else f"?{root}"
        if root == "self" and self.cls and len(chain) == 2:
            return f"{self.module}.{self.cls}.{chain[1]}"
        return f"?{chain[-1]}"

    # -- expression evaluation -----------------------------------------
    def eval(self, node: ast.expr | None) -> Taints:
        if node is None:
            return _CLEAN
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        # Default: union over child expressions (f-strings, slices, ...).
        out = _CLEAN
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                out = out.merged(self.eval(child))
        return out

    def _eval_Name(self, node: ast.Name) -> Taints:
        taints = self.env.get(node.id, _CLEAN)
        if is_seedish(node.id):
            taints = taints.merged(Taints(seed=Taint(definite=True)))
        return taints

    def _eval_Attribute(self, node: ast.Attribute) -> Taints:
        taints = self.eval(node.value)
        if is_seedish(node.attr):
            taints = taints.merged(Taints(seed=Taint(definite=True)))
        return taints

    def _eval_Constant(self, node: ast.Constant) -> Taints:
        return _CLEAN

    def _eval_Compare(self, node: ast.Compare) -> Taints:
        return _CLEAN  # a boolean is neither a seed nor a timestamp

    def _eval_Lambda(self, node: ast.Lambda) -> Taints:
        return _CLEAN

    def _eval_comprehension(self, node: ast.expr) -> Taints:
        # Bind each generator target from its iterable so the element
        # expression sees the provenance (`[default_rng(c) for c in
        # seed_seq.spawn(n)]` is seeded, not shadowed).
        for gen in node.generators:  # type: ignore[attr-defined]
            self.bind(gen.target, self.eval(gen.iter))
        if isinstance(node, ast.DictComp):
            return self.eval(node.key).merged(self.eval(node.value))
        return self.eval(node.elt)  # type: ignore[attr-defined]

    _eval_ListComp = _eval_comprehension
    _eval_SetComp = _eval_comprehension
    _eval_GeneratorExp = _eval_comprehension
    _eval_DictComp = _eval_comprehension

    def _eval_Call(self, node: ast.Call) -> Taints:
        callee = self.resolve_callee(node.func)
        out = _CLEAN
        # Receiver propagation: `child.spawn(4)`, `seeds.server`, and any
        # method on a tainted object stays tainted.
        if isinstance(node.func, ast.Attribute):
            out = out.merged(self.eval(node.func.value))
        for arg in node.args:
            inner = arg.value if isinstance(arg, ast.Starred) else arg
            out = out.merged(self.eval(inner))
        for kw in node.keywords:
            out = out.merged(self.eval(kw.value))
        if callee is not None:
            terminal = callee.rsplit(".", 1)[-1]
            if callee in CLOCK_SOURCES:
                out = out.merged(Taints(clock=Taint(definite=True)))
            elif callee in RNG_SINKS or is_seedish(terminal):
                # An RNG stream (or a seed-deriving helper's result) is
                # itself seed provenance for everything downstream.
                out = out.merged(Taints(seed=Taint(definite=True)))
            else:
                dep = frozenset({callee})
                out = out.merged(
                    Taints(seed=Taint(deps=dep), clock=Taint(deps=dep))
                )
        return out

    # -- statement walk -------------------------------------------------
    def bind(self, target: ast.expr, taints: Taints) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = self.env.get(target.id, _CLEAN).merged(taints)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self.bind(elt.value if isinstance(elt, ast.Starred) else elt, taints)
        # Attribute/subscript stores don't create local bindings.

    def process(self, body: list[ast.stmt]) -> None:
        for _ in range(2):
            for stmt in body:
                self._process_stmt(stmt)

    def _process_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes analyzed separately (or not at all)
        if isinstance(stmt, ast.Assign):
            taints = self.eval(stmt.value)
            for target in stmt.targets:
                self.bind(target, taints)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self.bind(stmt.target, self.eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            self.bind(stmt.target, self.eval(stmt.value))
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.bind(stmt.target, self.eval(stmt.iter))
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    self.bind(item.optional_vars, self.eval(item.context_expr))
        else:
            # Evaluate bare expressions (returns, calls, conditions) too:
            # comprehensions bind their targets as a side effect, and the
            # sink extraction later reads those bindings from the env.
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child)
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._process_stmt(child)


# ----------------------------------------------------------------------
# per-function extraction
# ----------------------------------------------------------------------
def _signature_facts(node: ast.FunctionDef | ast.AsyncFunctionDef) -> dict:
    args = node.args
    pos = [a.arg for a in args.posonlyargs + args.args]
    n_required_pos = max(0, len(pos) - len(args.defaults))
    required_kwonly = [
        a.arg
        for a, default in zip(args.kwonlyargs, args.kw_defaults)
        if default is None
    ]
    all_params = list(pos) + [a.arg for a in args.kwonlyargs]
    return {
        "pos_params": pos,
        "n_required_pos": n_required_pos,
        "required_kwonly": required_kwonly,
        "all_params": all_params,
        "has_vararg": args.vararg is not None,
        "has_kwarg": args.kwarg is not None,
    }


def _is_stub(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Bodies that only raise/pass/document — abstract hooks, not drops."""
    for stmt in node.body:
        if isinstance(stmt, (ast.Pass, ast.Raise)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring / Ellipsis
        return False
    return True


def _walk_scope(root: ast.AST):
    """Walk a function's *own* scope: descend into everything except
    nested function/class/lambda bodies, whose facts belong to them."""
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _build_parents(root: ast.AST) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(root):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _classify_seed_params(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    analyzer: _FunctionAnalyzer,
) -> list[SeedParamUse]:
    args = node.args
    param_names = [
        a.arg for a in args.posonlyargs + args.args + args.kwonlyargs
    ]
    seed_names = [
        name for name in param_names if is_seedish(name) and name != "self"
    ]
    if not seed_names:
        return []
    uses = {name: SeedParamUse(name=name) for name in seed_names}
    parents = _build_parents(node)

    def _in_return(n: ast.AST) -> bool:
        current = n
        while current is not node and current in parents:
            current = parents[current]
            if isinstance(current, ast.Return):
                return True
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return False
        return False

    for sub in ast.walk(node):
        if not isinstance(sub, ast.Name) or sub.id not in uses:
            continue
        if not isinstance(sub.ctx, ast.Load):
            continue
        use = uses[sub.id]
        parent = parents.get(sub)
        if isinstance(parent, ast.Call) and sub in parent.args:
            callee = analyzer.resolve_callee(parent.func)
            if callee in RNG_SINKS:
                use.sinks += 1
            else:
                use.calls += 1
        elif isinstance(parent, ast.keyword):
            call = parents.get(parent)
            callee = (
                analyzer.resolve_callee(call.func)
                if isinstance(call, ast.Call)
                else None
            )
            if callee in RNG_SINKS:
                use.sinks += 1
            else:
                use.calls += 1
        elif isinstance(parent, ast.Starred):
            use.calls += 1
        elif isinstance(parent, ast.Assign) and any(
            isinstance(t, ast.Attribute) for t in parent.targets
        ):
            for t in parent.targets:
                if isinstance(t, ast.Attribute):
                    use.stores.append(t.attr)
        elif isinstance(parent, ast.AnnAssign) and isinstance(
            parent.target, ast.Attribute
        ):
            use.stores.append(parent.target.attr)
        elif isinstance(parent, ast.Compare) and any(
            isinstance(c, ast.Constant) and c.value is None
            for c in parent.comparators
        ):
            use.none_checks += 1
        elif _in_return(sub):
            use.returns += 1
        else:
            use.other += 1
    return list(uses.values())


def _all_constant(call: ast.Call) -> bool:
    values = [
        a.value if isinstance(a, ast.Starred) else a for a in call.args
    ] + [kw.value for kw in call.keywords]

    def _const(node: ast.expr) -> bool:
        if isinstance(node, ast.Constant):
            return True
        if isinstance(node, ast.UnaryOp) and isinstance(node.operand, ast.Constant):
            return True
        return False

    return bool(values) and all(_const(v) for v in values)


def _extract_function(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    summary: FileSummary,
    module: str,
    cls: str | None,
) -> FunctionFacts:
    facts = FunctionFacts(
        name=node.name,
        qualname=f"{cls}.{node.name}" if cls else node.name,
        line=node.lineno,
        col=node.col_offset + 1,
        is_stub=_is_stub(node),
        **_signature_facts(node),
    )

    analyzer = _FunctionAnalyzer(summary, module, cls)
    # Parameters seed the environment so assignments propagate provenance.
    for use in _classify_seed_params(node, analyzer):
        facts.seed_params.append(use)
        analyzer.env[use.name] = Taints(seed=Taint(definite=True))
    analyzer.process(node.body)

    return_taints = _CLEAN
    for sub in _walk_scope(node):
        if isinstance(sub, ast.Attribute) and isinstance(sub.ctx, ast.Load):
            if is_seedish(sub.attr):
                facts.reads_seed_attr = True
        if isinstance(sub, ast.Return) and sub.value is not None:
            return_taints = return_taints.merged(analyzer.eval(sub.value))
        if not isinstance(sub, ast.Call):
            continue
        callee = analyzer.resolve_callee(sub.func)
        if callee is None:
            continue
        if callee in RNG_SINKS and (sub.args or sub.keywords):
            if _all_constant(sub):
                status, deps = "constant", []
            else:
                arg_taints = _CLEAN
                for arg in sub.args:
                    inner = arg.value if isinstance(arg, ast.Starred) else arg
                    arg_taints = arg_taints.merged(analyzer.eval(inner))
                for kw in sub.keywords:
                    arg_taints = arg_taints.merged(analyzer.eval(kw.value))
                if arg_taints.seed.definite:
                    status, deps = "tainted", []
                else:
                    status, deps = "untainted", sorted(arg_taints.seed.deps)
            facts.sink_calls.append(
                SinkCall(
                    line=sub.lineno,
                    col=sub.col_offset + 1,
                    callee=callee,
                    status=status,
                    deps=deps,
                )
            )
        elif callee in HASH_SINKS:
            arg_taints = _CLEAN
            for arg in sub.args:
                inner = arg.value if isinstance(arg, ast.Starred) else arg
                arg_taints = arg_taints.merged(analyzer.eval(inner))
            if not arg_taints.clock.clean:
                facts.hash_sink_args.append(
                    HashSinkArg(
                        line=sub.lineno,
                        col=sub.col_offset + 1,
                        callee=callee,
                        clock_definite=arg_taints.clock.definite,
                        clock_deps=sorted(arg_taints.clock.deps),
                    )
                )

    facts.return_seed_definite = return_taints.seed.definite
    facts.return_seed_deps = sorted(return_taints.seed.deps)
    facts.return_clock_definite = return_taints.clock.definite
    facts.return_clock_deps = sorted(return_taints.clock.deps)

    _extract_record_schema(node, analyzer, facts)
    return facts


def _extract_record_schema(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    analyzer: _FunctionAnalyzer,
    facts: FunctionFacts,
) -> None:
    """String dict keys written / read inside the function (R013, R014)."""
    write_keys: list[str] = []
    read_keys: list[str] = []
    for sub in _walk_scope(node):
        if isinstance(sub, ast.Dict):
            for key_node, value_node in zip(sub.keys, sub.values):
                if isinstance(key_node, ast.Constant) and isinstance(
                    key_node.value, str
                ):
                    write_keys.append(key_node.value)
                    taints = analyzer.eval(value_node)
                    if not taints.clock.clean:
                        facts.dict_writes.append(
                            DictWrite(
                                line=value_node.lineno,
                                col=value_node.col_offset + 1,
                                key=key_node.value,
                                clock_definite=taints.clock.definite,
                                clock_deps=sorted(taints.clock.deps),
                            )
                        )
        elif isinstance(sub, ast.Subscript) and isinstance(
            sub.slice, ast.Constant
        ) and isinstance(sub.slice.value, str):
            if isinstance(sub.ctx, ast.Store):
                write_keys.append(sub.slice.value)
                parent_assign = None
                # Find the Assign whose target this subscript is, to taint
                # the stored value; cheap linear check over the statement.
                for cand in ast.walk(node):
                    if isinstance(cand, ast.Assign) and sub in cand.targets:
                        parent_assign = cand
                        break
                if parent_assign is not None:
                    taints = analyzer.eval(parent_assign.value)
                    if not taints.clock.clean:
                        facts.dict_writes.append(
                            DictWrite(
                                line=sub.lineno,
                                col=sub.col_offset + 1,
                                key=sub.slice.value,
                                clock_definite=taints.clock.definite,
                                clock_deps=sorted(taints.clock.deps),
                            )
                        )
            elif isinstance(sub.ctx, ast.Del):
                # `del record["k"]` removes the field again (projections).
                write_keys = [k for k in write_keys if k != sub.slice.value]
            else:
                read_keys.append(sub.slice.value)
        elif (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == "get"
            and sub.args
            and isinstance(sub.args[0], ast.Constant)
            and isinstance(sub.args[0].value, str)
        ):
            read_keys.append(sub.args[0].value)
    facts.record_write_keys = sorted(set(write_keys))
    facts.record_read_keys = sorted(set(read_keys))


# ----------------------------------------------------------------------
# module-level extraction
# ----------------------------------------------------------------------
def _collect_aliases_with_relative(tree: ast.Module, module: str, is_init: bool) -> dict[str, str]:
    """Alias map like FileContext's, but resolving relative imports
    against the module's own dotted name."""
    aliases: dict[str, str] = {}
    parts = module.split(".") if module else []
    package_parts = parts if is_init else parts[:-1]
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                local = item.asname or item.name.split(".")[0]
                target = item.name if item.asname else item.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                up = package_parts[: len(package_parts) - (node.level - 1)]
                if node.level - 1 > len(package_parts):
                    continue  # beyond the analyzed root — unresolvable
                base = ".".join(up + ([node.module] if node.module else []))
            if not base:
                continue
            for item in node.names:
                if item.name == "*":
                    continue
                aliases[item.asname or item.name] = f"{base}.{item.name}"
    return aliases


_CONTRACT_METHODS = {"suggest", "observe"}


def extract_summary(
    tree: ast.Module,
    path: str,
    module: str,
    package: str,
    is_init: bool,
    suppressions: dict[int, list[str]] | None = None,
) -> FileSummary:
    """Distill one parsed file into its :class:`FileSummary`."""
    summary = FileSummary(
        path=path,
        module=module,
        package=package,
        is_init=is_init,
        suppressions=suppressions or {},
    )
    summary.aliases = _collect_aliases_with_relative(tree, module, is_init)

    attr_loads: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            attr_loads.add(node.attr)
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _CONTRACT_METHODS
        ):
            chain = attribute_chain(node.func.value)
            receiver = ".".join(chain) if chain else ""
            summary.contract_calls.append(
                ContractCall(
                    line=node.lineno,
                    col=node.col_offset + 1,
                    method=node.func.attr,
                    n_pos=sum(
                        1 for a in node.args if not isinstance(a, ast.Starred)
                    ),
                    kwargs=[kw.arg for kw in node.keywords if kw.arg is not None],
                    has_star=any(isinstance(a, ast.Starred) for a in node.args),
                    has_kwstar=any(kw.arg is None for kw in node.keywords),
                    receiver=receiver,
                )
            )
    summary.attr_loads = sorted(attr_loads)

    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            summary.functions.append(
                _extract_function(stmt, summary, module, None)
            )
        elif isinstance(stmt, ast.ClassDef):
            bases = []
            for base in stmt.bases:
                chain = attribute_chain(base)
                if chain:
                    bases.append(".".join(chain))
            cls_facts = ClassFacts(
                name=stmt.name,
                line=stmt.lineno,
                col=stmt.col_offset + 1,
                bases=bases,
            )
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    cls_facts.methods[item.name] = _extract_function(
                        item, summary, module, stmt.name
                    )
            summary.classes.append(cls_facts)
    return summary
