"""True positives for R002: shadow RNG streams."""

import numpy as np


def constant_seed_with_rng_param(x, rng):
    shadow = np.random.default_rng(42)  # finding: ignores provided rng
    return x + shadow.normal() + rng.normal()


def constant_seed_with_seed_param(x, seed=None):
    shadow = np.random.default_rng(1234)  # finding: ignores provided seed
    return x + shadow.normal()


class Model:
    def fit(self, X, seed=None):
        rng = np.random.RandomState(7)  # finding: ignores provided seed
        return rng.rand(len(X))
