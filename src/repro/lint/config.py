"""``[tool.reprolint]`` configuration loading.

Configuration lives in ``pyproject.toml``::

    [tool.reprolint]
    select = ["R001", "R003"]      # default: all registered rules
    ignore = ["R007"]
    exclude = ["examples", "benchmarks", "tests/lint/fixtures"]

    [tool.reprolint.per-path-ignores]
    "tests" = ["R008"]

``exclude`` entries are matched against config-root-relative POSIX paths as
either directory prefixes or ``fnmatch`` globs.  ``per-path-ignores`` maps a
path prefix/glob to rule ids disabled beneath it, so examples/benchmarks can
opt out of strict rules without inline suppression noise.

Python 3.11+ parses the file with stdlib ``tomllib``; on 3.10 a minimal
fallback parser handles the subset of TOML this section uses (string keys,
string values, arrays of strings).  No third-party dependency either way.
"""

from __future__ import annotations

import ast as _ast
import re
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path, PurePosixPath

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - exercised only on Python 3.10
    tomllib = None  # type: ignore[assignment]

_SECTION = "reprolint"


@dataclass
class LintConfig:
    """Resolved linter configuration."""

    #: Rule ids to run; empty means "all registered rules".
    select: list[str] = field(default_factory=list)
    #: Rule ids disabled everywhere.
    ignore: list[str] = field(default_factory=list)
    #: Path prefixes/globs excluded from linting entirely.
    exclude: list[str] = field(default_factory=list)
    #: Path prefix/glob -> rule ids disabled beneath it.
    per_path_ignores: dict[str, list[str]] = field(default_factory=dict)
    #: Directory paths are resolved against (the pyproject.toml directory).
    root: Path = field(default_factory=Path.cwd)

    # ------------------------------------------------------------------
    def _relative(self, path: Path) -> str:
        try:
            rel = path.resolve().relative_to(self.root.resolve())
        except ValueError:
            rel = path
        return PurePosixPath(rel).as_posix()

    @staticmethod
    def _matches(rel: str, pattern: str) -> bool:
        pattern = pattern.rstrip("/")
        return (
            rel == pattern
            or rel.startswith(pattern + "/")
            or fnmatch(rel, pattern)
            or fnmatch(rel, pattern + "/*")
        )

    def is_excluded(self, path: Path) -> bool:
        rel = self._relative(path)
        return any(self._matches(rel, pat) for pat in self.exclude)

    def rules_for(self, path: Path, registered: list[str]) -> list[str]:
        """Effective rule ids for one file after select/ignore/per-path."""
        active = [r for r in registered if not self.select or r in self.select]
        active = [r for r in active if r not in self.ignore]
        rel = self._relative(path)
        for pattern, ignored in self.per_path_ignores.items():
            if self._matches(rel, pattern):
                active = [r for r in active if r not in ignored]
        return active

    def merged_with_cli(
        self, select: list[str] | None, ignore: list[str] | None
    ) -> "LintConfig":
        """CLI --select/--ignore override/extend the file configuration."""
        return LintConfig(
            select=list(select) if select else list(self.select),
            ignore=sorted(set(self.ignore) | set(ignore or [])),
            exclude=list(self.exclude),
            per_path_ignores=dict(self.per_path_ignores),
            root=self.root,
        )


# ----------------------------------------------------------------------
# pyproject parsing
# ----------------------------------------------------------------------
_SECTION_RE = re.compile(r"^\[(?P<name>[^\]]+)\]\s*$")
_KEY_RE = re.compile(r"^(?P<key>[A-Za-z0-9_.\-]+|\"[^\"]+\")\s*=\s*(?P<value>.+)$")


def _parse_toml_minimal(text: str) -> dict[str, object]:
    """Tiny fallback TOML reader for the ``[tool.reprolint]`` subset.

    Handles ``key = value`` lines where the value is a string, an array of
    strings (possibly spanning lines), a number, or a boolean.  Not a
    general TOML parser — just enough for this config section on
    interpreters without ``tomllib``.
    """
    data: dict[str, object] = {}
    current: dict[str, object] = data
    pending_key: str | None = None
    pending_value = ""
    for raw in text.splitlines():
        line = raw.strip()
        if pending_key is not None:
            pending_value += " " + line
            if _balanced(pending_value):
                current[pending_key] = _parse_value(pending_value)
                pending_key = None
                pending_value = ""
            continue
        if not line or line.startswith("#"):
            continue
        section = _SECTION_RE.match(line)
        if section:
            current = data
            for part in _split_section(section.group("name")):
                current = current.setdefault(part, {})  # type: ignore[assignment]
            continue
        kv = _KEY_RE.match(line)
        if not kv:
            continue
        key = kv.group("key").strip('"')
        value = kv.group("value").strip()
        if _balanced(value):
            current[key] = _parse_value(value)
        else:
            pending_key, pending_value = key, value
    return data


def _split_section(name: str) -> list[str]:
    return [part.strip().strip('"') for part in name.split(".")]


def _balanced(value: str) -> bool:
    return value.count("[") == value.count("]")


def _parse_value(value: str) -> object:
    value = value.split("#", 1)[0].strip() if not value.startswith(('"', "'")) else value.strip()
    lowered = value.lower()
    if lowered in {"true", "false"}:
        return lowered == "true"
    try:
        return _ast.literal_eval(value)
    except (ValueError, SyntaxError):
        return value.strip('"')


def _load_toml(path: Path) -> dict[str, object]:
    text = path.read_text(encoding="utf-8")
    if tomllib is not None:
        return tomllib.loads(text)
    return _parse_toml_minimal(text)


def _as_str_list(value: object, what: str) -> list[str]:
    if value is None:
        return []
    if not isinstance(value, list) or not all(isinstance(v, str) for v in value):
        raise ValueError(f"[tool.reprolint] {what} must be an array of strings")
    return list(value)


def find_pyproject(start: Path) -> Path | None:
    """Nearest ``pyproject.toml`` at or above ``start``."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for candidate in [current, *current.parents]:
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def load_config(path: Path | None = None, start: Path | None = None) -> LintConfig:
    """Load configuration from an explicit path or by pyproject discovery.

    Returns a default (empty) config when no pyproject or no
    ``[tool.reprolint]`` section exists.
    """
    pyproject = path if path is not None else find_pyproject(start or Path.cwd())
    if pyproject is None or not Path(pyproject).is_file():
        return LintConfig()
    data = _load_toml(Path(pyproject))
    tool = data.get("tool")
    section = tool.get(_SECTION) if isinstance(tool, dict) else None
    if not isinstance(section, dict):
        return LintConfig(root=Path(pyproject).parent)
    per_path_raw = section.get("per-path-ignores", section.get("per_path_ignores", {}))
    if not isinstance(per_path_raw, dict):
        raise ValueError("[tool.reprolint] per-path-ignores must be a table")
    per_path = {
        str(key): _as_str_list(value, f'per-path-ignores."{key}"')
        for key, value in per_path_raw.items()
    }
    return LintConfig(
        select=_as_str_list(section.get("select"), "select"),
        ignore=_as_str_list(section.get("ignore"), "ignore"),
        exclude=_as_str_list(section.get("exclude"), "exclude"),
        per_path_ignores=per_path,
        root=Path(pyproject).parent,
    )
