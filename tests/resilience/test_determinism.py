"""Determinism through chaos: serial == parallel == kill-and-resume.

The resilience layer must not cost the repository its headline guarantee:
with a seeded transient-failure schedule and guarded retries, histories —
including the retry/backoff accounting (``eval_attempts``) and the
failure taxonomy — must fingerprint identically however the study runs.
"""

import os

import pytest

from repro.dbms.catalog import mysql_knob_space
from repro.dbms.server import MySQLServer
from repro.parallel import (
    ParallelExecutor,
    RegistryOptimizerFactory,
    RunSpec,
    TransientObjective,
    WorkerKiller,
    derive_run_seeds,
    history_fingerprint,
    transient_schedule,
)
from repro.resilience import GuardPolicy
from repro.tuning.objective import DatabaseObjective

N_RUNS = 3
N_ITERATIONS = 5
SEED = 23


def _specs(space):
    seeds = derive_run_seeds(SEED, N_RUNS)
    specs = []
    for run in range(N_RUNS):
        schedule = transient_schedule(SEED + run, n_calls=3 * N_ITERATIONS, rate=0.25)
        objective = TransientObjective(
            DatabaseObjective(MySQLServer("SYSBENCH", "B", seed=seeds[run].server), space),
            fail_calls=schedule,
        )
        specs.append(
            RunSpec(
                run_index=run,
                workload="SYSBENCH",
                space=space,
                n_iterations=N_ITERATIONS,
                n_initial=2,
                optimizer_factory=RegistryOptimizerFactory("random"),
                optimizer_seed=seeds[run].optimizer,
                objective=objective,
                session_seed=seeds[run].session,
                guard=GuardPolicy(max_transient_retries=2, backoff_base_seconds=0.001),
                guard_seed=seeds[run].guard,
            )
        )
    return specs


@pytest.fixture(scope="module")
def space():
    return mysql_knob_space(
        "B",
        knob_names=["innodb_flush_log_at_trx_commit", "innodb_log_file_size"],
        seed=SEED,
    )


@pytest.fixture(scope="module")
def serial_results(space):
    return ParallelExecutor(n_workers=1).run(_specs(space))


def test_schedule_actually_injects_retries(serial_results):
    retried = [
        o for r in serial_results for o in r.history if o.eval_attempts > 1
    ]
    assert retried, "transient schedule produced no retries; test is vacuous"
    exhausted = [o for o in retried if o.failed]
    # Retried-and-recovered observations must be successes with attempts > 1.
    recovered = [o for o in retried if not o.failed]
    assert recovered
    for obs in exhausted:
        assert obs.eval_attempts == 3  # 1 + max_transient_retries


def test_sessions_complete_budget_through_transients(serial_results):
    for result in serial_results:
        assert result.stop_reason == "max_iterations"
        assert result.n_iterations == N_ITERATIONS
        assert not result.failed


def test_parallel_matches_serial(space, serial_results):
    expected = [history_fingerprint(r.history) for r in serial_results]
    parallel = ParallelExecutor(n_workers=2).run(_specs(space))
    assert [history_fingerprint(r.history) for r in parallel] == expected


def test_kill_and_resume_matches_serial(space, serial_results, tmp_path):
    expected = [history_fingerprint(r.history) for r in serial_results]
    checkpoint = str(tmp_path / "checkpoint.jsonl")
    victim = 1
    interrupted = _specs(space)
    interrupted[victim].iteration_hook = WorkerKiller(
        at_iteration=2, arm_dir=str(tmp_path), label="det-kill", once=False
    )
    phase1 = ParallelExecutor(
        n_workers=2, max_retries=0, checkpoint_path=checkpoint
    ).run(interrupted)
    assert phase1[victim].failed
    assert os.path.exists(checkpoint)

    resumed = ParallelExecutor(n_workers=2, checkpoint_path=checkpoint).run(
        _specs(space)
    )
    assert [history_fingerprint(r.history) for r in resumed] == expected
    # Retry accounting round-trips the checkpoint too.
    for fresh, reloaded in zip(serial_results, resumed):
        assert [o.eval_attempts for o in fresh.history] == [
            o.eval_attempts for o in reloaded.history
        ]
        assert [
            None if o.failure_kind is None else o.failure_kind.value
            for o in fresh.history
        ] == [
            None if o.failure_kind is None else o.failure_kind.value
            for o in reloaded.history
        ]


def test_failure_kinds_survive_telemetry_and_result_records(space, serial_results):
    from repro.parallel import result_to_record, record_to_result, telemetry_record

    for result in serial_results:
        record = result_to_record(result)
        back = record_to_result(record, space)
        assert back.failure_kinds == result.failure_kinds
        assert back.stop_reason == result.stop_reason
        tele = telemetry_record(result, event="final")
        assert tele["stop_reason"] == "max_iterations"
        if result.failure_kinds:
            assert tele["failure_kinds"] == result.failure_kinds
