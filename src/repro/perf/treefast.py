"""Tree-ensemble fast-path primitives (perf layer 2b).

Machinery shared by :mod:`repro.ml.tree`, :mod:`repro.ml.forest`, and
:mod:`repro.ml.boosting`:

- **Presorting.**  CART split search needs each node's samples in
  per-feature sorted order.  The naive implementation re-argsorts every
  candidate feature at every node (O(d · n log n) *per node*); the fast
  path sorts once per tree (:func:`full_sort_orders`) and propagates the
  order down via stable partitions.  Ensembles go further:
  :func:`feature_sort_ranks` compresses each feature column into dense
  integer ranks *once per dataset*, after which the sorted order of any
  row subset (a bootstrap resample, a subsample) comes from a radix sort
  of small integers (:func:`subset_sort_orders`) — no float comparisons
  ever repeat across the forest's trees or the GBM's boosting rounds.
- **Packed prediction.**  :class:`PackedTrees` concatenates an
  ensemble's flat node arrays (with child pointers rebased) so one
  batched descent routes *every (tree, sample) pair at once*, instead of
  a Python loop over trees.  The descent itself has two interchangeable
  engines: a tiny C kernel compiled on first use (gathers dominate the
  numpy formulation, and a compiled loop removes that per-element
  overhead entirely), and a vectorized numpy loop over the still-pending
  pairs used whenever no C toolchain is available.  Selection is
  automatic; set ``REPRO_TREEFAST_NATIVE=0`` to force the numpy engine.

Everything here is bit-identical to the scalar reference paths by
construction: stable sort permutations are uniquely determined by the
key order (rank keys induce exactly the value order), and both descent
engines apply the same ``x <= threshold`` double comparisons and
leaf-value gathers as per-tree traversal — IEEE-754 comparison has a
single correct answer, so the engine choice cannot change a routing
decision.  ``tests/ml/test_tree_bit_identity.py`` proves it
byte-for-byte.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from typing import Callable, Sequence

import numpy as np


def full_sort_orders(X: np.ndarray) -> np.ndarray:
    """Per-feature stable argsort of ``X``'s columns, shape ``(d, n)``.

    Row ``f`` equals ``np.argsort(X[:, f], kind="stable")`` — the unique
    permutation sorting by ``(value, row index)``.
    """
    X = np.asarray(X, dtype=float)
    return np.argsort(X.T, axis=1, kind="stable")


def feature_sort_ranks(X: np.ndarray) -> np.ndarray:
    """Dense per-feature value ranks, shape ``(d, n)``, int64.

    ``ranks[f, i] == ranks[f, j]`` iff ``X[i, f] == X[j, f]``, and ranks
    increase with the value.  Computed from one stable float sort per
    feature; afterwards any row subset can be re-sorted with an integer
    (radix) sort — see :func:`subset_sort_orders`.
    """
    X = np.asarray(X, dtype=float)
    n, d = X.shape
    order = np.argsort(X.T, axis=1, kind="stable")
    sorted_vals = np.take_along_axis(X.T, order, axis=1)
    ranks_sorted = np.zeros((d, n), dtype=np.int64)
    if n > 1:
        np.cumsum(sorted_vals[:, 1:] != sorted_vals[:, :-1], axis=1, out=ranks_sorted[:, 1:])
    ranks = np.empty((d, n), dtype=np.int64)
    np.put_along_axis(ranks, order, ranks_sorted, axis=1)
    return ranks


def subset_sort_orders(ranks: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Stable per-feature sort orders for the row subset ``X[rows]``.

    Equal to ``full_sort_orders(X[rows])`` — stable sorting by dense
    rank is stable sorting by value (equal value iff equal rank) — but
    runs on small integers, so numpy uses radix sort and the float
    comparisons done once in :func:`feature_sort_ranks` are never
    repeated.  ``rows`` may contain duplicates (bootstrap resamples).
    """
    return np.argsort(ranks[:, rows], axis=1, kind="stable")


# ----------------------------------------------------------------------
# Native descent kernel
# ----------------------------------------------------------------------

_NATIVE_SRC = """
#include <stdint.h>

/* One sample descends all trees in lockstep.  A single (tree, sample)
 * walk is a chain of dependent loads (node -> feature -> x -> child),
 * so its speed is bound by memory latency; advancing n_trees
 * independent chains per round lets those loads overlap, and the
 * sample's feature row stays hot in L1 across every tree.
 *
 * The round body is branch-free — leaves carry a NaN threshold, for
 * which `x > NaN` is false, and their left "child" loops back to the
 * leaf itself, so finished chains spin harmlessly while the deepest
 * one keeps descending.  `feat_safe` replaces the leaf's -1 feature
 * with 0 (any in-bounds column works: the comparison against NaN
 * ignores the value), and `feat_plus1` is feature+1, making the
 * leaf-detection accumulator a plain integer OR.  `children` is
 * interleaved [left0, right0, left1, right1, ...] so routing is one
 * indexed load at 2*node + (x > threshold). */
void repro_forest_apply(const double *X, int64_t n, int64_t d,
                        const int64_t *feat_safe, const int64_t *feat_plus1,
                        const double *threshold, const int64_t *children,
                        const int64_t *roots, int64_t n_trees, int64_t *out)
{
    int64_t nodes[512];
    int64_t chunk = n_trees < 512 ? n_trees : 512;
    for (int64_t t0 = 0; t0 < n_trees; t0 += chunk) {
        int64_t tn = n_trees - t0 < chunk ? n_trees - t0 : chunk;
        for (int64_t s = 0; s < n; s++) {
            const double *row = X + s * d;
            for (int64_t t = 0; t < tn; t++)
                nodes[t] = roots[t0 + t];
            int64_t alive = 1;
            while (alive) {
                alive = 0;
                for (int64_t t = 0; t < tn; t++) {
                    int64_t node = nodes[t];
                    nodes[t] = children[2 * node + (row[feat_safe[node]] > threshold[node])];
                    alive |= feat_plus1[node];
                }
            }
            for (int64_t t = 0; t < tn; t++)
                out[(t0 + t) * n + s] = nodes[t];
        }
    }
}
"""

#: ``None`` until first use, then the kernel callable or ``False`` when
#: unavailable (disabled, no compiler, or compilation failed).
_NATIVE_KERNEL: Callable[..., None] | bool | None = None


def _compile_native() -> Callable[..., None] | None:
    """Compile and load the descent kernel; ``None`` on any failure.

    The shared object is cached in the system temp directory under a
    hash of the source, so each machine compiles at most once.  Every
    failure mode (no compiler, sandboxed tmp, bad toolchain) degrades to
    the numpy engine — never to an exception.
    """
    digest = hashlib.sha256(_NATIVE_SRC.encode()).hexdigest()[:16]
    cache = os.path.join(tempfile.gettempdir(), f"repro-treefast-{digest}")
    lib_path = os.path.join(cache, "treefast.so")
    if not os.path.exists(lib_path):
        os.makedirs(cache, exist_ok=True)
        src_path = os.path.join(cache, "treefast.c")
        with open(src_path, "w", encoding="utf-8") as fh:
            fh.write(_NATIVE_SRC)
        tmp_path = os.path.join(cache, f"treefast-{os.getpid()}.so")
        for compiler in ("cc", "gcc", "clang"):
            try:
                proc = subprocess.run(
                    [compiler, "-O3", "-shared", "-fPIC", "-o", tmp_path, src_path],
                    capture_output=True,
                    timeout=60,
                )
            except (OSError, subprocess.SubprocessError):
                continue
            if proc.returncode == 0:
                os.replace(tmp_path, lib_path)  # atomic: racing processes agree
                break
        else:
            return None
    lib = ctypes.CDLL(lib_path)
    fn = lib.repro_forest_apply
    fn.restype = None
    fn.argtypes = [
        np.ctypeslib.ndpointer(np.float64, flags="C_CONTIGUOUS"),
        ctypes.c_int64,
        ctypes.c_int64,
        np.ctypeslib.ndpointer(np.int64, flags="C_CONTIGUOUS"),
        np.ctypeslib.ndpointer(np.int64, flags="C_CONTIGUOUS"),
        np.ctypeslib.ndpointer(np.float64, flags="C_CONTIGUOUS"),
        np.ctypeslib.ndpointer(np.int64, flags="C_CONTIGUOUS"),
        np.ctypeslib.ndpointer(np.int64, flags="C_CONTIGUOUS"),
        ctypes.c_int64,
        np.ctypeslib.ndpointer(np.int64, flags="C_CONTIGUOUS"),
    ]
    return fn


def native_kernel() -> Callable[..., None] | None:
    """The compiled descent kernel, or ``None`` when unavailable."""
    global _NATIVE_KERNEL
    if _NATIVE_KERNEL is None:
        if os.environ.get("REPRO_TREEFAST_NATIVE", "1") == "0":
            _NATIVE_KERNEL = False
        else:
            try:
                _NATIVE_KERNEL = _compile_native() or False
            except OSError:
                _NATIVE_KERNEL = False
    return _NATIVE_KERNEL or None


class PackedTrees:
    """Flat concatenation of an ensemble's node arrays for batched descent.

    Child pointers are rebased onto the concatenated layout; leaves keep
    the ``-1`` sentinel.  :meth:`apply` descends all ``(tree, sample)``
    pairs in one call — through the native kernel when available,
    otherwise through a numpy loop that each round advances only the
    pairs still on internal nodes (flat ``take`` gathers; finished pairs
    are compacted away, so total work is the sum of path lengths).  No
    Python-level per-tree loop remains either way.
    """

    def __init__(self, trees: Sequence[object]) -> None:
        sizes = [tree.n_nodes for tree in trees]
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        self.n_trees = len(sizes)
        self.roots = np.ascontiguousarray(offsets[:-1], dtype=np.int64)
        self.feature = np.ascontiguousarray(
            np.concatenate([tree.feature for tree in trees]), dtype=np.int64
        )
        self.threshold = np.ascontiguousarray(
            np.concatenate([tree.threshold for tree in trees]), dtype=np.float64
        )
        self.value = np.ascontiguousarray(
            np.concatenate([tree.value for tree in trees]), dtype=np.float64
        )
        self.left = np.ascontiguousarray(
            np.concatenate(
                [np.where(t.left >= 0, t.left + off, -1) for t, off in zip(trees, offsets)]
            ),
            dtype=np.int64,
        )
        self.right = np.ascontiguousarray(
            np.concatenate(
                [np.where(t.right >= 0, t.right + off, -1) for t, off in zip(trees, offsets)]
            ),
            dtype=np.int64,
        )
        # Shared engine scratch (see the kernel comment): leaf-safe
        # feature column, feature+1 for the branch-free leaf check,
        # leaf thresholds pinned to NaN, and interleaved self-looping
        # children so routing is one gather at 2*node + go_right.
        self._internal = self.feature >= 0
        self._feat_safe = np.maximum(self.feature, 0)
        self._feat_plus1 = self.feature + 1
        self._thr_nan = np.ascontiguousarray(
            np.where(self._internal, self.threshold, np.nan), dtype=np.float64
        )
        self._children = np.empty(2 * len(self.feature), dtype=np.int64)
        self._children[0::2] = np.where(self.left >= 0, self.left, np.arange(len(self.feature)))
        self._children[1::2] = np.where(self.right >= 0, self.right, np.arange(len(self.feature)))

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf node ids (into the packed arrays), shape ``(n_trees, n)``."""
        X = np.ascontiguousarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        n, d = X.shape
        kernel = native_kernel()
        if kernel is not None:
            out = np.empty((self.n_trees, n), dtype=np.int64)
            kernel(
                X,
                n,
                d,
                self._feat_safe,
                self._feat_plus1,
                self._thr_nan,
                self._children,
                self.roots,
                self.n_trees,
                out,
            )
            return out
        return self._apply_numpy(X)

    def _apply_numpy(self, X: np.ndarray) -> np.ndarray:
        """Batched descent over still-pending pairs (portable engine)."""
        n, d = X.shape
        flat = X.ravel()
        out = np.empty(self.n_trees * n, dtype=np.int64)
        cur = np.repeat(self.roots, n)
        # Row base of each pair's sample in the flattened X; the split
        # value gather is then flat[base + feature].
        base = np.tile(np.arange(n, dtype=np.int64) * d, self.n_trees)
        pos = np.arange(self.n_trees * n)
        live = self._internal.take(cur)
        if not live.all():  # single-leaf trees resolve immediately
            out[pos[~live]] = cur[~live]
            cur, base, pos = cur[live], base[live], pos[live]
        while cur.size:
            xv = flat.take(base + self._feat_safe.take(cur))
            go_right = xv > self.threshold.take(cur)
            nxt = self._children.take(2 * cur + go_right)
            live = self._internal.take(nxt)
            done = ~live
            out[pos[done]] = nxt[done]
            cur, base, pos = nxt[live], base[live], pos[live]
        return out.reshape(self.n_trees, n)

    def values(self, X: np.ndarray) -> np.ndarray:
        """Per-tree leaf values, shape ``(n_trees, n)`` — one descent."""
        return self.value[self.apply(X)]
