"""Tests for Latin Hypercube and quasi-random designs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.space.sampling import (
    LatinHypercubeSampler,
    latin_hypercube,
    scrambled_sobol_like,
)


class TestLatinHypercube:
    def test_shape_and_range(self):
        design = latin_hypercube(20, 5, np.random.default_rng(0))
        assert design.shape == (20, 5)
        assert (design >= 0).all() and (design < 1).all()

    @given(st.integers(min_value=1, max_value=64), st.integers(min_value=1, max_value=10))
    @settings(max_examples=30, deadline=None)
    def test_stratification_property(self, n, d):
        """Each of the n strata per dimension contains exactly one point."""
        design = latin_hypercube(n, d, np.random.default_rng(3))
        for j in range(d):
            strata = np.floor(design[:, j] * n).astype(int)
            assert sorted(strata) == list(range(n))

    def test_invalid_args(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            latin_hypercube(0, 3, rng)
        with pytest.raises(ValueError):
            latin_hypercube(3, 0, rng)

    def test_seeded_reproducibility(self):
        a = latin_hypercube(10, 4, np.random.default_rng(42))
        b = latin_hypercube(10, 4, np.random.default_rng(42))
        np.testing.assert_array_equal(a, b)


class TestSobolLike:
    def test_shape_and_range(self):
        design = scrambled_sobol_like(100, 7, np.random.default_rng(1))
        assert design.shape == (100, 7)
        assert (design >= 0).all() and (design < 1).all()

    def test_low_discrepancy_beats_iid_worst_gap(self):
        """1-D projections should have smaller maximum gaps than typical."""
        rng = np.random.default_rng(0)
        design = scrambled_sobol_like(256, 1, rng).ravel()
        gaps = np.diff(np.sort(design))
        assert gaps.max() < 0.05  # iid uniform would typically exceed this

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            scrambled_sobol_like(0, 1, np.random.default_rng(0))


class TestLHSSampler:
    def test_produces_valid_configurations(self, tiny_space):
        sampler = LatinHypercubeSampler(tiny_space, seed=0)
        configs = sampler.sample(16)
        assert len(configs) == 16
        assert all(tiny_space.validate(c) for c in configs)

    def test_numeric_dimension_coverage(self, tiny_space):
        sampler = LatinHypercubeSampler(tiny_space, seed=0)
        configs = sampler.sample(64)
        xs = sorted(c["x"] for c in configs)
        # stratified: both tails are reached
        assert xs[0] < 0.05 and xs[-1] > 0.95
