"""The default-on acceleration layer must leave BO suggestion sequences
byte-for-byte unchanged; the opt-in layer must still converge."""

import numpy as np
import pytest

from repro.optimizers.base import History, Observation
from repro.optimizers.bo import MixedKernelBO, VanillaBO
from repro.space import ConfigurationSpace
from repro.space.parameter import CategoricalKnob, ContinuousKnob, IntegerKnob


def _space():
    return ConfigurationSpace(
        [
            ContinuousKnob("a", 0.0, 1.0, 0.5),
            ContinuousKnob("b", 1e-2, 1e2, 1.0, log=True),
            IntegerKnob("c", 0, 100, 10),
            IntegerKnob("d", 1, 4096, 64, log=True),
            CategoricalKnob("e", ["x", "y", "z"], "x"),
        ]
    )


def _score(space, config):
    x = space.encode(config)
    return -float(np.sum((x - 0.4) ** 2))


def _run(optimizer_cls, space, n_iters, seed, **options):
    """Drive a BO loop on the fixed quadratic; return encoded suggestions
    and the history."""
    optimizer = optimizer_cls(space, seed=seed, **options)
    history = History(space)
    rng = np.random.default_rng(seed + 1)
    for config in space.sample_configurations(3, rng):
        score = _score(space, config)
        history.append(Observation(config=config, objective=score, score=score))
    encoded = []
    for _ in range(n_iters):
        config = optimizer.suggest(history)
        encoded.append(space.encode(config))
        score = _score(space, config)
        history.append(Observation(config=config, objective=score, score=score))
    return np.vstack(encoded), history


@pytest.mark.parametrize("optimizer_cls", [VanillaBO, MixedKernelBO])
def test_accelerated_suggestions_bit_identical(optimizer_cls):
    space = _space()
    fast, _ = _run(optimizer_cls, space, n_iters=8, seed=7, accelerated=True)
    slow, _ = _run(optimizer_cls, space, n_iters=8, seed=7, accelerated=False)
    assert fast.tobytes() == slow.tobytes()


def test_full_refit_matches_legacy_schedule():
    """``full_refit=True`` (the Figure 9 carve-out) must reproduce the
    default schedule exactly, even when opt-in flags are also passed."""
    space = _space()
    legacy, _ = _run(VanillaBO, space, n_iters=6, seed=3)
    forced, _ = _run(
        VanillaBO, space, n_iters=6, seed=3, full_refit=True, incremental=True, refit_every=5
    )
    assert legacy.tobytes() == forced.tobytes()


def test_full_refit_overrides_opt_in_flags():
    optimizer = VanillaBO(_space(), seed=0, full_refit=True, incremental=True, refit_every=7)
    assert optimizer.incremental is False
    assert optimizer.refit_every == 1
    assert optimizer.full_refit is True


def test_refit_every_validation():
    with pytest.raises(ValueError, match="refit_every"):
        VanillaBO(_space(), seed=0, refit_every=0)


def test_warm_start_schedule_converges_to_same_optimum():
    """On the fixed-seed quadratic, the incremental/warm-start schedule
    must find the same neighborhood of the optimum as the full refit."""
    space = _space()
    _, hist_full = _run(VanillaBO, space, n_iters=20, seed=11)
    _, hist_warm = _run(
        VanillaBO, space, n_iters=20, seed=11, incremental=True, refit_every=5
    )
    best_full = max(o.score for o in hist_full.successful())
    best_warm = max(o.score for o in hist_warm.successful())
    # Both schedules improve substantially over the three random seeds...
    init_best = max(o.score for o in list(hist_full)[:3])
    assert best_full > init_best
    assert best_warm > init_best
    # ...and land in the same neighborhood of the optimum (score 0 at 0.4).
    assert abs(best_full - best_warm) < 0.05
    assert best_warm > -0.2


def test_incremental_schedule_actually_augments():
    """Between full refits, a history that grew by one row must take the
    O(n^2) augment path (the GP object is reused, not rebuilt)."""
    space = _space()
    optimizer = VanillaBO(space, seed=5, incremental=True, refit_every=10)
    history = History(space)
    rng = np.random.default_rng(6)
    for config in space.sample_configurations(3, rng):
        score = _score(space, config)
        history.append(Observation(config=config, objective=score, score=score))
    config = optimizer.suggest(history)  # first model build: full refit
    gp_first = optimizer._gp
    assert gp_first is not None
    score = _score(space, config)
    history.append(Observation(config=config, objective=score, score=score))
    optimizer.suggest(history)  # second build: history grew by one -> augment
    assert optimizer._gp is gp_first
    assert len(optimizer._gp._X) == len(history.successful())
