"""Covariance kernels for Gaussian-process surrogates.

Vanilla BO (OtterTune-style) uses an RBF kernel over the unit-encoded
configuration.  Mixed-kernel BO (paper §3.2) uses the product of a
Matérn-5/2 kernel on continuous dimensions and a Hamming kernel on
categorical dimensions, which models categorical knobs without imposing a
spurious ordering.

Every kernel exposes a log-space hyperparameter vector (``theta``) with
box bounds so the GP can maximize marginal likelihood over it.

``__call__`` optionally accepts a :class:`~repro.perf.cache.KernelCache`;
stationary kernels use it to reuse their theta-independent pairwise
structures (squared distances, Hamming mismatch counts) across the many
likelihood evaluations of one hyperparameter fit.  Passing a cache never
changes the produced matrix — the cached array is built by the same
routine the uncached call runs.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.perf.cache import KernelCache

_LOG_BOUND = (math.log(1e-3), math.log(1e3))


def _sq_dists(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    d2 = (
        np.sum(A**2, axis=1)[:, None]
        - 2.0 * A @ B.T
        + np.sum(B**2, axis=1)[None, :]
    )
    return np.maximum(d2, 0.0)


def _select(X: np.ndarray, dims: np.ndarray | None) -> np.ndarray:
    X = np.atleast_2d(np.asarray(X, dtype=float))
    return X if dims is None else X[:, dims]


class Kernel:
    """Base covariance function.

    ``cache`` is an optional :class:`KernelCache` whose lifetime must not
    exceed that of the operand arrays (entries are keyed by operand
    identity); kernels store only theta-independent intermediates in it.
    """

    def __call__(
        self, A: np.ndarray, B: np.ndarray, cache: KernelCache | None = None
    ) -> np.ndarray:
        raise NotImplementedError

    def _cached(
        self,
        cache: KernelCache | None,
        role: str,
        A: np.ndarray,
        B: np.ndarray,
        builder,
    ):
        """Memoize a theta-independent pairwise structure for ``(A, B)``."""
        if cache is None:
            return builder()
        key = (id(self), role, id(A), id(B), np.shape(A), np.shape(B))
        return cache.get(key, builder)

    def diag(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return np.diag(self(X, X)).copy()

    # --- hyperparameter protocol (log-space) ---
    @property
    def theta(self) -> np.ndarray:
        return np.array([])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        if len(np.asarray(value).ravel()) != 0:
            raise ValueError("kernel has no hyperparameters")

    @property
    def bounds(self) -> list[tuple[float, float]]:
        return []

    def __mul__(self, other: "Kernel") -> "ProductKernel":
        return ProductKernel(self, other)

    def __add__(self, other: "Kernel") -> "SumKernel":
        return SumKernel(self, other)


class ConstantKernel(Kernel):
    """Signal-variance scaling: ``k(x, x') = variance``."""

    def __init__(self, variance: float = 1.0) -> None:
        if variance <= 0:
            raise ValueError("variance must be > 0")
        self.variance = variance

    def __call__(
        self, A: np.ndarray, B: np.ndarray, cache: KernelCache | None = None
    ) -> np.ndarray:
        A = np.atleast_2d(A)
        B = np.atleast_2d(B)
        return np.full((len(A), len(B)), self.variance)

    @property
    def theta(self) -> np.ndarray:
        return np.array([math.log(self.variance)])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        self.variance = float(np.exp(np.asarray(value).ravel()[0]))

    @property
    def bounds(self) -> list[tuple[float, float]]:
        return [_LOG_BOUND]


class WhiteKernel(Kernel):
    """Observation-noise kernel: adds ``noise`` on the diagonal only."""

    def __init__(self, noise: float = 1e-6) -> None:
        if noise <= 0:
            raise ValueError("noise must be > 0")
        self.noise = noise

    def __call__(
        self, A: np.ndarray, B: np.ndarray, cache: KernelCache | None = None
    ) -> np.ndarray:
        A = np.atleast_2d(A)
        B = np.atleast_2d(B)
        if A is B or (A.shape == B.shape and np.array_equal(A, B)):
            return self.noise * np.eye(len(A))
        return np.zeros((len(A), len(B)))

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.full(len(np.atleast_2d(X)), self.noise)

    @property
    def theta(self) -> np.ndarray:
        return np.array([math.log(self.noise)])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        self.noise = float(np.exp(np.asarray(value).ravel()[0]))

    @property
    def bounds(self) -> list[tuple[float, float]]:
        return [(math.log(1e-8), math.log(1e-1))]


class RBFKernel(Kernel):
    """Isotropic squared-exponential kernel over selected dimensions."""

    def __init__(self, lengthscale: float = 0.5, dims: Sequence[int] | None = None) -> None:
        if lengthscale <= 0:
            raise ValueError("lengthscale must be > 0")
        self.lengthscale = lengthscale
        self.dims = None if dims is None else np.asarray(dims, dtype=int)

    def __call__(
        self, A: np.ndarray, B: np.ndarray, cache: KernelCache | None = None
    ) -> np.ndarray:
        d2 = self._cached(
            cache,
            "sq_dists",
            A,
            B,
            lambda: _sq_dists(_select(A, self.dims), _select(B, self.dims)),
        )
        return np.exp(-0.5 * d2 / self.lengthscale**2)

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.ones(len(np.atleast_2d(X)))

    @property
    def theta(self) -> np.ndarray:
        return np.array([math.log(self.lengthscale)])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        self.lengthscale = float(np.exp(np.asarray(value).ravel()[0]))

    @property
    def bounds(self) -> list[tuple[float, float]]:
        return [(math.log(1e-2), math.log(1e2))]


class Matern52Kernel(Kernel):
    """Matérn nu=5/2 kernel: twice-differentiable, less smooth than RBF."""

    def __init__(self, lengthscale: float = 0.5, dims: Sequence[int] | None = None) -> None:
        if lengthscale <= 0:
            raise ValueError("lengthscale must be > 0")
        self.lengthscale = lengthscale
        self.dims = None if dims is None else np.asarray(dims, dtype=int)

    def __call__(
        self, A: np.ndarray, B: np.ndarray, cache: KernelCache | None = None
    ) -> np.ndarray:
        dists = self._cached(
            cache,
            "dists",
            A,
            B,
            lambda: np.sqrt(_sq_dists(_select(A, self.dims), _select(B, self.dims))),
        )
        r = dists / self.lengthscale
        sqrt5_r = math.sqrt(5.0) * r
        return (1.0 + sqrt5_r + 5.0 * r**2 / 3.0) * np.exp(-sqrt5_r)

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.ones(len(np.atleast_2d(X)))

    @property
    def theta(self) -> np.ndarray:
        return np.array([math.log(self.lengthscale)])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        self.lengthscale = float(np.exp(np.asarray(value).ravel()[0]))

    @property
    def bounds(self) -> list[tuple[float, float]]:
        return [(math.log(1e-2), math.log(1e2))]


class HammingKernel(Kernel):
    """Exponentiated negative Hamming distance over categorical dimensions.

    Inputs are the unit encodings of categorical knobs; two values count as
    different whenever their unit positions differ (unit encoding is
    injective per choice, so this equals the native Hamming distance).
    """

    def __init__(self, lengthscale: float = 1.0, dims: Sequence[int] | None = None) -> None:
        if lengthscale <= 0:
            raise ValueError("lengthscale must be > 0")
        self.lengthscale = lengthscale
        self.dims = None if dims is None else np.asarray(dims, dtype=int)

    def __call__(
        self, A: np.ndarray, B: np.ndarray, cache: KernelCache | None = None
    ) -> np.ndarray:
        def mismatches() -> np.ndarray:
            As = _select(A, self.dims)
            Bs = _select(B, self.dims)
            return (np.abs(As[:, None, :] - Bs[None, :, :]) > 1e-12).sum(axis=2)

        diff = self._cached(cache, "hamming", A, B, mismatches)
        return np.exp(-diff / self.lengthscale)

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.ones(len(np.atleast_2d(X)))

    @property
    def theta(self) -> np.ndarray:
        return np.array([math.log(self.lengthscale)])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        self.lengthscale = float(np.exp(np.asarray(value).ravel()[0]))

    @property
    def bounds(self) -> list[tuple[float, float]]:
        return [(math.log(1e-1), math.log(1e2))]


class _Composite(Kernel):
    def __init__(self, left: Kernel, right: Kernel) -> None:
        self.left = left
        self.right = right

    @property
    def theta(self) -> np.ndarray:
        return np.concatenate([self.left.theta, self.right.theta])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        value = np.asarray(value).ravel()
        n_left = len(self.left.theta)
        self.left.theta = value[:n_left]
        self.right.theta = value[n_left:]

    @property
    def bounds(self) -> list[tuple[float, float]]:
        return self.left.bounds + self.right.bounds


class ProductKernel(_Composite):
    """Pointwise product of two kernels."""

    def __call__(
        self, A: np.ndarray, B: np.ndarray, cache: KernelCache | None = None
    ) -> np.ndarray:
        return self.left(A, B, cache) * self.right(A, B, cache)

    def diag(self, X: np.ndarray) -> np.ndarray:
        return self.left.diag(X) * self.right.diag(X)


class SumKernel(_Composite):
    """Pointwise sum of two kernels."""

    def __call__(
        self, A: np.ndarray, B: np.ndarray, cache: KernelCache | None = None
    ) -> np.ndarray:
        return self.left(A, B, cache) + self.right(A, B, cache)

    def diag(self, X: np.ndarray) -> np.ndarray:
        return self.left.diag(X) + self.right.diag(X)


class MixedKernel(Kernel):
    """Matérn-5/2 on continuous dims × Hamming on categorical dims.

    The kernel of mixed-kernel BO (paper §3.2): when either dimension set is
    empty, it degrades gracefully to the other factor alone.
    """

    def __init__(
        self,
        continuous_dims: Sequence[int],
        categorical_dims: Sequence[int],
        continuous_lengthscale: float = 0.5,
        categorical_lengthscale: float = 1.0,
    ) -> None:
        self.continuous_dims = np.asarray(continuous_dims, dtype=int)
        self.categorical_dims = np.asarray(categorical_dims, dtype=int)
        if len(self.continuous_dims) == 0 and len(self.categorical_dims) == 0:
            raise ValueError("at least one dimension set must be non-empty")
        self._matern = Matern52Kernel(continuous_lengthscale, dims=self.continuous_dims)
        self._hamming = HammingKernel(categorical_lengthscale, dims=self.categorical_dims)

    def __call__(
        self, A: np.ndarray, B: np.ndarray, cache: KernelCache | None = None
    ) -> np.ndarray:
        if len(self.continuous_dims) == 0:
            return self._hamming(A, B, cache)
        if len(self.categorical_dims) == 0:
            return self._matern(A, B, cache)
        return self._matern(A, B, cache) * self._hamming(A, B, cache)

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.ones(len(np.atleast_2d(X)))

    @property
    def theta(self) -> np.ndarray:
        parts = []
        if len(self.continuous_dims) > 0:
            parts.append(self._matern.theta)
        if len(self.categorical_dims) > 0:
            parts.append(self._hamming.theta)
        return np.concatenate(parts)

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        value = np.asarray(value).ravel()
        i = 0
        if len(self.continuous_dims) > 0:
            self._matern.theta = value[i : i + 1]
            i += 1
        if len(self.categorical_dims) > 0:
            self._hamming.theta = value[i : i + 1]

    @property
    def bounds(self) -> list[tuple[float, float]]:
        out: list[tuple[float, float]] = []
        if len(self.continuous_dims) > 0:
            out.extend(self._matern.bounds)
        if len(self.categorical_dims) > 0:
            out.extend(self._hamming.bounds)
        return out
