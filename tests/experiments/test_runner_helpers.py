"""Tests for the experiment runner helpers."""

import numpy as np
import pytest

from repro.dbms.catalog import mysql_knob_space
from repro.experiments.runner import (
    median_best_score,
    median_improvement,
    run_sessions,
)
from repro.optimizers import RandomSearch
from repro.optimizers.base import History, Observation


@pytest.fixture(scope="module")
def small_space():
    return mysql_knob_space(
        "B",
        knob_names=["innodb_flush_log_at_trx_commit", "innodb_log_file_size"],
        seed=0,
    )


class TestRunSessions:
    def test_runs_independent_sessions(self, small_space):
        histories = run_sessions(
            "Voter",
            small_space,
            lambda s, sd: RandomSearch(s, seed=sd),
            n_runs=2,
            n_iterations=6,
            n_initial=0,
            seed=1,
        )
        assert len(histories) == 2
        assert all(len(h) == 6 for h in histories)
        # different seeds -> different evaluation noise -> different scores
        assert histories[0].scores().tolist() != histories[1].scores().tolist()

    def test_median_improvement_positive_for_tunable_workload(self, small_space):
        histories = run_sessions(
            "SYSBENCH",
            small_space,
            lambda s, sd: RandomSearch(s, seed=sd),
            n_runs=1,
            n_iterations=25,
            n_initial=0,
            seed=2,
        )
        improvement = median_improvement(histories, "SYSBENCH")
        assert improvement > 0.0

    def test_median_improvement_latency_direction(self, small_space):
        histories = run_sessions(
            "JOB",
            small_space,
            lambda s, sd: RandomSearch(s, seed=sd),
            n_runs=1,
            n_iterations=10,
            n_initial=0,
            seed=2,
        )
        improvement = median_improvement(histories, "JOB")
        assert np.isfinite(improvement)

    def test_median_best_score_handles_empty(self, small_space):
        empty = History(small_space)
        assert median_best_score([empty]) == float("-inf")

    def test_median_best_score(self, small_space):
        histories = []
        for value in (1.0, 5.0, 3.0):
            h = History(small_space)
            h.append(
                Observation(
                    config=small_space.default_configuration(),
                    objective=value,
                    score=value,
                )
            )
            histories.append(h)
        assert median_best_score(histories) == 3.0
