"""Text and JSON reporters for lint results."""

from __future__ import annotations

import json
from typing import Iterable

from repro.lint.engine import FileReport
from repro.lint.findings import Finding

#: Schema version of the JSON report (bump on breaking field changes).
JSON_SCHEMA_VERSION = 1


def _all_findings(reports: Iterable[FileReport]) -> list[Finding]:
    findings = [f for report in reports for f in report.findings]
    findings.sort(key=Finding.sort_key)
    return findings


def render_text(reports: list[FileReport]) -> str:
    """Human-readable report: one ``path:line:col: RULE message`` per line
    plus a summary footer."""
    findings = _all_findings(reports)
    n_suppressed = sum(len(r.suppressed) for r in reports)
    lines = [
        f"{f.path}:{f.line}:{f.col}: {f.rule} {f.message}" for f in findings
    ]
    if findings:
        noun = "finding" if len(findings) == 1 else "findings"
        lines.append("")
        lines.append(
            f"Found {len(findings)} {noun} in {len(reports)} files checked "
            f"({n_suppressed} suppressed)."
        )
    else:
        lines.append(
            f"Clean: {len(reports)} files checked, 0 findings "
            f"({n_suppressed} suppressed)."
        )
    return "\n".join(lines)


def render_json(reports: list[FileReport]) -> str:
    """Machine-readable report with a stable schema.

    Top-level keys: ``version``, ``files_checked``, ``counts`` (total,
    suppressed, per-rule breakdown), ``findings`` (list of objects with
    ``rule``/``path``/``line``/``col``/``message``).
    """
    findings = _all_findings(reports)
    per_rule: dict[str, int] = {}
    for finding in findings:
        per_rule[finding.rule] = per_rule.get(finding.rule, 0) + 1
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": len(reports),
        "counts": {
            "total": len(findings),
            "suppressed": sum(len(r.suppressed) for r in reports),
            "by_rule": dict(sorted(per_rule.items())),
        },
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=False)


REPORTERS = {
    "text": render_text,
    "json": render_json,
}
