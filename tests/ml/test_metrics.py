"""Tests for regression and ranking metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.metrics import (
    intersection_over_union,
    kendall_tau,
    mean_absolute_error,
    mean_squared_error,
    r2_score,
    root_mean_squared_error,
    spearman_rho,
)


class TestRegressionMetrics:
    def test_perfect_prediction(self):
        y = np.array([1.0, 2.0, 3.0])
        assert mean_squared_error(y, y) == 0.0
        assert r2_score(y, y) == 1.0
        assert mean_absolute_error(y, y) == 0.0

    def test_r2_of_mean_predictor_is_zero(self):
        y = np.array([1.0, 2.0, 3.0, 4.0])
        pred = np.full(4, y.mean())
        assert r2_score(y, pred) == pytest.approx(0.0)

    def test_r2_can_be_negative(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, -y) < 0

    def test_rmse_is_sqrt_mse(self):
        y = np.array([0.0, 0.0])
        p = np.array([3.0, 4.0])
        assert root_mean_squared_error(y, p) == pytest.approx(np.sqrt(12.5))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            mean_squared_error([1, 2], [1, 2, 3])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            r2_score([], [])

    def test_constant_target(self):
        y = np.ones(5)
        assert r2_score(y, y) == 1.0
        assert r2_score(y, y + 1) == 0.0

    @given(st.lists(st.floats(-1e3, 1e3), min_size=2, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_mse_nonnegative(self, values):
        y = np.array(values)
        pred = y[::-1].copy()
        assert mean_squared_error(y, pred) >= 0.0


class TestRankMetrics:
    def test_spearman_perfect(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert spearman_rho(a, 10 * a) == pytest.approx(1.0)
        assert spearman_rho(a, -a) == pytest.approx(-1.0)

    def test_spearman_constant_input(self):
        assert spearman_rho(np.ones(4), np.arange(4)) == 0.0

    def test_spearman_handles_ties(self):
        a = np.array([1.0, 1.0, 2.0])
        b = np.array([1.0, 1.0, 3.0])
        assert spearman_rho(a, b) == pytest.approx(1.0)

    def test_kendall_perfect_and_reversed(self):
        a = np.arange(6).astype(float)
        assert kendall_tau(a, a) == pytest.approx(1.0)
        assert kendall_tau(a, -a) == pytest.approx(-1.0)

    def test_kendall_short_input(self):
        assert kendall_tau([1.0], [2.0]) == 0.0

    @given(st.lists(st.floats(-100, 100), min_size=3, max_size=20, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_kendall_antisymmetry(self, values):
        a = np.array(values)
        b = np.arange(len(values)).astype(float)
        assert kendall_tau(a, b) == pytest.approx(-kendall_tau(-a, b))


class TestIoU:
    def test_identical(self):
        assert intersection_over_union({1, 2}, {1, 2}) == 1.0

    def test_disjoint(self):
        assert intersection_over_union({1}, {2}) == 0.0

    def test_partial(self):
        assert intersection_over_union({1, 2, 3}, {2, 3, 4}) == pytest.approx(0.5)

    def test_both_empty(self):
        assert intersection_over_union(set(), set()) == 1.0
