"""Focused tests for the Lasso measurement's design-matrix machinery."""

import numpy as np
import pytest

from repro.selection.lasso import LassoImportance
from repro.space import (
    CategoricalKnob,
    ConfigurationSpace,
    ContinuousKnob,
)


@pytest.fixture
def small_space():
    return ConfigurationSpace(
        [
            ContinuousKnob("a", 0.0, 1.0, 0.5),
            ContinuousKnob("b", 0.0, 1.0, 0.5),
            CategoricalKnob("c", ["x", "y"], "x"),
        ],
        seed=0,
    )


class TestDesignMatrix:
    def test_quadratic_expansion_below_limit(self, small_space):
        m = LassoImportance(small_space, seed=0, max_quadratic_dims=40)
        configs = small_space.sample_configurations(10)
        X, __ = m._design_matrix(configs)
        # one-hot = a, b, c=x, c=y -> 4 linear + C(4+1,2)=10 quadratic
        assert X.shape == (10, 14)

    def test_linear_plus_squares_above_limit(self, small_space):
        m = LassoImportance(small_space, seed=0, max_quadratic_dims=2)
        configs = small_space.sample_configurations(10)
        X, __ = m._design_matrix(configs)
        assert X.shape == (10, 8)  # 4 one-hot + 4 squared

    def test_combos_credit_all_owner_knobs(self, small_space):
        m = LassoImportance(small_space, seed=0)
        m._design_matrix(small_space.sample_configurations(4))
        owners = set()
        for combo in m._combos:
            owners.update(combo)
        assert owners == {0, 1, 2}


class TestRankingBehaviour:
    def test_linear_effect_detected(self, small_space):
        rng = np.random.default_rng(0)
        configs = small_space.sample_configurations(200, rng)
        scores = np.array([10.0 * c["a"] + rng.normal(0, 0.05) for c in configs])
        m = LassoImportance(small_space, seed=0)
        result = m.rank(configs, scores)
        assert result.ranked()[0] == "a"

    def test_categorical_effect_detected(self, small_space):
        rng = np.random.default_rng(1)
        configs = small_space.sample_configurations(200, rng)
        scores = np.array(
            [(5.0 if c["c"] == "y" else 0.0) + rng.normal(0, 0.05) for c in configs]
        )
        m = LassoImportance(small_space, seed=0)
        result = m.rank(configs, scores)
        assert result.ranked()[0] == "c"

    def test_quadratic_interaction_credits_both_knobs(self, small_space):
        rng = np.random.default_rng(2)
        configs = small_space.sample_configurations(300, rng)
        scores = np.array(
            [8.0 * c["a"] * c["b"] + rng.normal(0, 0.05) for c in configs]
        )
        m = LassoImportance(small_space, seed=0)
        result = m.rank(configs, scores)
        assert set(result.top(2)) == {"a", "b"}

    def test_constant_scores_yield_zero_importance(self, small_space):
        configs = small_space.sample_configurations(50)
        scores = np.ones(50)
        m = LassoImportance(small_space, seed=0)
        result = m.rank(configs, scores)
        assert all(np.isfinite(v) for v in result.knob_scores.values())
