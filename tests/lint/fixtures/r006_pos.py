"""True positives for R006: swallowed exceptions."""


def bare_except(fn):
    try:
        return fn()
    except:  # finding: bare except
        return None


def swallow_exception(fn):
    try:
        return fn()
    except Exception:  # finding: silent pass
        pass


def swallow_base_exception(fn):
    try:
        return fn()
    except BaseException:  # finding: silent ellipsis
        ...


def swallow_tuple(fn):
    try:
        return fn()
    except (ValueError, Exception):  # finding: Exception in tuple, noop body
        pass
