"""Tests for the MySQL knob catalog."""

import pytest

from repro.dbms.catalog import KNOB_CATALOG, MODELED_KNOBS, catalog_size, mysql_knob_space
from repro.dbms.instances import INSTANCES


class TestCatalog:
    def test_exactly_197_knobs(self):
        assert catalog_size() == 197

    def test_no_duplicate_names(self):
        names = [spec[1] for spec in KNOB_CATALOG]
        assert len(names) == len(set(names))

    def test_modeled_knobs_exist_in_catalog(self):
        names = {spec[1] for spec in KNOB_CATALOG}
        missing = MODELED_KNOBS - names
        assert not missing

    def test_space_dims_and_validity(self, mysql_space):
        assert mysql_space.n_dims == 197
        default = mysql_space.default_configuration()
        assert mysql_space.validate(default)

    def test_buffer_pool_default_is_60_percent_of_ram(self):
        for letter, instance in INSTANCES.items():
            space = mysql_knob_space(letter)
            bp = space["innodb_buffer_pool_size"].default
            assert bp == pytest.approx(0.6 * instance.ram_bytes, rel=1e-6)

    def test_key_mysql_defaults(self, mysql_space):
        default = mysql_space.default_configuration()
        assert default["innodb_flush_log_at_trx_commit"] == "1"
        # sync_binlog follows the pre-5.7.7 MySQL default (0) so that the
        # redo flush mode is the single durability knob (see DESIGN.md).
        assert default["sync_binlog"] == 0
        assert default["max_connections"] == 151
        assert default["innodb_doublewrite"] == "ON"
        assert default["query_cache_type"] == "OFF"
        assert default["innodb_log_file_size"] == 48 * 1024**2

    def test_subspace_selection(self):
        space = mysql_knob_space("B", knob_names=["sync_binlog", "innodb_io_capacity"])
        assert space.names == ["sync_binlog", "innodb_io_capacity"]

    def test_heterogeneity_present(self, mysql_space):
        n_cat = int(mysql_space.categorical_mask.sum())
        assert 40 <= n_cat <= 80  # a substantial categorical fraction

    def test_instance_lookup_by_object(self):
        space = mysql_knob_space(INSTANCES["D"])
        assert space["innodb_buffer_pool_size"].default == pytest.approx(
            0.6 * INSTANCES["D"].ram_bytes, rel=1e-6
        )
