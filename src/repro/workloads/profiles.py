"""Workload profiles reproducing the paper's Table 4.

The first four fields of every profile (class, size, tables, read-only
fraction) are the paper's reported values.  The remaining fields
parameterize the simulated response surface:

- ``point_read_frac`` / ``range_scan_frac`` / ``join_complexity`` — access mix,
- ``writes_per_txn`` / ``reads_per_txn`` — logical row operations,
- ``secondary_index_write_frac`` — how much writes touch secondary indexes
  (drives the benefit of InnoDB change buffering),
- ``temp_table_intensity`` — grouping/sorting pressure (drives
  ``tmp_table_size`` / ``sort_buffer_size`` effects),
- ``repetitive_read_frac`` — identical-statement reads (query-cache upside),
- ``working_set_gb`` — hot data size (drives buffer-pool sensitivity),
- ``client_threads`` — replay parallelism (drives concurrency knobs),
- ``contention`` — row-conflict propensity (drives lock/contention costs),
- ``base_throughput`` (txn/s) or ``base_latency_s`` — scale anchors at the
  default configuration on instance B, matching the paper's observation
  that JOB's default 95%-latency is roughly 200 s.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class WorkloadProfile:
    """A workload as seen by the simulated DBMS."""

    name: str
    wclass: str  # Analytical | Transactional | Web-Oriented | Feature Testing
    size_gb: float
    n_tables: int
    read_only_frac: float

    point_read_frac: float
    range_scan_frac: float
    join_complexity: float
    reads_per_txn: float
    writes_per_txn: float
    secondary_index_write_frac: float
    temp_table_intensity: float
    repetitive_read_frac: float
    working_set_gb: float
    client_threads: int
    contention: float

    objective: str = "throughput"  # "throughput" (maximize) or "latency95" (minimize)
    base_throughput: float = 1000.0  # txn/s at default config on instance B
    base_latency_s: float = 0.0  # 95% latency at default config on instance B

    # Derived descriptive tags (not used by the engine).
    description: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.objective not in ("throughput", "latency95"):
            raise ValueError(f"{self.name}: invalid objective {self.objective!r}")
        for frac_name in (
            "read_only_frac",
            "point_read_frac",
            "range_scan_frac",
            "join_complexity",
            "secondary_index_write_frac",
            "temp_table_intensity",
            "repetitive_read_frac",
            "contention",
        ):
            value = getattr(self, frac_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{self.name}: {frac_name}={value} out of [0, 1]")
        if self.client_threads < 1:
            raise ValueError(f"{self.name}: client_threads must be >= 1")

    @property
    def write_frac(self) -> float:
        """Fraction of transactions performing writes."""
        return 1.0 - self.read_only_frac

    @property
    def is_analytical(self) -> bool:
        return self.objective == "latency95"

    def scaled(self, **overrides: object) -> "WorkloadProfile":
        """Return a modified copy (e.g. different client parallelism)."""
        return replace(self, **overrides)  # type: ignore[arg-type]


JOB = WorkloadProfile(
    name="JOB",
    wclass="Analytical",
    size_gb=9.3,
    n_tables=21,
    read_only_frac=1.0,
    point_read_frac=0.05,
    range_scan_frac=0.55,
    join_complexity=0.95,
    reads_per_txn=50000.0,
    writes_per_txn=0.0,
    secondary_index_write_frac=0.0,
    temp_table_intensity=0.85,
    repetitive_read_frac=0.1,
    working_set_gb=8.5,
    client_threads=4,
    contention=0.0,
    objective="latency95",
    base_throughput=0.0,
    base_latency_s=200.0,
    description="113 multi-join analytical queries over the IMDB dataset",
)

SYSBENCH = WorkloadProfile(
    name="SYSBENCH",
    wclass="Transactional",
    size_gb=24.8,
    n_tables=150,
    read_only_frac=0.43,
    point_read_frac=0.62,
    range_scan_frac=0.18,
    join_complexity=0.05,
    reads_per_txn=14.0,
    writes_per_txn=4.0,
    secondary_index_write_frac=0.5,
    temp_table_intensity=0.08,
    repetitive_read_frac=0.35,
    working_set_gb=12.0,
    client_threads=64,
    contention=0.15,
    base_throughput=4200.0,
    description="sysbench OLTP read-write over 150 tables",
)

TPCC = WorkloadProfile(
    name="TPC-C",
    wclass="Transactional",
    size_gb=17.8,
    n_tables=9,
    read_only_frac=0.08,
    point_read_frac=0.55,
    range_scan_frac=0.15,
    join_complexity=0.15,
    reads_per_txn=30.0,
    writes_per_txn=20.0,
    secondary_index_write_frac=0.6,
    temp_table_intensity=0.05,
    repetitive_read_frac=0.2,
    working_set_gb=9.0,
    client_threads=64,
    contention=0.45,
    base_throughput=1800.0,
    description="order-entry OLTP with heavy writes and hotspots",
)

SEATS = WorkloadProfile(
    name="SEATS",
    wclass="Transactional",
    size_gb=12.7,
    n_tables=10,
    read_only_frac=0.45,
    point_read_frac=0.5,
    range_scan_frac=0.25,
    join_complexity=0.2,
    reads_per_txn=22.0,
    writes_per_txn=6.0,
    secondary_index_write_frac=0.5,
    temp_table_intensity=0.1,
    repetitive_read_frac=0.25,
    working_set_gb=7.0,
    client_threads=64,
    contention=0.3,
    base_throughput=2600.0,
    description="airline seat reservation OLTP",
)

SMALLBANK = WorkloadProfile(
    name="Smallbank",
    wclass="Transactional",
    size_gb=2.4,
    n_tables=3,
    read_only_frac=0.15,
    point_read_frac=0.85,
    range_scan_frac=0.02,
    join_complexity=0.02,
    reads_per_txn=4.0,
    writes_per_txn=3.0,
    secondary_index_write_frac=0.2,
    temp_table_intensity=0.01,
    repetitive_read_frac=0.4,
    working_set_gb=1.8,
    client_threads=64,
    contention=0.35,
    base_throughput=9000.0,
    description="banking micro-transactions over three tables",
)

TATP = WorkloadProfile(
    name="TATP",
    wclass="Transactional",
    size_gb=6.3,
    n_tables=4,
    read_only_frac=0.40,
    point_read_frac=0.9,
    range_scan_frac=0.02,
    join_complexity=0.03,
    reads_per_txn=3.0,
    writes_per_txn=2.0,
    secondary_index_write_frac=0.3,
    temp_table_intensity=0.01,
    repetitive_read_frac=0.5,
    working_set_gb=4.5,
    client_threads=64,
    contention=0.2,
    base_throughput=12000.0,
    description="telecom subscriber lookups and updates",
)

VOTER = WorkloadProfile(
    name="Voter",
    wclass="Transactional",
    size_gb=0.00006,
    n_tables=3,
    read_only_frac=0.0,
    point_read_frac=0.3,
    range_scan_frac=0.0,
    join_complexity=0.01,
    reads_per_txn=2.0,
    writes_per_txn=2.0,
    secondary_index_write_frac=0.3,
    temp_table_intensity=0.0,
    repetitive_read_frac=0.1,
    working_set_gb=0.0001,
    client_threads=64,
    contention=0.5,
    base_throughput=16000.0,
    description="tiny insert-only televoting workload",
)

TWITTER = WorkloadProfile(
    name="Twitter",
    wclass="Web-Oriented",
    size_gb=7.9,
    n_tables=5,
    read_only_frac=0.009,
    point_read_frac=0.7,
    range_scan_frac=0.2,
    join_complexity=0.1,
    reads_per_txn=8.0,
    writes_per_txn=3.0,
    secondary_index_write_frac=0.7,
    temp_table_intensity=0.06,
    repetitive_read_frac=0.3,
    working_set_gb=3.5,
    client_threads=64,
    contention=0.55,
    base_throughput=5200.0,
    description="micro-blogging with skewed follower graph access",
)

SIBENCH = WorkloadProfile(
    name="SIBench",
    wclass="Feature Testing",
    size_gb=0.0005,
    n_tables=1,
    read_only_frac=0.5,
    point_read_frac=0.5,
    range_scan_frac=0.5,
    join_complexity=0.0,
    reads_per_txn=10.0,
    writes_per_txn=1.0,
    secondary_index_write_frac=0.1,
    temp_table_intensity=0.0,
    repetitive_read_frac=0.2,
    working_set_gb=0.0005,
    client_threads=32,
    contention=0.6,
    base_throughput=14000.0,
    description="snapshot-isolation feature test over one table",
)

ALL_WORKLOADS: dict[str, WorkloadProfile] = {
    w.name: w
    for w in (JOB, SYSBENCH, TPCC, SEATS, SMALLBANK, TATP, VOTER, TWITTER, SIBENCH)
}

#: The eight OLTP workloads used for the knowledge-transfer study (paper §7).
OLTP_WORKLOADS: tuple[str, ...] = (
    "SYSBENCH",
    "TPC-C",
    "Twitter",
    "Smallbank",
    "SIBench",
    "Voter",
    "SEATS",
    "TATP",
)


def get_workload(name: str) -> WorkloadProfile:
    """Look up a workload by its Table 4 name (case-insensitive)."""
    for key, profile in ALL_WORKLOADS.items():
        if key.lower() == name.lower():
            return profile
    raise KeyError(f"unknown workload {name!r}; available: {sorted(ALL_WORKLOADS)}")


def workload_table() -> list[tuple[str, str, str, int, str]]:
    """Rows of the paper's Table 4: (workload, class, size, tables, read-only %)."""
    rows = []
    for w in ALL_WORKLOADS.values():
        if w.size_gb >= 1.0:
            size = f"{w.size_gb:.1f}G"
        else:
            size = f"{w.size_gb * 1024:.2g}M"
        rows.append((w.name, w.wclass, size, w.n_tables, f"{w.read_only_frac * 100:.1f}%"))
    return rows
