"""Surrogate hot-path acceleration primitives and the tracked benchmark harness.

Every optimizer study in the paper spends its wall-clock inside a
surrogate model.  This package holds the machinery that removes the
*implementation* overhead from those hot paths — never changing a single
output bit:

- :mod:`repro.perf.cache` — :class:`KernelCache`, a per-fit store for
  theta-independent pairwise structures (squared distances, Hamming
  mismatch counts) reused across the ~120 log-marginal-likelihood
  evaluations one L-BFGS-B GP hyperparameter fit performs (layer 1).
- :mod:`repro.perf.incremental` — :func:`cholesky_append`, the O(n^2)
  bordered-Cholesky update behind the GP's opt-in incremental refit
  (layer 2).
- :mod:`repro.perf.treefast` — the tree-ensemble fast path (layer 2b):
  once-per-dataset feature presorting with integer rank keys
  (:func:`feature_sort_ranks` / :func:`subset_sort_orders`) reused
  across every bootstrap resample and boosting round, and
  :class:`PackedTrees`, the batched whole-ensemble descent behind
  forest/GBM prediction (native kernel when a C toolchain exists,
  vectorized numpy otherwise).
- :mod:`repro.perf.bench` — ``python -m repro.perf.bench``, the
  microbenchmark harness timing GP fit/predict, candidate-pool
  construction, BO/SMAC/TPE iterations, and forest/GBM fit/predict in
  baseline vs optimized arms; emits ``benchmarks/perf/BENCH_PR9.json``
  so the perf trajectory is tracked in-repo from PR 4 onward (see
  ``docs/PERFORMANCE.md``), and diffs tracked payloads via
  ``--compare``.
"""

from repro.perf.cache import KernelCache
from repro.perf.incremental import cholesky_append
from repro.perf.treefast import (
    PackedTrees,
    feature_sort_ranks,
    full_sort_orders,
    subset_sort_orders,
)

__all__ = [
    "KernelCache",
    "cholesky_append",
    "PackedTrees",
    "feature_sort_ranks",
    "full_sort_orders",
    "subset_sort_orders",
]
