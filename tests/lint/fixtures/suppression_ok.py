"""Suppressions with mandatory reasons: findings are absorbed."""

import numpy as np


def intentional_fresh_entropy():
    # Demonstration code: fresh entropy is the point here.
    return np.random.default_rng()  # reprolint: disable=R001 demo draws fresh entropy on purpose


def exact_probe(x):
    return x == 0.25  # reprolint: disable=R008 0.25 is exactly representable and used as a sentinel
