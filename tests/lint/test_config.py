"""[tool.reprolint] configuration loading and path matching."""

from pathlib import Path

import pytest

from repro.lint import LintConfig, Linter, load_config
from repro.lint.config import _parse_toml_minimal, find_pyproject

FIXTURES = Path(__file__).parent / "fixtures"

PYPROJECT = """
[project]
name = "demo"

[tool.reprolint]
select = ["R001", "R008"]
ignore = ["R008"]
exclude = ["vendored", "gen/*.py"]

[tool.reprolint.per-path-ignores]
"examples" = ["R007", "R008"]
"""


def write_pyproject(tmp_path, text=PYPROJECT):
    path = tmp_path / "pyproject.toml"
    path.write_text(text)
    return path


def test_load_config_sections(tmp_path):
    config = load_config(path=write_pyproject(tmp_path))
    assert config.select == ["R001", "R008"]
    assert config.ignore == ["R008"]
    assert config.exclude == ["vendored", "gen/*.py"]
    assert config.per_path_ignores == {"examples": ["R007", "R008"]}
    assert config.root == tmp_path


def test_missing_section_gives_default_config(tmp_path):
    config = load_config(path=write_pyproject(tmp_path, "[project]\nname = 'x'\n"))
    assert config.select == []
    assert config.ignore == []
    assert config.exclude == []


def test_missing_file_gives_default_config(tmp_path):
    config = load_config(start=tmp_path / "nowhere")
    assert isinstance(config, LintConfig)


def test_find_pyproject_walks_up(tmp_path):
    pyproject = write_pyproject(tmp_path)
    nested = tmp_path / "a" / "b"
    nested.mkdir(parents=True)
    assert find_pyproject(nested) == pyproject


def test_exclude_prefix_and_glob(tmp_path):
    config = LintConfig(exclude=["vendored", "gen/*.py"], root=tmp_path)
    assert config.is_excluded(tmp_path / "vendored" / "deep" / "x.py")
    assert config.is_excluded(tmp_path / "gen" / "auto.py")
    assert not config.is_excluded(tmp_path / "src" / "x.py")


def test_per_path_ignores_disable_rules(tmp_path):
    config = LintConfig(per_path_ignores={"examples": ["R007"]}, root=tmp_path)
    all_rules = ["R001", "R007"]
    assert config.rules_for(tmp_path / "examples" / "demo.py", all_rules) == ["R001"]
    assert config.rules_for(tmp_path / "src" / "mod.py", all_rules) == all_rules


def test_config_applies_end_to_end(tmp_path):
    """A config ignoring R008 silences the R008 fixture through the Linter."""
    config = LintConfig(ignore=["R008"])
    report = Linter(config).lint_file(FIXTURES / "r008_pos.py")
    assert report.findings == []


def test_per_path_ignores_end_to_end(tmp_path):
    fixture_root = FIXTURES.parent
    config = LintConfig(
        per_path_ignores={"fixtures": ["R008"]}, root=fixture_root
    )
    report = Linter(config).lint_file(FIXTURES / "r008_pos.py")
    assert report.findings == []


def test_bad_config_types_raise(tmp_path):
    bad = "[tool.reprolint]\nselect = 'R001'\n"
    with pytest.raises(ValueError, match="array of strings"):
        load_config(path=write_pyproject(tmp_path, bad))


def test_merged_with_cli_overrides_select():
    config = LintConfig(select=["R001"], ignore=["R002"])
    merged = config.merged_with_cli(["R003"], ["R004"])
    assert merged.select == ["R003"]
    assert set(merged.ignore) == {"R002", "R004"}


def test_repo_pyproject_is_loadable():
    """The real repo config parses and excludes the lint fixtures."""
    repo_root = Path(__file__).resolve().parents[2]
    config = load_config(path=repo_root / "pyproject.toml")
    assert config.is_excluded(FIXTURES / "r001_pos.py")
    assert "R008" in config.per_path_ignores.get("tests", [])


def test_minimal_toml_fallback_parser():
    """The 3.10 fallback handles the reprolint subset, incl. multiline arrays."""
    data = _parse_toml_minimal(
        """
[tool.reprolint]
select = ["R001",
          "R002"]
ignore = []  # trailing comment
flag = true

[tool.reprolint.per-path-ignores]
"examples" = ["R007"]
"""
    )
    section = data["tool"]["reprolint"]
    assert section["select"] == ["R001", "R002"]
    assert section["ignore"] == []
    assert section["flag"] is True
    assert section["per-path-ignores"]["examples"] == ["R007"]
