"""Command-line entry point: ``python -m repro.lint [paths] [options]``.

Exit codes: 0 = clean, 1 = findings reported, 2 = usage/configuration
error.  The CLI is stdlib-only (``argparse``) so the CI lint gate needs no
third-party installs.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.lint.config import LintConfig, load_config
from repro.lint.engine import Linter, discover_files
from repro.lint.registry import rule_catalog
from repro.lint.reporters import REPORTERS

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def _split_codes(values: list[str] | None) -> list[str]:
    out: list[str] = []
    for value in values or []:
        out.extend(code.strip() for code in value.split(",") if code.strip())
    return out


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based determinism & contract linter for the repro codebase. "
            "Checks that RNGs are threaded from the SeedSequence tree, that "
            "optimizer/estimator contracts hold, and that the usual "
            "silent-nondeterminism footguns stay out of the tree."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=sorted(REPORTERS),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULES",
        help="comma-separated rule ids to run exclusively (repeatable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="RULES",
        help="comma-separated rule ids to skip (repeatable)",
    )
    parser.add_argument(
        "--config",
        metavar="PYPROJECT",
        help="explicit pyproject.toml to read [tool.reprolint] from",
    )
    parser.add_argument(
        "--no-config",
        action="store_true",
        help="ignore pyproject.toml configuration entirely",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, name, summary in rule_catalog():
            print(f"{rule_id}  {name}: {summary}")
        return EXIT_CLEAN

    try:
        if args.no_config:
            config = LintConfig()
        else:
            explicit = Path(args.config) if args.config else None
            if explicit is not None and not explicit.is_file():
                print(f"error: config file not found: {explicit}", file=sys.stderr)
                return EXIT_ERROR
            config = load_config(path=explicit)
        config = config.merged_with_cli(
            _split_codes(args.select), _split_codes(args.ignore)
        )
        linter = Linter(config)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"error: path(s) not found: {', '.join(missing)}", file=sys.stderr)
        return EXIT_ERROR

    files = discover_files(args.paths, config)
    reports = [linter.lint_file(path) for path in files]
    print(REPORTERS[args.format](reports))
    has_findings = any(report.findings for report in reports)
    return EXIT_FINDINGS if has_findings else EXIT_CLEAN
