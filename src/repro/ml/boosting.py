"""Gradient-boosted regression trees (least-squares boosting).

GB is one of the candidate surrogate regressors in the tuning benchmark
(Table 9) where, together with random forests, it is the best performer.
"""

from __future__ import annotations

import numpy as np

from repro.ml.tree import DecisionTreeRegressor


class GradientBoostingRegressor:
    """Stagewise additive model of shallow trees on squared-error residuals."""

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        subsample: float = 1.0,
        seed: int | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.seed = seed
        self.init_: float = 0.0
        self.trees_: list[DecisionTreeRegressor] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostingRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if len(X) != len(y):
            raise ValueError("X and y length mismatch")
        if len(X) == 0:
            raise ValueError("cannot fit on empty data")
        rng = np.random.default_rng(self.seed)
        n = len(X)
        self.init_ = float(y.mean())
        current = np.full(n, self.init_)
        self.trees_ = []
        for _ in range(self.n_estimators):
            residual = y - current
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            if self.subsample < 1.0:
                m = max(2, int(round(self.subsample * n)))
                idx = rng.choice(n, size=m, replace=False)
                tree.fit(X[idx], residual[idx])
            else:
                tree.fit(X, residual)
            current += self.learning_rate * tree.predict(X)
            self.trees_.append(tree)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=float)
        out = np.full(len(X), self.init_)
        for tree in self.trees_:
            out += self.learning_rate * tree.predict(X)
        return out

    def staged_predict(self, X: np.ndarray) -> np.ndarray:
        """Predictions after each boosting stage, shape ``(stages, n)``."""
        if not self.trees_:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=float)
        out = np.full(len(X), self.init_)
        stages = np.empty((len(self.trees_), len(X)))
        for i, tree in enumerate(self.trees_):
            out = out + self.learning_rate * tree.predict(X)
            stages[i] = out
        return stages
