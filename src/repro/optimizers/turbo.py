"""TuRBO: trust-region Bayesian optimization (Eriksson et al., 2019).

Maintains ``m`` independent trust regions, each a hyper-rectangle centred
on its local incumbent with side length ``L`` that grows on consecutive
successes and shrinks on failures; a collapsed region restarts elsewhere.
Each region fits a *local* GP on the observations inside it, avoiding both
the over-exploration of global GPs in high dimension and their cubic cost
on the full history.  Regions compete through an implicit bandit: every
suggestion goes to the region whose best candidate has the highest
Thompson-sampled value.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.gp import GaussianProcessRegressor
from repro.ml.kernels import ConstantKernel, Matern52Kernel
from repro.optimizers.base import History, Observation, Optimizer
from repro.space import Configuration, ConfigurationSpace
from repro.space.sampling import scrambled_sobol_like


@dataclass
class _TrustRegion:
    center: np.ndarray
    length: float
    best_score: float = float("-inf")
    success_count: int = 0
    failure_count: int = 0
    pending: Configuration | None = None
    observations: list[tuple[np.ndarray, float]] = field(default_factory=list)

    L_MIN = 0.5**6
    L_MAX = 1.0
    SUCCESS_TOLERANCE = 3
    FAILURE_TOLERANCE = 4

    def contains(self, x: np.ndarray) -> bool:
        return bool(np.all(np.abs(x - self.center) <= self.length / 2.0 + 1e-12))

    def update(self, x: np.ndarray, score: float) -> None:
        """Register an observation made on behalf of this region."""
        self.observations.append((x, score))
        if not np.isfinite(self.best_score):
            threshold = float("-inf")
        else:
            threshold = self.best_score + 1e-9 * max(abs(self.best_score), 1.0)
        if score > threshold:
            self.best_score = score
            self.center = x.copy()
            self.success_count += 1
            self.failure_count = 0
        else:
            self.failure_count += 1
            self.success_count = 0
        if self.success_count >= self.SUCCESS_TOLERANCE:
            self.length = min(self.length * 2.0, self.L_MAX)
            self.success_count = 0
        elif self.failure_count >= self.FAILURE_TOLERANCE:
            self.length /= 2.0
            self.failure_count = 0

    @property
    def collapsed(self) -> bool:
        return self.length < self.L_MIN


class TuRBO(Optimizer):
    """TuRBO-m over the unit-encoded configuration space."""

    name = "turbo"

    def __init__(
        self,
        space: ConfigurationSpace,
        seed: int | None = None,
        n_regions: int = 3,
        n_candidates: int = 256,
        init_length: float = 0.4,
    ) -> None:
        super().__init__(space, seed)
        if n_regions < 1:
            raise ValueError("n_regions must be >= 1")
        self.n_regions = n_regions
        self.n_candidates = n_candidates
        self.init_length = init_length
        self._regions: list[_TrustRegion] = []

    def _new_region(self) -> _TrustRegion:
        return _TrustRegion(center=self.rng.random(self.space.n_dims), length=self.init_length)

    def _region_candidates(self, region: _TrustRegion) -> np.ndarray:
        d = self.space.n_dims
        half = region.length / 2.0
        lo = np.clip(region.center - half, 0.0, 1.0)
        hi = np.clip(region.center + half, 0.0, 1.0)
        raw = lo + scrambled_sobol_like(self.n_candidates, d, self.rng) * (hi - lo)
        # Perturb only a subset of dims per candidate (TuRBO's sparse moves).
        prob = min(1.0, 20.0 / d)
        mask = self.rng.random(raw.shape) < prob
        mask[np.arange(len(raw)), self.rng.integers(0, d, len(raw))] = True
        cands = np.where(mask, raw, region.center[None, :])
        # Array-level snap (bit-identical to the per-row decode/encode loop).
        return self.space.snap_many(cands)

    def _local_gp(self, region: _TrustRegion) -> GaussianProcessRegressor | None:
        if len(region.observations) < 2:
            return None
        X = np.array([x for x, __ in region.observations])
        y = np.array([s for __, s in region.observations])
        if np.allclose(y, y[0]):
            return None
        gp = GaussianProcessRegressor(
            kernel=ConstantKernel(1.0) * Matern52Kernel(0.3),
            noise=1e-4,
            optimize_hyperparams=len(region.observations) >= 6,
            n_restarts=0,
            seed=int(self.rng.integers(0, 2**31 - 1)),
            # Local models refit every suggestion: reuse the pairwise
            # distances across their hyperparameter-search evaluations.
            cache_distances=True,
        )
        gp.fit(X, y)
        return gp

    def suggest(self, history: History) -> Configuration:
        while len(self._regions) < self.n_regions:
            self._regions.append(self._new_region())
        # Seed each fresh region with history points that fall inside it.
        for region in self._regions:
            if not region.observations:
                for obs in history.successful():
                    x = self.space.encode(obs.config)
                    if region.contains(x):
                        region.update(x, obs.score)

        best_value = float("-inf")
        best_choice: Configuration | None = None
        best_region_idx = 0
        for idx, region in enumerate(self._regions):
            if region.collapsed:
                self._regions[idx] = self._new_region()
                region = self._regions[idx]
            candidates = self._region_candidates(region)
            gp = self._local_gp(region)
            if gp is None:
                values = self.rng.random(len(candidates))
            else:
                # Thompson sampling from the local posterior.
                mean, std = gp.predict(candidates, return_std=True)
                values = mean + std * self.rng.standard_normal(len(candidates))
            j = int(np.argmax(values))
            if values[j] > best_value:
                best_value = float(values[j])
                best_choice = self.space.decode(candidates[j])
                best_region_idx = idx
        assert best_choice is not None
        self._regions[best_region_idx].pending = best_choice
        return self._dedupe(best_choice, history)

    def observe(self, observation: Observation) -> None:
        x = self.space.encode(observation.config)
        for region in self._regions:
            if region.pending is not None and region.pending == observation.config:
                region.update(x, observation.score)
                region.pending = None
                return
        # Not a pending suggestion (e.g. LHS init): feed regions that contain it.
        for region in self._regions:
            if region.contains(x):
                region.update(x, observation.score)
