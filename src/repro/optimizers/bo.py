"""Gaussian-process Bayesian optimization: vanilla and mixed-kernel.

Vanilla BO follows the OtterTune/iTuned design (paper §4.2): a GP with an
RBF kernel over the unit-encoded configuration and Expected Improvement.
The RBF kernel imposes a metric — and hence a spurious ordering — on
categorical dimensions, which is exactly the weakness the heterogeneity
experiment (Figure 8) exposes.

Mixed-kernel BO replaces the kernel with Matérn-5/2 x Hamming so
categorical knobs are compared by equality only (paper §3.2).

Both refit the GP from scratch every iteration, reproducing the cubic
algorithm-overhead growth of Figure 9.
"""

from __future__ import annotations

import numpy as np

from repro.ml.gp import GaussianProcessRegressor
from repro.ml.kernels import ConstantKernel, Kernel, MixedKernel, RBFKernel
from repro.optimizers.acquisitions import expected_improvement
from repro.optimizers.base import History, Observation, Optimizer
from repro.space import Configuration, ConfigurationSpace
from repro.space.sampling import scrambled_sobol_like


class _GPBasedBO(Optimizer):
    """Shared GP + EI machinery."""

    n_candidates = 1024
    n_local_candidates = 256
    local_stdev = 0.12

    def __init__(
        self,
        space: ConfigurationSpace,
        seed: int | None = None,
        noise: float = 1e-4,
        n_restarts: int = 1,
    ) -> None:
        super().__init__(space, seed)
        self.noise = noise
        self.n_restarts = n_restarts

    def _make_kernel(self) -> Kernel:
        raise NotImplementedError

    def _fit_gp(self, X: np.ndarray, y: np.ndarray) -> GaussianProcessRegressor:
        gp = GaussianProcessRegressor(
            kernel=self._make_kernel(),
            noise=self.noise,
            normalize_y=True,
            optimize_hyperparams=True,
            n_restarts=self.n_restarts,
            seed=int(self.rng.integers(0, 2**31 - 1)),
        )
        gp.fit(X, y)
        return gp

    def _candidate_pool(self, history: History) -> np.ndarray:
        """Quasi-random global candidates plus local perturbations of the
        best configurations, snapped to valid encodings."""
        d = self.space.n_dims
        pool = [scrambled_sobol_like(self.n_candidates, d, self.rng)]
        succ = sorted(history.successful(), key=lambda o: o.score, reverse=True)
        if succ:
            anchors = [self.space.encode(o.config) for o in succ[:4]]
            per_anchor = max(1, self.n_local_candidates // len(anchors))
            for anchor in anchors:
                local = anchor[None, :] + self.rng.normal(0.0, self.local_stdev, (per_anchor, d))
                # Categorical dims move by re-draw, not by Gaussian walk.
                cat = self.space.categorical_mask
                if cat.any():
                    redraw = self.rng.random((per_anchor, d)) < 0.25
                    redraw &= cat[None, :]
                    local = np.where(redraw, self.rng.random((per_anchor, d)), local)
                    local[:, cat] = np.where(
                        redraw[:, cat], local[:, cat], np.broadcast_to(anchor[cat], (per_anchor, int(cat.sum())))
                    )
                pool.append(np.clip(local, 0.0, 1.0))
        cands = np.vstack(pool)
        # Snap through decode/encode so integer/categorical dims are exact.
        return self.space.encode_many([self.space.decode(row) for row in cands])

    def suggest(self, history: History) -> Configuration:
        succ = history.successful()
        if len(succ) < 2:
            return self._dedupe(self._random_config(), history)
        X, y = self._training_data(history)
        gp = self._fit_gp(X, y)
        candidates = self._candidate_pool(history)
        mean, std = gp.predict(candidates, return_std=True)
        best = max(o.score for o in succ)
        ei = expected_improvement(mean, std, best)
        choice = self.space.decode(candidates[int(np.argmax(ei))])
        return self._dedupe(choice, history)

    def observe(self, observation: Observation) -> None:  # pragma: no cover - stateless
        pass


class VanillaBO(_GPBasedBO):
    """GP(RBF) + EI — the iTuned/OtterTune optimizer."""

    name = "vanilla_bo"

    def _make_kernel(self) -> Kernel:
        return ConstantKernel(1.0) * RBFKernel(0.5)


class MixedKernelBO(_GPBasedBO):
    """GP(Matérn-5/2 x Hamming) + EI for heterogeneous spaces."""

    name = "mixed_kernel_bo"

    def _make_kernel(self) -> Kernel:
        cont = np.nonzero(self.space.continuous_mask)[0]
        cat = np.nonzero(self.space.categorical_mask)[0]
        if len(cat) == 0:
            return ConstantKernel(1.0) * MixedKernel(cont, [])
        return ConstantKernel(1.0) * MixedKernel(cont, cat)
