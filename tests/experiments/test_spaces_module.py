"""Extra tests for the canonical-spaces module (memoization, structure)."""

import numpy as np
import pytest

from repro.experiments.spaces import (
    SPACE_SIZES,
    heterogeneity_spaces,
    paper_spaces,
    shap_ranked_knobs,
    transfer_space,
    workload_pool,
)


class TestWorkloadPool:
    def test_pool_contents(self):
        configs, scores, default_score = workload_pool("Voter", n_samples=60, seed=4)
        assert len(configs) == len(scores) == 61  # + default
        assert np.isfinite(scores).all()
        assert scores[-1] == default_score

    def test_memoization_returns_equal_objects(self):
        a = workload_pool("Voter", n_samples=60, seed=4)
        b = workload_pool("Voter", n_samples=60, seed=4)
        assert a[0] == b[0]
        np.testing.assert_array_equal(a[1], b[1])

    def test_different_seed_different_pool(self):
        a = workload_pool("Voter", n_samples=60, seed=4)
        b = workload_pool("Voter", n_samples=60, seed=5)
        assert a[0] != b[0]


class TestSpaceConstruction:
    def test_space_sizes_constant(self):
        assert SPACE_SIZES == {"small": 5, "medium": 20, "large": 197}

    def test_paper_spaces_are_prefixes_of_ranking(self):
        ranked = shap_ranked_knobs("Voter", n_samples=60, seed=4)
        spaces = paper_spaces("Voter", n_samples=60, seed=4)
        assert spaces["small"].names == ranked[:5]
        assert spaces["medium"].names == ranked[:20]

    def test_heterogeneity_split_masks(self):
        spaces = heterogeneity_spaces("JOB", n_samples=60, seed=4)
        het = spaces["heterogeneous"]
        # the five categorical knobs come first by construction
        assert het.categorical_mask[:5].all()
        assert not het.categorical_mask[5:].any()

    def test_transfer_space_deduplicates_across_workloads(self):
        space = transfer_space(n_samples=60, seed=4)
        assert len(set(space.names)) == 20
