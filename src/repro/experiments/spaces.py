"""Canonical knob rankings and the paper's three space sizes (§6.1).

The optimizer experiments tune the top-5 (small), top-20 (medium), and
all-197 (large) knobs ranked by SHAP.  Rankings are derived from an LHS
pool against the simulated DBMS and memoized per (workload, instance,
pool size, seed) so the many harnesses that need them do not recollect.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.dbms.catalog import mysql_knob_space
from repro.dbms.server import MySQLServer
from repro.selection.base import collect_samples
from repro.selection.shap import ShapImportance
from repro.space import Configuration, ConfigurationSpace

#: The paper's space sizes (§6.1).
SPACE_SIZES = {"small": 5, "medium": 20, "large": 197}


@lru_cache(maxsize=16)
def _pool_and_ranking(
    workload: str, instance: str, n_samples: int, seed: int
) -> tuple[tuple[Configuration, ...], tuple[float, ...], float, tuple[str, ...]]:
    space = mysql_knob_space(instance, seed=seed)
    server = MySQLServer(workload, instance, seed=seed)
    configs, scores, default_score = collect_samples(server, space, n_samples, seed=seed)
    measurement = ShapImportance(space, seed=seed)
    ranking = measurement.rank(configs, scores, default_score=default_score)
    return (
        tuple(configs),
        tuple(float(s) for s in scores),
        float(default_score),
        tuple(ranking.ranked()),
    )


def workload_pool(
    workload: str, instance: str = "B", n_samples: int = 1200, seed: int = 17
) -> tuple[list[Configuration], np.ndarray, float]:
    """The memoized LHS (configuration, score) pool for a workload."""
    configs, scores, default_score, __ = _pool_and_ranking(workload, instance, n_samples, seed)
    return list(configs), np.array(scores), default_score


def shap_ranked_knobs(
    workload: str, instance: str = "B", n_samples: int = 1200, seed: int = 17
) -> list[str]:
    """All 197 knobs ranked by SHAP tunability for a workload."""
    __, __, __, ranked = _pool_and_ranking(workload, instance, n_samples, seed)
    return list(ranked)


def paper_spaces(
    workload: str, instance: str = "B", n_samples: int = 1200, seed: int = 17
) -> dict[str, ConfigurationSpace]:
    """The small/medium/large spaces of §6.1 for one workload."""
    ranked = shap_ranked_knobs(workload, instance, n_samples, seed)
    full = mysql_knob_space(instance, seed=seed)
    return {
        name: full.subspace(ranked[:k], seed=seed) if k < full.n_dims else full
        for name, k in SPACE_SIZES.items()
    }


def heterogeneity_spaces(
    workload: str = "JOB", instance: str = "B", n_samples: int = 1200, seed: int = 17
) -> dict[str, ConfigurationSpace]:
    """Figure 8's control/test spaces.

    Control: the top-20 *numeric* knobs (continuous space); test: the
    top-5 categorical plus top-15 numeric knobs (heterogeneous space),
    all ranked by SHAP.
    """
    ranked = shap_ranked_knobs(workload, instance, n_samples, seed)
    full = mysql_knob_space(instance, seed=seed)
    numeric = [n for n in ranked if not full[n].is_categorical]
    categorical = [n for n in ranked if full[n].is_categorical]
    return {
        "continuous": full.subspace(numeric[:20], seed=seed),
        "heterogeneous": full.subspace(categorical[:5] + numeric[:15], seed=seed),
    }


def transfer_space(
    instance: str = "B", n_samples: int = 1200, seed: int = 17
) -> ConfigurationSpace:
    """The cross-OLTP top-20 space of §7.1.

    The paper selects the top-20 impacting knobs with SHAP *across* OLTP
    workloads; we average each knob's SHAP rank over three representative
    OLTP workloads and keep the best 20.
    """
    workloads = ("SYSBENCH", "TPC-C", "Twitter")
    rank_sum: dict[str, float] = {}
    for wl in workloads:
        for pos, name in enumerate(shap_ranked_knobs(wl, instance, n_samples, seed)):
            rank_sum[name] = rank_sum.get(name, 0.0) + pos
    merged = sorted(rank_sum.items(), key=lambda t: t[1])
    names = [name for name, __ in merged[:20]]
    return mysql_knob_space(instance, seed=seed).subspace(names, seed=seed)
