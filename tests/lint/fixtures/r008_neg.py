"""True negatives for R008: sentinel checks, tolerances, non-float equality."""

import math


def zero_guard(std):
    return std if std != 0.0 else 1.0


def unit_sentinels(x):
    return x == 1.0 or x == -1.0


def tolerance(x, y):
    return math.isclose(x, y, rel_tol=1e-9)


def int_equality(n):
    return n == 3


def ordering_is_fine(x):
    return x < 0.5 or x >= 2.5


def name_to_name(a, b):
    return a == b
