"""Evaluation metrics reported by the paper.

- improvement over the default configuration (Figures 3, 5, 7),
- performance enhancement of a transfer framework (Eq. 4),
- speedup of a transfer framework (Eq. 5),
- average rank across experiment settings (Tables 6, 7, 8).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.optimizers.base import History


def improvement_over_default(best_objective: float, default_objective: float, direction: str) -> float:
    """Relative improvement of the best found objective over the default.

    Throughput (``direction="max"``): ``(best - default) / default``;
    latency (``direction="min"``): ``(default - best) / default``.
    """
    if default_objective == 0:
        raise ValueError("default objective must be non-zero")
    if direction == "max":
        return (best_objective - default_objective) / default_objective
    if direction == "min":
        return (default_objective - best_objective) / default_objective
    raise ValueError("direction must be 'max' or 'min'")


def performance_enhancement(best_with_transfer: float, best_without: float) -> float:
    """Eq. 4: relative score gain of transfer over the base optimizer.

    Inputs are maximization *scores*; magnitudes are used in the
    denominator so negated-latency scores behave sensibly.
    """
    denom = max(abs(best_without), 1e-12)
    return (best_with_transfer - best_without) / denom


def speedup(base_history: History, transfer_history: History) -> float | None:
    """Eq. 5: iterations to the base optimum without transfer, divided by
    iterations for the transferred optimizer to beat that optimum.

    Returns ``None`` (the paper's "x") when the transferred optimizer
    never finds a configuration better than the base optimum.
    """
    base_best = base_history.best().score
    steps_base = base_history.iterations_to_reach(base_best)
    assert steps_base is not None
    steps_transfer = None
    for i, obs in enumerate(transfer_history):
        if not obs.failed and obs.score > base_best:
            steps_transfer = i + 1
            break
    if steps_transfer is None:
        return None
    return steps_base / steps_transfer


def average_ranks(results: Mapping[str, Sequence[float]], higher_is_better: bool = True) -> dict[str, float]:
    """Average rank of each method across experiment settings.

    ``results[method]`` is that method's metric in each setting (all
    methods must cover the same settings).  Rank 1 is best; ties share the
    average rank — the convention behind Tables 6, 7, and 8.
    """
    methods = list(results)
    if not methods:
        return {}
    n_settings = len(results[methods[0]])
    for m in methods:
        if len(results[m]) != n_settings:
            raise ValueError("all methods must have the same number of settings")
    ranks = {m: 0.0 for m in methods}
    for j in range(n_settings):
        values = np.array([results[m][j] for m in methods], dtype=float)
        if higher_is_better:
            values = -values
        order = np.argsort(values, kind="stable")
        setting_ranks = np.empty(len(methods))
        i = 0
        sorted_vals = values[order]
        while i < len(methods):
            k = i
            while k + 1 < len(methods) and sorted_vals[k + 1] == sorted_vals[i]:
                k += 1
            setting_ranks[order[i : k + 1]] = 0.5 * (i + k) + 1.0
            i = k + 1
        for idx, m in enumerate(methods):
            ranks[m] += setting_ranks[idx]
    return {m: ranks[m] / n_settings for m in methods}
