"""The historical-observation repository shared by transfer frameworks."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dbms.metrics import normalized_metrics_vector
from repro.optimizers.base import History


@dataclass
class SourceTask:
    """One historical tuning task: its observations and metric signature."""

    workload_name: str
    history: History
    metric_signature: np.ndarray = field(default_factory=lambda: np.array([]))

    def __post_init__(self) -> None:
        if self.metric_signature.size == 0:
            self.metric_signature = mean_metric_signature(self.history)

    def training_data(self) -> tuple[np.ndarray, np.ndarray]:
        """Encoded configurations and z-normalized scores.

        Scores are standardized per task so surrogates trained on data
        from different workloads (whose raw throughputs differ by orders
        of magnitude) are comparable.
        """
        X = self.history.encoded()
        y = self.history.scores()
        std = y.std()
        return X, (y - y.mean()) / (std if std > 0 else 1.0)


def mean_metric_signature(history: History) -> np.ndarray:
    """Average normalized internal-metric vector over successful observations."""
    vectors = [
        normalized_metrics_vector(o.metrics) for o in history.successful() if o.metrics
    ]
    if not vectors:
        return np.array([])
    return np.mean(vectors, axis=0)


class TransferRepository:
    """Holds source tasks and answers similarity queries."""

    def __init__(self, tasks: list[SourceTask] | None = None) -> None:
        self.tasks: list[SourceTask] = list(tasks) if tasks else []

    def add(self, task: SourceTask) -> None:
        self.tasks.append(task)

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self):
        return iter(self.tasks)

    def most_similar(self, target_signature: np.ndarray) -> SourceTask:
        """Source task with the smallest metric-signature distance."""
        if not self.tasks:
            raise ValueError("repository is empty")
        best, best_dist = None, float("inf")
        for task in self.tasks:
            if task.metric_signature.size == 0 or target_signature.size == 0:
                dist = float("inf")
            else:
                dist = float(np.linalg.norm(task.metric_signature - target_signature))
            if dist < best_dist:
                best, best_dist = task, dist
        if best is None:
            best = self.tasks[0]
        return best
