"""Parallel experiment engine: serial/parallel equivalence and speedup.

The engine's contract is that ``n_workers`` is a pure throughput knob:
for a fixed seed every run's history is bit-identical whether the batch
executes serially or fans out over a process pool.  This bench runs the
same batch both ways, asserts equivalence, and prints the measured
wall-clock (a genuine speedup needs >1 CPU; on a single-core host the
pool only adds overhead, so the speedup assertion is gated on
``os.cpu_count()``).
"""

from __future__ import annotations

import os
import time

from conftest import run_once

from repro.analysis import format_table
from repro.dbms.catalog import mysql_knob_space
from repro.experiments.runner import run_sessions
from repro.parallel import RegistryOptimizerFactory

KNOBS = [
    "innodb_flush_log_at_trx_commit",
    "innodb_log_file_size",
    "innodb_buffer_pool_size",
    "innodb_io_capacity",
]
N_RUNS = 4
N_ITERATIONS = 25


def _run(n_workers: int):
    space = mysql_knob_space("B", knob_names=KNOBS, seed=0)
    t0 = time.perf_counter()
    histories = run_sessions(
        "SYSBENCH",
        space,
        RegistryOptimizerFactory("smac"),
        n_runs=N_RUNS,
        n_iterations=N_ITERATIONS,
        n_initial=5,
        seed=17,
        n_workers=n_workers,
    )
    return histories, time.perf_counter() - t0


def test_parallel_runner_equivalence_and_speedup(benchmark):
    serial, serial_seconds = _run(n_workers=1)
    (parallel, parallel_seconds) = run_once(benchmark, lambda: _run(n_workers=4))

    assert len(serial) == len(parallel) == N_RUNS
    for a, b in zip(serial, parallel):
        assert a.scores().tolist() == b.scores().tolist()
        assert [o.iteration for o in a] == [o.iteration for o in b]
        assert [o.config for o in a] == [o.config for o in b]

    speedup = serial_seconds / parallel_seconds
    print()
    print(
        format_table(
            ["Mode", "Workers", "Wall seconds", "Speedup"],
            [
                ("serial", 1, serial_seconds, 1.0),
                ("parallel", 4, parallel_seconds, speedup),
            ],
            title=f"Parallel runner: {N_RUNS} x {N_ITERATIONS}-iteration SMAC "
            f"sessions ({os.cpu_count()} CPU(s) available)",
        )
    )
    if (os.cpu_count() or 1) >= 4:
        # With real cores behind the pool, 4 independent runs should beat
        # serial execution comfortably.
        assert speedup > 1.3
