"""Tests for KNN, SVR, model selection, and the neural substrate."""

import numpy as np
import pytest

from repro.ml.metrics import r2_score
from repro.ml.model_selection import KFold, cross_validate, train_test_split
from repro.ml.neighbors import KNNRegressor
from repro.ml.neural import MLP, Adam, DenseLayer
from repro.ml.svm import EpsilonSVR, NuSVR


class TestKNN:
    def test_one_neighbor_memorizes(self, small_regression_data):
        X, y = small_regression_data
        knn = KNNRegressor(n_neighbors=1).fit(X, y)
        np.testing.assert_allclose(knn.predict(X), y)

    def test_distance_weighting_beats_uniform_on_smooth_target(self):
        rng = np.random.default_rng(0)
        X = rng.random((300, 2))
        y = np.sin(3 * X[:, 0]) + X[:, 1] ** 2
        Xq = rng.random((100, 2))
        yq = np.sin(3 * Xq[:, 0]) + Xq[:, 1] ** 2
        uni = KNNRegressor(8, weights="uniform").fit(X, y)
        dist = KNNRegressor(8, weights="distance").fit(X, y)
        assert r2_score(yq, dist.predict(Xq)) >= r2_score(yq, uni.predict(Xq)) - 0.02

    def test_k_larger_than_n(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0.0, 2.0])
        knn = KNNRegressor(n_neighbors=10).fit(X, y)
        assert knn.predict(np.array([[0.5]]))[0] == pytest.approx(1.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            KNNRegressor(0)
        with pytest.raises(ValueError):
            KNNRegressor(3, weights="bogus")


class TestSVR:
    def test_fits_nonlinear_function(self):
        rng = np.random.default_rng(0)
        X = rng.random((150, 2))
        y = np.sin(4 * X[:, 0]) * X[:, 1]
        svr = EpsilonSVR(C=10.0, epsilon=0.02).fit(X, y)
        assert r2_score(y, svr.predict(X)) > 0.9

    def test_epsilon_tube_controls_support_vectors(self):
        rng = np.random.default_rng(1)
        X = rng.random((100, 1))
        y = X.ravel()
        tight = EpsilonSVR(C=10.0, epsilon=0.001).fit(X, y)
        loose = EpsilonSVR(C=10.0, epsilon=0.5).fit(X, y)
        assert loose.n_support_ <= tight.n_support_

    def test_nusvr_adapts_tube(self):
        rng = np.random.default_rng(2)
        X = rng.random((120, 2))
        y = 3 * X[:, 0] + rng.normal(0, 0.05, 120)
        model = NuSVR(C=10.0, nu=0.4).fit(X, y)
        assert model.epsilon > 0.0
        assert r2_score(y, model.predict(X)) > 0.8

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            EpsilonSVR(C=0.0)
        with pytest.raises(ValueError):
            EpsilonSVR(epsilon=-0.1)
        with pytest.raises(ValueError):
            NuSVR(nu=0.0)
        with pytest.raises(ValueError):
            EpsilonSVR(gamma=-1.0).fit(np.ones((2, 1)), np.ones(2))


class TestModelSelection:
    def test_kfold_partitions_everything(self):
        folds = list(KFold(5, seed=0).split(23))
        all_test = np.concatenate([test for __, test in folds])
        assert sorted(all_test.tolist()) == list(range(23))
        for train, test in folds:
            assert set(train).isdisjoint(test)

    def test_kfold_rejects_tiny_input(self):
        with pytest.raises(ValueError):
            list(KFold(5).split(3))
        with pytest.raises(ValueError):
            KFold(1)

    def test_train_test_split(self):
        X = np.arange(40).reshape(20, 2)
        y = np.arange(20)
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_fraction=0.25, seed=0)
        assert len(Xte) == 5 and len(Xtr) == 15
        assert set(yte).isdisjoint(ytr)

    def test_cross_validate_scores(self, small_regression_data):
        X, y = small_regression_data
        from repro.ml.linear import LinearRegression

        scores = cross_validate(LinearRegression, X, y, n_splits=5, seed=0)
        assert len(scores) == 5
        assert np.mean(scores) > 0.5


class TestNeural:
    def test_dense_layer_gradient_check(self):
        """Finite-difference check of a single dense layer."""
        rng = np.random.default_rng(0)
        layer = DenseLayer(3, 2, "tanh", rng)
        x = rng.random((4, 3))
        out = layer.forward(x)
        loss = float((out**2).sum())
        layer.zero_grad()
        layer.backward(2.0 * out)
        eps = 1e-6
        for idx in [(0, 0), (2, 1)]:
            layer.W[idx] += eps
            loss_plus = float((layer.forward(x) ** 2).sum())
            layer.W[idx] -= eps
            numeric = (loss_plus - loss) / eps
            assert layer.dW[idx] == pytest.approx(numeric, rel=1e-3, abs=1e-6)

    def test_mlp_learns_xor_like_function(self):
        rng = np.random.default_rng(0)
        X = rng.random((400, 2))
        y = ((X[:, 0] > 0.5) ^ (X[:, 1] > 0.5)).astype(float)
        net = MLP([2, 32, 32, 1], ["relu", "relu", "sigmoid"], seed=0)
        opt = Adam(net.params, lr=5e-3)
        for __ in range(600):
            net.zero_grad()
            pred = net.forward(X).ravel()
            net.backward(((pred - y) / len(X))[:, None])
            opt.step(net.grads)
        acc = np.mean((net.forward(X).ravel() > 0.5) == (y > 0.5))
        assert acc > 0.9

    def test_input_gradients_flow(self):
        net = MLP([3, 8, 1], ["relu", "linear"], seed=1)
        x = np.random.default_rng(2).random((5, 3))
        net.forward(x)
        grad_in = net.backward(np.ones((5, 1)))
        assert grad_in.shape == (5, 3)
        assert np.any(grad_in != 0)

    def test_weight_copy_and_soft_update(self):
        a = MLP([2, 4, 1], ["relu", "linear"], seed=0)
        b = MLP([2, 4, 1], ["relu", "linear"], seed=1)
        b.copy_weights_from(a, tau=1.0)
        for pa, pb in zip(a.params, b.params):
            np.testing.assert_array_equal(pa, pb)
        a.params[0][...] += 1.0
        b.copy_weights_from(a, tau=0.5)
        assert not np.array_equal(a.params[0], b.params[0])

    def test_get_set_weights_roundtrip(self):
        a = MLP([2, 4, 1], ["tanh", "linear"], seed=0)
        weights = a.get_weights()
        b = MLP([2, 4, 1], ["tanh", "linear"], seed=9)
        b.set_weights(weights)
        x = np.random.default_rng(0).random((3, 2))
        np.testing.assert_array_equal(a.forward(x), b.forward(x))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            MLP([2], ["relu"])
        with pytest.raises(ValueError):
            MLP([2, 3], ["relu", "relu"])
        a = MLP([2, 3, 1], ["relu", "linear"], seed=0)
        b = MLP([2, 4, 1], ["relu", "linear"], seed=0)
        with pytest.raises(ValueError):
            b.copy_weights_from(a)

    def test_adam_decreases_quadratic(self):
        w = np.array([5.0, -3.0])
        opt = Adam([w], lr=0.1)
        for __ in range(200):
            opt.step([2.0 * w])
        assert np.linalg.norm(w) < 0.1
