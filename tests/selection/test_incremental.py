"""Tests for the incremental knob-selection drivers."""

import pytest

from repro.dbms.server import MySQLServer
from repro.optimizers import VanillaBO
from repro.selection.incremental import DecrementalTuner, IncrementalTuner
from repro.tuning.objective import DatabaseObjective

RANKED = [
    "innodb_flush_log_at_trx_commit",
    "sync_binlog",
    "innodb_log_file_size",
    "innodb_io_capacity",
    "innodb_buffer_pool_size",
    "innodb_doublewrite",
    "innodb_flush_method",
    "innodb_thread_concurrency",
    "thread_cache_size",
    "innodb_write_io_threads",
]


def _objective_factory(space):
    return DatabaseObjective(MySQLServer("SYSBENCH", "B", seed=4), space)


def _optimizer_factory(space, phase):
    return VanillaBO(space, seed=phase)


class TestIncrementalTuner:
    def test_runs_and_grows_space(self, mysql_space):
        tuner = IncrementalTuner(
            _objective_factory,
            RANKED,
            _optimizer_factory,
            start_knobs=2,
            step_knobs=3,
            step_iterations=8,
            base_space=mysql_space,
            seed=0,
        )
        history = tuner.run(24)
        assert len(history) == 24
        assert history.best().score > 0

    def test_requires_base_space(self):
        tuner = IncrementalTuner(
            _objective_factory, RANKED, _optimizer_factory, base_space=None
        )
        with pytest.raises(ValueError):
            tuner.run(5)

    def test_parameter_validation(self, mysql_space):
        with pytest.raises(ValueError):
            IncrementalTuner(
                _objective_factory, RANKED, _optimizer_factory,
                start_knobs=0, base_space=mysql_space,
            )


class TestDecrementalTuner:
    def test_runs_and_shrinks_space(self, mysql_space):
        tuner = DecrementalTuner(
            _objective_factory,
            RANKED,
            _optimizer_factory,
            final_knobs=3,
            step_iterations=10,
            base_space=mysql_space,
            seed=0,
        )
        history = tuner.run(30)
        assert len(history) == 30
        # the final history space has shrunk from 10 knobs
        assert history.space.n_dims < len(RANKED)

    def test_parameter_validation(self, mysql_space):
        with pytest.raises(ValueError):
            DecrementalTuner(
                _objective_factory, RANKED, _optimizer_factory,
                final_knobs=0, base_space=mysql_space,
            )
