"""Table 4: workload profiles (class, size, tables, read-only fraction)."""

from conftest import run_once

from repro.analysis import format_table
from repro.workloads import workload_table


def test_table4_workload_profiles(benchmark):
    rows = run_once(benchmark, workload_table)
    print()
    print(
        format_table(
            ["Workload", "Class", "Size", "Table", "Read-Only Txns"],
            rows,
            title="Table 4: Profile information for workloads",
        )
    )
    assert len(rows) == 9
