"""Gaussian-process regression (Rasmussen & Williams, 2006, ch. 2).

Exact GP inference with Cholesky factorization, target standardization, and
marginal-likelihood hyperparameter fitting by multi-restart L-BFGS-B over
the kernel's log-parameters.  This is the surrogate behind vanilla BO,
mixed-kernel BO, TuRBO's local models, and RGPE's base models.

The O(n^3) Cholesky cost per (re)fit is intentional and *measured* by the
algorithm-overhead experiment (paper Figure 9).
"""

from __future__ import annotations

import numpy as np
from scipy import linalg, optimize, stats

from repro.ml.kernels import Kernel, RBFKernel


class GaussianProcessRegressor:
    """Exact GP regression with a pluggable kernel.

    Parameters
    ----------
    kernel:
        Covariance function (default: isotropic RBF).
    noise:
        Observation-noise variance added to the diagonal (jitter floor of
        ``1e-8`` is always applied for numerical stability).
    normalize_y:
        Standardize targets before fitting; predictions are de-standardized.
    optimize_hyperparams:
        Maximize the log marginal likelihood over the kernel's ``theta``.
    n_restarts:
        Number of random restarts for the hyperparameter search.
    seed:
        RNG seed for restart sampling.
    """

    def __init__(
        self,
        kernel: Kernel | None = None,
        noise: float = 1e-6,
        normalize_y: bool = True,
        optimize_hyperparams: bool = True,
        n_restarts: int = 2,
        seed: int | None = None,
    ) -> None:
        if noise < 0:
            raise ValueError("noise must be >= 0")
        self.kernel = kernel if kernel is not None else RBFKernel()
        self.noise = noise
        self.normalize_y = normalize_y
        self.optimize_hyperparams = optimize_hyperparams
        self.n_restarts = n_restarts
        self.seed = seed

        self._X: np.ndarray | None = None
        self._y_mean: float = 0.0
        self._y_std: float = 1.0
        self._chol: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self.log_marginal_likelihood_: float = float("-inf")

    # ------------------------------------------------------------------
    def _lml(self, X: np.ndarray, y: np.ndarray) -> float:
        """Log marginal likelihood at the kernel's current theta."""
        n = len(X)
        K = self.kernel(X, X) + (self.noise + 1e-8) * np.eye(n)
        try:
            L = linalg.cholesky(K, lower=True)
        except linalg.LinAlgError:
            return float("-inf")
        alpha = linalg.cho_solve((L, True), y)
        return float(
            -0.5 * y @ alpha - np.sum(np.log(np.diag(L))) - 0.5 * n * np.log(2.0 * np.pi)
        )

    def _fit_hyperparams(self, X: np.ndarray, y: np.ndarray) -> None:
        bounds = self.kernel.bounds
        if not bounds:
            return
        rng = np.random.default_rng(self.seed)

        def negative_lml(theta: np.ndarray) -> float:
            self.kernel.theta = theta
            return -self._lml(X, y)

        best_theta = self.kernel.theta.copy()
        best_val = negative_lml(best_theta)
        starts = [best_theta]
        for _ in range(self.n_restarts):
            starts.append(np.array([rng.uniform(lo, hi) for lo, hi in bounds]))
        for start in starts:
            result = optimize.minimize(
                negative_lml,
                start,
                method="L-BFGS-B",
                bounds=bounds,
                options={"maxiter": 30, "eps": 1e-3},
            )
            if np.isfinite(result.fun) and result.fun < best_val:
                best_val = float(result.fun)
                best_theta = result.x.copy()
        self.kernel.theta = best_theta

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianProcessRegressor":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if len(X) != len(y):
            raise ValueError("X and y length mismatch")
        if len(X) == 0:
            raise ValueError("cannot fit on empty data")
        if self.normalize_y:
            self._y_mean = float(y.mean())
            std = float(y.std())
            self._y_std = std if std > 0 else 1.0
        else:
            self._y_mean, self._y_std = 0.0, 1.0
        yn = (y - self._y_mean) / self._y_std

        if self.optimize_hyperparams:
            self._fit_hyperparams(X, yn)

        n = len(X)
        K = self.kernel(X, X) + (self.noise + 1e-8) * np.eye(n)
        jitter = 1e-8
        while True:
            try:
                self._chol = linalg.cholesky(K + jitter * np.eye(n), lower=True)
                break
            except linalg.LinAlgError:
                jitter *= 10.0
                if jitter > 1e-2:
                    raise
        self._alpha = linalg.cho_solve((self._chol, True), yn)
        self._X = X
        self.log_marginal_likelihood_ = self._lml(X, yn)
        return self

    def predict(
        self, X: np.ndarray, return_std: bool = False
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        """Posterior mean (and optional standard deviation) at test points."""
        if self._X is None or self._chol is None or self._alpha is None:
            raise RuntimeError("GP is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        K_star = self.kernel(X, self._X)
        mean = K_star @ self._alpha * self._y_std + self._y_mean
        if not return_std:
            return mean
        v = linalg.solve_triangular(self._chol, K_star.T, lower=True)
        var = self.kernel.diag(X) - np.sum(v**2, axis=0)
        std = np.sqrt(np.maximum(var, 1e-12)) * self._y_std
        return mean, std

    def predict_with_std(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Alias matching the forest surrogate interface."""
        mean, std = self.predict(X, return_std=True)
        return mean, std

    def sample_posterior(
        self, X: np.ndarray, n_samples: int = 1, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Draw joint posterior samples at test points, shape ``(s, n)``.

        Without an explicit ``rng`` the draw is deterministic in
        ``self.seed``: two calls on the same fitted GP return identical
        samples.  Callers that want fresh draws per call must thread their
        own generator.
        """
        if self._X is None or self._chol is None or self._alpha is None:
            raise RuntimeError("GP is not fitted")
        rng = np.random.default_rng(self.seed) if rng is None else rng
        X = np.atleast_2d(np.asarray(X, dtype=float))
        K_star = self.kernel(X, self._X)
        mean = K_star @ self._alpha
        v = linalg.solve_triangular(self._chol, K_star.T, lower=True)
        cov = self.kernel(X, X) - v.T @ v
        cov += 1e-8 * np.eye(len(X))
        draws = stats.multivariate_normal.rvs(
            mean=mean, cov=cov, size=n_samples, random_state=rng
        )
        draws = np.atleast_2d(draws)
        return draws * self._y_std + self._y_mean
