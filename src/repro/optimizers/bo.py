"""Gaussian-process Bayesian optimization: vanilla and mixed-kernel.

Vanilla BO follows the OtterTune/iTuned design (paper §4.2): a GP with an
RBF kernel over the unit-encoded configuration and Expected Improvement.
The RBF kernel imposes a metric — and hence a spurious ordering — on
categorical dimensions, which is exactly the weakness the heterogeneity
experiment (Figure 8) exposes.

Mixed-kernel BO replaces the kernel with Matérn-5/2 x Hamming so
categorical knobs are compared by equality only (paper §3.2).

By default both refit the GP from scratch every iteration, reproducing the
cubic algorithm-overhead growth of Figure 9.  Two layers of acceleration
sit on top (see ``docs/PERFORMANCE.md``):

- **Default-on, bit-identical** (``accelerated=True``): the GP reuses
  theta-independent pairwise distances across the likelihood evaluations
  of each hyperparameter fit, and the candidate pool is snapped to valid
  encodings with the array-level :meth:`ConfigurationSpace.snap_many`
  instead of a per-row Python decode/encode loop.  Suggestion sequences
  are byte-for-byte unchanged.
- **Opt-in, tolerance-equivalent** (``incremental`` / ``refit_every``):
  an O(n^2) bordered-Cholesky append when the history grew by exactly one
  observation, and a hyperparameter refit schedule that warm-starts theta
  from the previous iteration and runs the full L-BFGS-B search only
  every ``refit_every``-th model build.  Both change the iteration-wise
  randomness, so they are **off** by default and must stay off for the
  Figure 9 overhead experiment (which passes ``full_refit=True``
  explicitly to keep its measured cubic-growth claim honest).
"""

from __future__ import annotations

import numpy as np

from repro.ml.gp import GaussianProcessRegressor
from repro.ml.kernels import ConstantKernel, Kernel, MixedKernel, RBFKernel
from repro.optimizers.acquisitions import expected_improvement
from repro.optimizers.base import History, Observation, Optimizer
from repro.space import Configuration, ConfigurationSpace
from repro.space.sampling import scrambled_sobol_like


class _GPBasedBO(Optimizer):
    """Shared GP + EI machinery."""

    n_candidates = 1024
    n_local_candidates = 256
    local_stdev = 0.12

    def __init__(
        self,
        space: ConfigurationSpace,
        seed: int | None = None,
        noise: float = 1e-4,
        n_restarts: int = 1,
        accelerated: bool = True,
        incremental: bool = False,
        refit_every: int = 1,
        full_refit: bool = False,
    ) -> None:
        super().__init__(space, seed)
        if refit_every < 1:
            raise ValueError("refit_every must be >= 1")
        self.noise = noise
        self.n_restarts = n_restarts
        self.accelerated = accelerated
        self.full_refit = full_refit
        if full_refit:
            # Explicit opt-out used by the Figure 9 overhead experiment:
            # force the honest from-scratch O(n^3) refit every iteration.
            incremental, refit_every = False, 1
        self.incremental = incremental
        self.refit_every = refit_every
        self._gp: GaussianProcessRegressor | None = None
        self._theta: np.ndarray | None = None
        self._model_builds = 0

    def _make_kernel(self) -> Kernel:
        raise NotImplementedError

    def _make_gp(self, optimize_hyperparams: bool, n_restarts: int) -> GaussianProcessRegressor:
        return GaussianProcessRegressor(
            kernel=self._make_kernel(),
            noise=self.noise,
            normalize_y=True,
            optimize_hyperparams=optimize_hyperparams,
            n_restarts=n_restarts,
            seed=int(self.rng.integers(0, 2**31 - 1)),
            cache_distances=self.accelerated,
        )

    def _fit_gp(self, X: np.ndarray, y: np.ndarray) -> GaussianProcessRegressor:
        gp = self._make_gp(optimize_hyperparams=True, n_restarts=self.n_restarts)
        gp.fit(X, y)
        return gp

    def _surrogate(self, X: np.ndarray, y: np.ndarray) -> GaussianProcessRegressor:
        """Build or update the GP according to the refit schedule."""
        if not self.incremental and self.refit_every <= 1:
            # Legacy schedule: a fresh hyperparameter-optimized fit every
            # iteration (bit-identical to the seed implementation).
            return self._fit_gp(X, y)

        i = self._model_builds
        self._model_builds += 1
        if self._gp is None or self._theta is None or i % self.refit_every == 0:
            # Full L-BFGS-B refit, warm-started from the previous theta.
            gp = self._make_gp(optimize_hyperparams=True, n_restarts=self.n_restarts)
            if self._theta is not None and len(gp.kernel.theta) == len(self._theta):
                gp.kernel.theta = self._theta
            gp.fit(X, y)
            self._gp = gp
            self._theta = gp.kernel.theta.copy()
            return gp

        if self.incremental and self._gp.extends_by_one(X, y):
            # O(n^2) bordered-Cholesky append at frozen theta.
            self._gp.augment(X[-1], float(y[-1]))
            return self._gp

        # History changed by more than one row (or incremental is off):
        # refactorize at the frozen theta without a hyperparameter search.
        gp = self._make_gp(optimize_hyperparams=False, n_restarts=0)
        gp.kernel.theta = self._theta
        gp.fit(X, y)
        self._gp = gp
        return gp

    def _candidate_pool(self, history: History) -> np.ndarray:
        """Quasi-random global candidates plus local perturbations of the
        best configurations, snapped to valid encodings."""
        d = self.space.n_dims
        pool = [scrambled_sobol_like(self.n_candidates, d, self.rng)]
        succ = sorted(history.successful(), key=lambda o: o.score, reverse=True)
        if succ:
            anchors = [self.space.encode(o.config) for o in succ[:4]]
            per_anchor = max(1, self.n_local_candidates // len(anchors))
            for anchor in anchors:
                local = anchor[None, :] + self.rng.normal(0.0, self.local_stdev, (per_anchor, d))
                # Categorical dims move by re-draw, not by Gaussian walk.
                cat = self.space.categorical_mask
                if cat.any():
                    redraw = self.rng.random((per_anchor, d)) < 0.25
                    redraw &= cat[None, :]
                    local = np.where(redraw, self.rng.random((per_anchor, d)), local)
                    local[:, cat] = np.where(
                        redraw[:, cat], local[:, cat], np.broadcast_to(anchor[cat], (per_anchor, int(cat.sum())))
                    )
                pool.append(np.clip(local, 0.0, 1.0))
        cands = np.vstack(pool)
        # Snap through decode/encode so integer/categorical dims are exact.
        if self.accelerated:
            return self.space.snap_many(cands)
        return self.space.encode_many([self.space.decode(row) for row in cands])

    def suggest(self, history: History) -> Configuration:
        succ = history.successful()
        if len(succ) < 2:
            return self._dedupe(self._random_config(), history)
        X, y = self._training_data(history)
        gp = self._surrogate(X, y)
        candidates = self._candidate_pool(history)
        mean, std = gp.predict(candidates, return_std=True)
        best = max(o.score for o in succ)
        ei = expected_improvement(mean, std, best)
        choice = self.space.decode(candidates[int(np.argmax(ei))])
        return self._dedupe(choice, history)

    def observe(self, observation: Observation) -> None:  # pragma: no cover - stateless
        pass


class VanillaBO(_GPBasedBO):
    """GP(RBF) + EI — the iTuned/OtterTune optimizer."""

    name = "vanilla_bo"

    def _make_kernel(self) -> Kernel:
        return ConstantKernel(1.0) * RBFKernel(0.5)


class MixedKernelBO(_GPBasedBO):
    """GP(Matérn-5/2 x Hamming) + EI for heterogeneous spaces."""

    name = "mixed_kernel_bo"

    def _make_kernel(self) -> Kernel:
        cont = np.nonzero(self.space.continuous_mask)[0]
        cat = np.nonzero(self.space.categorical_mask)[0]
        if len(cat) == 0:
            return ConstantKernel(1.0) * MixedKernel(cont, [])
        return ConstantKernel(1.0) * MixedKernel(cont, cat)
