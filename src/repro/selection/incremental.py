"""Incremental knob-selection heuristics (paper §5.3, Figure 6).

Two ways to size the configuration space during a session instead of
fixing it up front:

- **increasing** (OtterTune): start with the top few knobs and extend the
  space with the next-ranked knobs every ``step_iterations``; the
  optimizer explores a small impactful space first, then widens.
- **decreasing** (Tuneful): start wide and periodically halve the space
  by re-ranking importance on the observations gathered so far, fixing
  dropped knobs at their default values.

Both drivers restart the optimizer when the space changes and warm-start
it with the existing observations re-projected onto the new space.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.optimizers.base import History, Observation, Optimizer
from repro.selection.gini import GiniImportance
from repro.space import Configuration, ConfigurationSpace
from repro.tuning.objective import DatabaseObjective
from repro.tuning.session import TuningSession

OptimizerFactory = Callable[[ConfigurationSpace, int], Optimizer]


def _project(obs: Observation, space: ConfigurationSpace) -> Observation:
    """Re-project an observation onto a (sub)space, defaulting new knobs."""
    values = {}
    for knob in space.knobs:
        values[knob.name] = obs.config[knob.name] if knob.name in obs.config else knob.default
    return Observation(
        config=Configuration(values),
        objective=obs.objective,
        score=obs.score,
        failed=obs.failed,
        failure_reason=obs.failure_reason,
        metrics=obs.metrics,
        suggest_seconds=obs.suggest_seconds,
        simulated_seconds=obs.simulated_seconds,
    )


class IncrementalTuner:
    """OtterTune-style increasing knob count."""

    def __init__(
        self,
        objective_factory: Callable[[ConfigurationSpace], DatabaseObjective],
        ranked_knobs: Sequence[str],
        optimizer_factory: OptimizerFactory,
        start_knobs: int = 4,
        step_knobs: int = 4,
        step_iterations: int = 30,
        max_knobs: int | None = None,
        base_space: ConfigurationSpace | None = None,
        seed: int | None = None,
    ) -> None:
        if start_knobs < 1 or step_knobs < 1 or step_iterations < 1:
            raise ValueError("start/step parameters must be >= 1")
        self.objective_factory = objective_factory
        self.ranked_knobs = list(ranked_knobs)
        self.optimizer_factory = optimizer_factory
        self.start_knobs = start_knobs
        self.step_knobs = step_knobs
        self.step_iterations = step_iterations
        self.max_knobs = max_knobs if max_knobs is not None else len(self.ranked_knobs)
        self.base_space = base_space
        self.seed = seed

    def run(self, total_iterations: int) -> History:
        n_knobs = min(self.start_knobs, self.max_knobs)
        done = 0
        merged: list[Observation] = []
        phase = 0
        full_space = None
        while done < total_iterations:
            names = self.ranked_knobs[:n_knobs]
            space = (
                self.base_space.subspace(names, seed=self.seed)
                if self.base_space is not None
                else None
            )
            if space is None:
                raise ValueError("base_space is required")
            objective = self.objective_factory(space)
            optimizer = self.optimizer_factory(space, phase)
            warm = [_project(o, space) for o in merged]
            budget = min(self.step_iterations, total_iterations - done)
            session = TuningSession(
                objective,
                optimizer,
                space,
                max_iterations=budget,
                n_initial=10 if not merged else 0,
                seed=None if self.seed is None else self.seed + phase,
                warm_start=warm,
            )
            history = session.run()
            merged.extend(history.observations[len(warm) :])
            done += budget
            n_knobs = min(n_knobs + self.step_knobs, self.max_knobs)
            phase += 1
            full_space = space
        out = History(full_space)
        for obs in merged:
            out.append(_project(obs, full_space))
        return out


class DecrementalTuner:
    """Tuneful-style decreasing knob count with periodic re-ranking."""

    def __init__(
        self,
        objective_factory: Callable[[ConfigurationSpace], DatabaseObjective],
        initial_knobs: Sequence[str],
        optimizer_factory: OptimizerFactory,
        final_knobs: int = 5,
        step_iterations: int = 40,
        base_space: ConfigurationSpace | None = None,
        seed: int | None = None,
    ) -> None:
        if final_knobs < 1 or step_iterations < 1:
            raise ValueError("final_knobs and step_iterations must be >= 1")
        self.objective_factory = objective_factory
        self.initial_knobs = list(initial_knobs)
        self.optimizer_factory = optimizer_factory
        self.final_knobs = final_knobs
        self.step_iterations = step_iterations
        self.base_space = base_space
        self.seed = seed

    def _rerank(self, space: ConfigurationSpace, observations: list[Observation]) -> list[str]:
        """Halve the knob set by Gini importance over session observations."""
        configs = [o.config for o in observations]
        scores = np.array([o.score for o in observations])
        measurement = GiniImportance(space, seed=self.seed)
        result = measurement.rank(configs, scores)
        keep = max(self.final_knobs, len(space.names) // 2)
        return result.top(keep)

    def run(self, total_iterations: int) -> History:
        if self.base_space is None:
            raise ValueError("base_space is required")
        names = list(self.initial_knobs)
        done = 0
        merged: list[Observation] = []
        phase = 0
        space = self.base_space.subspace(names, seed=self.seed)
        while done < total_iterations:
            objective = self.objective_factory(space)
            optimizer = self.optimizer_factory(space, phase)
            warm = [_project(o, space) for o in merged]
            budget = min(self.step_iterations, total_iterations - done)
            session = TuningSession(
                objective,
                optimizer,
                space,
                max_iterations=budget,
                n_initial=10 if not merged else 0,
                seed=None if self.seed is None else self.seed + phase,
                warm_start=warm,
            )
            history = session.run()
            merged.extend(history.observations[len(warm) :])
            done += budget
            phase += 1
            if len(names) > self.final_knobs and done < total_iterations:
                projected = [_project(o, space) for o in merged]
                names = self._rerank(space, projected)
                space = self.base_space.subspace(names, seed=self.seed)
        out = History(space)
        for obs in merged:
            out.append(_project(obs, space))
        return out
