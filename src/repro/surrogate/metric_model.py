"""State-transition surrogate: predicted internal metrics (paper §8's
future work).

The Section 8 benchmark replaces the *objective* with a model prediction,
which suffices for BO-style optimizers — but RL-based optimizers consume
the DBMS internal metrics as their MDP state.  The paper leaves
"train[ing] a surrogate to learn the state transition (i.e., internal
metrics of DBMS)" as future work; this module implements it: one
random-forest regressor per internal metric, trained on the same offline
pool, so a :class:`MetricAwareSurrogateObjective` can serve DDPG complete
observations (objective *and* telemetry) without touching a DBMS.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.dbms.metrics import INTERNAL_METRIC_NAMES
from repro.dbms.server import MySQLServer
from repro.ml.forest import RandomForestRegressor
from repro.optimizers.base import Observation
from repro.space import Configuration, ConfigurationSpace
from repro.space.sampling import LatinHypercubeSampler


class MetricSurrogate:
    """Predicts the full internal-metric vector from a configuration."""

    def __init__(
        self,
        space: ConfigurationSpace,
        models: dict[str, RandomForestRegressor],
        seed: int | None = None,
    ) -> None:
        self.space = space
        self.models = models
        self.seed = seed

    @classmethod
    def fit(
        cls,
        space: ConfigurationSpace,
        configs: list[Configuration],
        metric_rows: list[dict[str, float]],
        n_trees: int = 12,
        seed: int | None = None,
    ) -> "MetricSurrogate":
        """Train one regressor per metric on (config, metrics) pairs."""
        if len(configs) != len(metric_rows):
            raise ValueError("configs and metric_rows length mismatch")
        if not configs:
            raise ValueError("need at least one training observation")
        X = space.encode_many(configs)
        models: dict[str, RandomForestRegressor] = {}
        rng = np.random.default_rng(seed)
        for name in INTERNAL_METRIC_NAMES:
            y = np.array([row.get(name, 0.0) for row in metric_rows])
            model = RandomForestRegressor(
                n_estimators=n_trees,
                min_samples_leaf=3,
                max_features=0.5,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            model.fit(X, y)
            models[name] = model
        return cls(space, models, seed=seed)

    def predict(self, config: Mapping[str, Any]) -> dict[str, float]:
        """Predicted metric dict for one configuration."""
        x = self.space.encode(config)[None, :]
        return {name: float(m.predict(x)[0]) for name, m in self.models.items()}


class MetricAwareSurrogateObjective:
    """A surrogate objective that also serves predicted internal metrics.

    Drop-in replacement for
    :class:`~repro.tuning.objective.SurrogateObjective` that RL optimizers
    (whose MDP state is the metric vector) can consume.
    """

    def __init__(
        self,
        space: ConfigurationSpace,
        objective_predictor,
        metric_surrogate: MetricSurrogate,
        direction: str = "max",
        default_objective: float | None = None,
        simulated_seconds_per_eval: float = 0.1,
    ) -> None:
        if direction not in ("max", "min"):
            raise ValueError("direction must be 'max' or 'min'")
        self.space = space
        self.objective_predictor = objective_predictor
        self.metric_surrogate = metric_surrogate
        self.direction = direction
        self._default_objective = default_objective
        self.simulated_seconds_per_eval = simulated_seconds_per_eval

    @classmethod
    def build(
        cls,
        workload: str,
        space: ConfigurationSpace,
        n_samples: int = 800,
        instance: str = "B",
        seed: int | None = None,
    ) -> "MetricAwareSurrogateObjective":
        """Collect one offline pool and fit both surrogates from it."""
        server = MySQLServer(workload, instance, seed=seed)
        sampler = LatinHypercubeSampler(space, seed=seed)
        configs: list[Configuration] = []
        objectives: list[float] = []
        metric_rows: list[dict[str, float]] = []
        for config in sampler.sample(n_samples):
            result = server.evaluate(config)
            if result.failed:
                continue  # the metric model only learns reachable states
            configs.append(result.configuration)
            objectives.append(result.objective)
            metric_rows.append(result.metrics)
        if len(configs) < 20:
            raise RuntimeError("too few successful samples to fit surrogates")
        objective_model = RandomForestRegressor(
            n_estimators=40, min_samples_leaf=2, max_features=0.5, seed=seed
        )
        objective_model.fit(space.encode_many(configs), np.array(objectives))
        metric_model = MetricSurrogate.fit(space, configs, metric_rows, seed=seed)
        return cls(
            space,
            objective_model.predict,
            metric_model,
            direction=server.objective_direction,
            default_objective=server.default_objective(),
        )

    def score_of(self, objective_value: float) -> float:
        return -objective_value if self.direction == "min" else objective_value

    def default_score(self) -> float:
        if self._default_objective is None:
            default = self.space.default_configuration()
            self._default_objective = float(
                self.objective_predictor(self.space.encode(default)[None, :])[0]
            )
        return self.score_of(self._default_objective)

    def failure_fallback_score(self) -> float:
        return self.default_score()

    def __call__(self, config: Mapping[str, Any]) -> Observation:
        cfg = Configuration(dict(config))
        value = float(self.objective_predictor(self.space.encode(cfg)[None, :])[0])
        return Observation(
            config=cfg,
            objective=value,
            score=self.score_of(value),
            failed=False,
            metrics=self.metric_surrogate.predict(cfg),
            simulated_seconds=self.simulated_seconds_per_eval,
        )
