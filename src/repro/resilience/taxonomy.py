"""The failure taxonomy of the evaluation boundary.

The paper's testbed treats failed stress tests as first-class events:
crashed or unstartable configurations are clamped to the worst observed
score and still cost restart wall-clock (§4.1).  Real tuning controllers
additionally see failures the *paper's* clamping rule does not describe —
transient benchmark hiccups, hung evaluations, tuner-side crashes — and
each demands a different reaction.  :class:`FailureKind` names them; the
guarded evaluation layer (:mod:`repro.resilience.guard`) keys its retry,
quarantine, and deadline decisions off the kind, and telemetry records it
so post-hoc analysis can separate "the configuration was bad" from "the
harness was unlucky".

This module is a leaf: it imports only the stdlib, so every layer
(``repro.dbms.engine``, ``repro.optimizers.base``, ``repro.parallel``)
can thread the taxonomy through without import cycles.
"""

from __future__ import annotations

import enum


class FailureKind(str, enum.Enum):
    """Why an evaluation failed.

    The string values are the wire format: they appear verbatim in JSONL
    telemetry, checkpoint records, and ``History.failure_summary()`` keys.

    ``CRASH``
        The DBMS started but died under the workload (e.g. the OOM killer
        reaped ``mysqld`` mid-stress).  Caused by the configuration;
        retrying the same config reproduces it, so the guard never does.
    ``UNSTARTABLE``
        The DBMS could not start at all under the configuration (§4.1's
        "unable to start").  Config-induced and never retried.
    ``TIMEOUT``
        The evaluation exceeded its deadline — the wall-clock watchdog or
        the simulated-seconds cap — and was abandoned.
    ``TRANSIENT``
        An environmental hiccup (benchmark glitch, network blip) that is
        expected to pass; the guard retries these with bounded,
        deterministically-jittered backoff.
    ``EVALUATION_ERROR``
        The evaluation *code* raised instead of reporting a polite
        ``failed=True`` observation — a tuner/harness bug, not a DBMS
        verdict.  Converted to a clamped observation so one bad
        evaluation cannot kill a session.
    """

    CRASH = "crash"
    UNSTARTABLE = "unstartable"
    TIMEOUT = "timeout"
    TRANSIENT = "transient"
    EVALUATION_ERROR = "evaluation_error"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Kinds caused by the configuration itself (§4.1 semantics): retrying
#: the identical config reproduces the failure, so the guard never does —
#: and enough of them in one region quarantines it.
CONFIG_INDUCED_KINDS = frozenset({FailureKind.CRASH, FailureKind.UNSTARTABLE})

#: Kinds the guard may retry (bounded, seeded jittered backoff).
RETRYABLE_KINDS = frozenset({FailureKind.TRANSIENT})


class TransientEvaluationError(RuntimeError):
    """An evaluation failure the raiser believes will pass on retry.

    Objectives (and fault injectors) raise this to signal a
    :data:`FailureKind.TRANSIENT` failure through the exception channel;
    :class:`~repro.resilience.guard.GuardedObjective` retries it instead
    of recording an ``EVALUATION_ERROR``.
    """


class EvaluationTimeout(RuntimeError):
    """Raised/recorded when an evaluation exceeds its deadline."""


def is_retryable(kind: FailureKind | None) -> bool:
    """Whether the guard's retry policy applies to this failure kind."""
    return kind in RETRYABLE_KINDS


def classify_failure_reason(reason: str | None) -> FailureKind | None:
    """Best-effort kind for a legacy free-text failure reason.

    The simulator now labels its failures explicitly; this fallback
    classifies reason strings recorded before the taxonomy existed (old
    checkpoints, third-party objectives that only set ``failure_reason``).
    Returns ``None`` when the text matches no known predicate — the
    failure stays "unclassified" rather than being guessed at.
    """
    if not reason:
        return None
    text = reason.lower()
    if "quarantin" in text:
        return FailureKind.CRASH
    if "unable to start" in text or "startup" in text:
        return FailureKind.UNSTARTABLE
    if "timeout" in text or "deadline" in text or "hung" in text:
        return FailureKind.TIMEOUT
    if "transient" in text:
        return FailureKind.TRANSIENT
    if "oom" in text or "crash" in text or "killed" in text:
        return FailureKind.CRASH
    return None
