"""Additional rendering tests: report tables and chart downsampling."""

import math

from repro.analysis.charts import sparkline, trajectory_chart
from repro.analysis.report import format_table


class TestSparklineDownsampling:
    def test_block_max_preserves_peaks(self):
        """A single spike must survive downsampling (block max, not mean)."""
        series = [0.0] * 200
        series[137] = 10.0
        line = sparkline(series, width=40)
        assert "█" in line

    def test_negative_values(self):
        line = sparkline([-5.0, -1.0, -3.0])
        assert len(line) == 3
        assert line[1] == "█"  # max of the series

    def test_mixed_nan_series(self):
        line = sparkline([math.nan, 1.0, math.nan, 2.0])
        assert len(line) == 2


class TestTrajectoryChart:
    def test_value_format_applied(self):
        chart = trajectory_chart({"m": [0.1234, 0.5678]}, value_format="{:.2f}")
        assert chart.endswith("0.57")

    def test_all_nan_series_renders_dash(self):
        chart = trajectory_chart({"m": [math.nan, math.nan]})
        assert chart.endswith("-")


class TestFormatTableExtra:
    def test_unicode_content_alignment(self):
        table = format_table(["k", "v"], [["é", 1.0], ["long-name", 2.0]])
        lines = table.splitlines()
        assert len({line.index("|") for line in lines if "|" in line}) == 1

    def test_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert "a" in table and "b" in table

    def test_integer_cells_unrounded(self):
        table = format_table(["n"], [[1234567]])
        assert "1234567" in table
