"""Table 6 + Figure 3: importance-measurement comparison.

Figure 3 bars: tuning improvement over the top-5/top-20 knob sets chosen
by each measurement, per workload and optimizer.  Table 6: each
measurement's average rank across all settings (paper: SHAP 1.13 best,
ablation 4.30 worst).
"""

from conftest import run_once

from repro.analysis import format_table
from repro.experiments import importance_comparison


def test_table6_fig3_importance_measurements(benchmark, scale):
    result = run_once(
        benchmark,
        lambda: importance_comparison(
            workloads=("SYSBENCH", "JOB"),
            top_ks=(5, 20),
            optimizers=("vanilla_bo", "ddpg"),
            scale=scale,
        ),
    )
    print()
    print(
        format_table(
            ["Workload", "Measurement", "Top-k", "Optimizer", "Improvement %"],
            [
                (r.workload, r.measurement, r.top_k, r.optimizer, 100.0 * r.improvement)
                for r in result.rows
            ],
            title="Figure 3: improvement on each measurement's knob sets",
        )
    )
    ranking = sorted(result.overall_ranking.items(), key=lambda t: t[1])
    print()
    print(
        format_table(
            ["Measurement", "Overall ranking"],
            ranking,
            title="Table 6: overall performance ranking (lower is better)",
        )
    )
    # Shape assertions (paper): SHAP is the best-ranked measurement and
    # the tunability-vs-variance split favors SHAP over ablation.
    assert result.overall_ranking["shap"] <= min(
        result.overall_ranking[m] for m in ("lasso", "ablation")
    )
