"""Finding and suppression primitives shared by the engine and reporters."""

from __future__ import annotations

import re
from dataclasses import dataclass, field

#: Rule id reserved for engine-level diagnostics about suppression comments.
SUPPRESSION_RULE_ID = "R000"
#: Rule id reserved for files the engine cannot parse.
PARSE_ERROR_RULE_ID = "E001"

#: ``# reprolint: disable=R001,R002 <mandatory reason>``.  Codes must match
#: ``R<3 digits>`` (or the literal ``all``) exactly — anything else is not
#: treated as a suppression, so the underlying finding still surfaces.
#: Whitespace is tolerated around the commas (``disable=R001, R002 why``);
#: every listed code is honored, not just the first.
_SUPPRESSION_RE = re.compile(
    r"#\s*reprolint:\s*disable="
    r"(?P<codes>(?:[A-Z]\d{3}|all)(?:\s*,\s*(?:[A-Z]\d{3}|all))*)"
    r"(?:[ \t]+(?P<reason>\S.*))?"
)


@dataclass(frozen=True)
class Finding:
    """One lint finding, anchored to a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class Suppression:
    """An inline ``# reprolint: disable=...`` comment."""

    line: int
    codes: frozenset[str]
    reason: str
    #: Populated by the engine when the suppression absorbed a finding.
    used: bool = field(default=False, compare=False)

    def covers(self, rule_id: str) -> bool:
        return rule_id in self.codes or "all" in self.codes


def scan_suppressions(
    path: str, lines: list[str]
) -> tuple[dict[int, Suppression], list[Finding]]:
    """Extract suppression comments from raw source lines.

    Returns a ``{line_no: Suppression}`` map (1-based) plus R000 findings
    for suppressions missing their mandatory reason string.  R000 findings
    cannot themselves be suppressed — the whole point of the mandatory
    reason is an auditable paper trail.
    """
    suppressions: dict[int, Suppression] = {}
    findings: list[Finding] = []
    for lineno, text in enumerate(lines, start=1):
        match = _SUPPRESSION_RE.search(text)
        if match is None:
            continue
        codes = frozenset(c.strip() for c in match.group("codes").split(",") if c.strip())
        reason = (match.group("reason") or "").strip()
        if not reason:
            findings.append(
                Finding(
                    rule=SUPPRESSION_RULE_ID,
                    path=path,
                    line=lineno,
                    col=match.start() + 1,
                    message=(
                        "suppression is missing its mandatory reason string "
                        "(`# reprolint: disable=RXXX <why this is safe>`)"
                    ),
                )
            )
            continue
        suppressions[lineno] = Suppression(line=lineno, codes=codes, reason=reason)
    return suppressions, findings
