"""Tests for sensitivity analysis, overhead accounting, and reporting."""

import numpy as np
import pytest

from repro.analysis import (
    format_table,
    overhead_at_checkpoints,
    sensitivity_analysis,
)
from repro.analysis.overhead import cumulative_overhead
from repro.selection import GiniImportance


class TestSensitivity:
    def test_points_cover_requested_sizes(self, mysql_space, sysbench_pool):
        configs, scores, default_score = sysbench_pool
        points = sensitivity_analysis(
            lambda s: GiniImportance(mysql_space, seed=s, n_trees=8),
            configs,
            scores,
            default_score,
            sample_sizes=[40, 120],
            n_repeats=2,
            seed=0,
        )
        assert [p.n_samples for p in points] == [40, 120]
        for p in points:
            assert 0.0 <= p.similarity <= 1.0
            assert np.isfinite(p.r2)

    def test_more_samples_do_not_hurt_stability(self, mysql_space, sysbench_pool):
        configs, scores, default_score = sysbench_pool
        points = sensitivity_analysis(
            lambda s: GiniImportance(mysql_space, seed=s, n_trees=8),
            configs,
            scores,
            default_score,
            sample_sizes=[30, 200],
            n_repeats=3,
            seed=1,
        )
        assert points[1].similarity >= points[0].similarity - 0.25


class TestOverhead:
    def test_checkpoints(self):
        times = list(np.linspace(0.1, 2.0, 200))
        out = overhead_at_checkpoints(times, checkpoints=(50, 100, 200, 400))
        assert set(out) == {50, 100, 200}  # 400 exceeds the session
        assert out[200] > out[50]  # growing overhead detected

    def test_window_averaging(self):
        times = [1.0] * 49 + [100.0]
        out = overhead_at_checkpoints(times, checkpoints=(50,), window=10)
        assert out[50] == pytest.approx((9 * 1.0 + 100.0) / 10)

    def test_cumulative(self):
        assert cumulative_overhead([1.0, 2.0, 3.0]) == 6.0


class TestReport:
    def test_alignment_and_nan(self):
        table = format_table(
            ["name", "value"], [["a", 1.23], ["bb", float("nan")]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "1.23" in table
        assert "x" in lines[-1]  # NaN rendered as the paper's "x"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["x", "y"]])

    def test_large_floats_rounded(self):
        table = format_table(["v"], [[12345.678]])
        assert "12346" in table
