"""Tests for OLS / Ridge / Lasso."""

import numpy as np
import pytest

from repro.ml.linear import LassoRegression, LinearRegression, RidgeRegression
from repro.ml.metrics import r2_score


@pytest.fixture
def linear_data():
    rng = np.random.default_rng(0)
    X = rng.random((300, 5))
    w = np.array([3.0, -2.0, 0.0, 0.0, 1.0])
    y = X @ w + 0.7 + rng.normal(0, 0.01, 300)
    return X, y, w


class TestOLS:
    def test_recovers_coefficients(self, linear_data):
        X, y, w = linear_data
        model = LinearRegression().fit(X, y)
        np.testing.assert_allclose(model.coef_, w, atol=0.05)
        assert model.intercept_ == pytest.approx(0.7, abs=0.05)

    def test_no_intercept(self):
        X = np.array([[1.0], [2.0], [3.0]])
        y = 2.0 * X.ravel()
        model = LinearRegression(fit_intercept=False).fit(X, y)
        assert model.intercept_ == 0.0
        assert model.coef_[0] == pytest.approx(2.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LinearRegression().predict(np.ones((1, 2)))


class TestRidge:
    def test_shrinks_toward_zero(self, linear_data):
        X, y, __ = linear_data
        small = RidgeRegression(alpha=0.001).fit(X, y)
        big = RidgeRegression(alpha=1e5).fit(X, y)
        assert np.linalg.norm(big.coef_) < np.linalg.norm(small.coef_)

    def test_alpha_zero_matches_ols(self, linear_data):
        X, y, __ = linear_data
        ridge = RidgeRegression(alpha=0.0).fit(X, y)
        ols = LinearRegression().fit(X, y)
        np.testing.assert_allclose(ridge.coef_, ols.coef_, atol=1e-6)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            RidgeRegression(alpha=-1.0)


class TestLasso:
    def test_sparsity_on_irrelevant_features(self, linear_data):
        X, y, w = linear_data
        model = LassoRegression(alpha=0.05).fit(X, y)
        zero_idx = np.nonzero(w == 0)[0]
        assert np.all(np.abs(model.coef_[zero_idx]) < 1e-6)
        nonzero_idx = np.nonzero(w != 0)[0]
        assert np.all(np.abs(model.coef_[nonzero_idx]) > 0.1)

    def test_alpha_zero_fits_well(self, linear_data):
        X, y, __ = linear_data
        model = LassoRegression(alpha=0.0, max_iter=2000).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.99

    def test_huge_alpha_kills_all_coefficients(self, linear_data):
        X, y, __ = linear_data
        model = LassoRegression(alpha=1e6).fit(X, y)
        np.testing.assert_allclose(model.coef_, 0.0)
        # prediction degenerates to the target mean
        np.testing.assert_allclose(model.predict(X), y.mean(), atol=1e-9)

    def test_path_monotone_sparsity(self, linear_data):
        X, y, __ = linear_data
        alphas = np.array([1.0, 0.1, 0.001])
        coefs = LassoRegression().lasso_path(X, y, alphas)
        nnz = (np.abs(coefs) > 1e-8).sum(axis=1)
        assert nnz[0] <= nnz[1] <= nnz[2]

    def test_convergence_counter(self, linear_data):
        X, y, __ = linear_data
        model = LassoRegression(alpha=0.01, max_iter=500).fit(X, y)
        assert 1 <= model.n_iter_ <= 500

    def test_constant_feature_is_safe(self):
        X = np.hstack([np.ones((50, 1)), np.random.default_rng(0).random((50, 1))])
        y = X[:, 1] * 2.0
        model = LassoRegression(alpha=0.001).fit(X, y)
        assert np.isfinite(model.coef_).all()
