"""Random forest regression (Breiman, 2001).

The forest is the workhorse of the paper: SMAC's surrogate, the ablation
and SHAP surrogates, the fANOVA base model, and the winning surrogate of
the tuning benchmark (Table 9) are all random forests.  Besides the mean
prediction it exposes the across-tree variance that SMAC's Gaussian
assumption ``N(y | mu, sigma^2)`` requires.

Fast path (``accelerated=True``, the default; bit-identical to the
reference path): the expensive per-feature float sorts happen once per
*dataset* (:func:`repro.perf.treefast.feature_sort_ranks`) and every
bootstrap resample re-sorts via an integer radix sort of the dense rank
keys; prediction packs all trees into one flat node array so a single
vectorized descent covers every (tree, sample) pair, and
``predict``/``predict_with_std`` share that one descent instead of
stacking per-tree prediction loops.  ``n_jobs`` optionally fans tree
fitting out across processes — per-tree seeds and bootstrap draws are
taken from the forest RNG *before* dispatch, so the trees are identical
regardless of worker count.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.ml.tree import DecisionTreeRegressor
from repro.perf.treefast import PackedTrees, feature_sort_ranks, subset_sort_orders


def _fit_single_tree(
    params: dict,
    X: np.ndarray,
    y: np.ndarray,
    sort_order: np.ndarray | None,
) -> DecisionTreeRegressor:
    """Module-level so ``n_jobs`` workers can unpickle the task."""
    return DecisionTreeRegressor(**params).fit(X, y, sort_order=sort_order)


class RandomForestRegressor:
    """Bagged CART ensemble with per-tree feature subsampling."""

    def __init__(
        self,
        n_estimators: int = 30,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = 0.8,
        bootstrap: bool = True,
        seed: int | None = None,
        accelerated: bool = True,
        n_jobs: int | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if n_jobs is not None and n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.seed = seed
        self.accelerated = accelerated
        self.n_jobs = n_jobs
        self.trees_: list[DecisionTreeRegressor] = []
        self.n_features_: int = 0
        self._packed: PackedTrees | None = None

    def _tree_params(self, tree_seed: int) -> dict:
        return {
            "max_depth": self.max_depth,
            "min_samples_split": self.min_samples_split,
            "min_samples_leaf": self.min_samples_leaf,
            "max_features": self.max_features,
            "seed": tree_seed,
            "accelerated": self.accelerated,
        }

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if len(X) != len(y):
            raise ValueError("X and y length mismatch")
        if len(X) == 0:
            raise ValueError("cannot fit on empty data")
        n = len(X)
        self.n_features_ = X.shape[1]
        rng = np.random.default_rng(self.seed)
        # All per-tree entropy is drawn up front, in the same order the
        # serial reference loop consumed it (seed, then bootstrap rows,
        # per tree) — so accelerated / n_jobs variants grow byte-identical
        # trees.
        draws: list[tuple[int, np.ndarray | None]] = []
        for _ in range(self.n_estimators):
            tree_seed = int(rng.integers(0, 2**31 - 1))
            rows = rng.integers(0, n, size=n) if self.bootstrap else None
            draws.append((tree_seed, rows))

        ranks = feature_sort_ranks(X) if self.accelerated else None
        shared_order = None
        if ranks is not None and not self.bootstrap:
            # Without bootstrap every tree sees the same rows: one order
            # matrix serves the whole ensemble.
            shared_order = np.argsort(ranks, axis=1, kind="stable")

        tasks: list[tuple[dict, np.ndarray, np.ndarray, np.ndarray | None]] = []
        for tree_seed, rows in draws:
            params = self._tree_params(tree_seed)
            if rows is None:
                tasks.append((params, X, y, shared_order))
            else:
                order = subset_sort_orders(ranks, rows) if ranks is not None else None
                tasks.append((params, X[rows], y[rows], order))

        if self.n_jobs is not None and self.n_jobs > 1 and len(tasks) > 1:
            with ProcessPoolExecutor(max_workers=self.n_jobs) as pool:
                futures = [pool.submit(_fit_single_tree, *task) for task in tasks]
                self.trees_ = [future.result() for future in futures]
        else:
            self.trees_ = [_fit_single_tree(*task) for task in tasks]
        self._packed = None
        return self

    def _check_fitted(self) -> None:
        if not self.trees_:
            raise RuntimeError("forest is not fitted")

    def _packed_trees(self) -> PackedTrees:
        if self._packed is None:
            self._packed = PackedTrees(self.trees_)
        return self._packed

    def tree_predictions(self, X: np.ndarray) -> np.ndarray:
        """Per-tree predictions, shape ``(n_estimators, n_samples)``.

        Accelerated: one batched descent over the packed node arrays for
        all (tree, sample) pairs; otherwise a per-tree traversal loop.
        """
        self._check_fitted()
        if self.accelerated:
            return self._packed_trees().values(X)
        return np.array([tree.predict(X) for tree in self.trees_])

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Mean prediction across trees (one ensemble descent)."""
        return self.tree_predictions(X).mean(axis=0)

    def predict_with_std(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Mean and across-tree standard deviation (SMAC's mu, sigma).

        One descent yields the per-tree values; mean and deviation are
        reduced from the same pass, so SMAC's acquisition never walks the
        ensemble twice.  A small floor keeps sigma positive so
        acquisition functions stay well-defined even where all trees
        agree.
        """
        preds = self.tree_predictions(X)
        mean = preds.mean(axis=0)
        std = preds.std(axis=0)
        return mean, np.maximum(std, 1e-9)

    def split_counts(self) -> np.ndarray:
        """Total split counts per feature across trees (Gini score basis)."""
        self._check_fitted()
        counts = np.zeros(self.n_features_)
        for tree in self.trees_:
            counts += tree.split_counts()
        return counts

    def feature_importances(self) -> np.ndarray:
        """Mean normalized impurity-decrease importances across trees."""
        self._check_fitted()
        imp = np.zeros(self.n_features_)
        for tree in self.trees_:
            imp += tree.feature_importances()
        total = imp.sum()
        return imp / total if total > 0 else imp
