"""Feature preprocessing: scalers and polynomial expansion.

OtterTune's Lasso-based knob ranking augments inputs with second-degree
polynomial features (paper §4.2); :class:`PolynomialFeatures` reproduces
that expansion with interaction terms.
"""

from __future__ import annotations

from itertools import combinations, combinations_with_replacement

import numpy as np


def _as_2d(X: np.ndarray) -> np.ndarray:
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X[:, None]
    if X.ndim != 2:
        raise ValueError(f"expected 2-D input, got shape {X.shape}")
    return X


class StandardScaler:
    """Standardize features to zero mean and unit variance."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = _as_2d(X)
        self.mean_ = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler is not fitted")
        return (_as_2d(X) - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler is not fitted")
        return _as_2d(X) * self.scale_ + self.mean_


class MinMaxScaler:
    """Scale features into ``[0, 1]`` by observed min/max."""

    def __init__(self) -> None:
        self.min_: np.ndarray | None = None
        self.range_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "MinMaxScaler":
        X = _as_2d(X)
        self.min_ = X.min(axis=0)
        rng = X.max(axis=0) - self.min_
        rng[rng == 0.0] = 1.0
        self.range_ = rng
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.min_ is None or self.range_ is None:
            raise RuntimeError("MinMaxScaler is not fitted")
        return (_as_2d(X) - self.min_) / self.range_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        if self.min_ is None or self.range_ is None:
            raise RuntimeError("MinMaxScaler is not fitted")
        return _as_2d(X) * self.range_ + self.min_


class PolynomialFeatures:
    """Second-or-higher degree polynomial/interaction feature expansion.

    With ``degree=2`` and ``interaction_only=False`` (the OtterTune setting),
    input features ``(a, b)`` expand to ``(a, b, a^2, a*b, b^2)`` plus an
    optional bias column.
    """

    def __init__(
        self,
        degree: int = 2,
        interaction_only: bool = False,
        include_bias: bool = False,
    ) -> None:
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.degree = degree
        self.interaction_only = interaction_only
        self.include_bias = include_bias
        self._combos: list[tuple[int, ...]] | None = None

    def fit(self, X: np.ndarray) -> "PolynomialFeatures":
        X = _as_2d(X)
        d = X.shape[1]
        combos: list[tuple[int, ...]] = []
        if self.include_bias:
            combos.append(())
        comb = combinations if self.interaction_only else combinations_with_replacement
        for deg in range(1, self.degree + 1):
            combos.extend(comb(range(d), deg))
        self._combos = combos
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self._combos is None:
            raise RuntimeError("PolynomialFeatures is not fitted")
        X = _as_2d(X)
        n = X.shape[0]
        out = np.empty((n, len(self._combos)))
        for j, combo in enumerate(self._combos):
            if not combo:
                out[:, j] = 1.0
            else:
                col = X[:, combo[0]].copy()
                for idx in combo[1:]:
                    col *= X[:, idx]
                out[:, j] = col
        return out

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def feature_groups(self, n_features: int) -> list[tuple[int, ...]]:
        """Map each output column to the input feature indices it involves.

        Used to aggregate polynomial-term coefficients back onto the
        original knobs when ranking importances.
        """
        if self._combos is None:
            self.fit(np.zeros((1, n_features)))
        assert self._combos is not None
        return [tuple(sorted(set(c))) for c in self._combos]
