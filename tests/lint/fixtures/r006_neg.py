"""True negatives for R006: failures are recorded or contained narrowly."""


def narrow_handler(fn):
    try:
        return fn()
    except ValueError:
        return float("nan")


def records_failure(fn, log):
    try:
        return fn()
    except Exception as exc:
        log.append(str(exc))
        return None


def narrow_pass_is_fine(fn):
    try:
        return fn()
    except KeyError:
        pass
    return None
