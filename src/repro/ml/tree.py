"""CART regression trees.

The tree exposes its full structure (feature/threshold/children/value
arrays) because downstream algorithms need more than predictions:

- Gini-score knob ranking counts per-feature splits (Tuneful, paper §3.1),
- fANOVA decomposes the tree's variance by marginalizing subsets of
  features over the leaf partition (Hutter et al., 2014),
- SMAC's surrogate needs per-tree predictions to form an ensemble variance.

Two split-search implementations coexist, selected by ``accelerated``
(default on): a scalar reference that argsorts every candidate feature
at every node, and a fast path that sorts each feature once per tree and
propagates the order down via stable partitions, scanning all candidate
features of a node in one cumulative-sum matrix pass.  Both center the
node labels before the prefix-sum score whenever the labels' common
offset dwarfs their in-node spread (large offsets would otherwise
cancel catastrophically in ``sum**2/n`` arithmetic; well-scaled labels
keep the historical arithmetic bit-for-bit) and both produce
byte-identical trees — proven in ``tests/ml/test_tree_bit_identity.py``.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.perf.treefast import full_sort_orders

_NO_CHILD = -1
#: Minimum SSE reduction for a split to be accepted.
_MIN_GAIN = 1e-12
#: Offset-to-spread ratio beyond which the split scan centers the labels.
_CENTERING_RATIO = 1e4


def _needs_centering(y: np.ndarray) -> bool:
    """True when the node labels' common offset dwarfs their spread.

    The split score compares ``sum**2 / count`` terms whose *differences*
    shrink quadratically in the offset-to-spread ratio: at ratio r the
    score difference keeps roughly ``16 - 2*log10(r)`` significant
    digits, so beyond ~1e4 (e.g. throughput labels around 1e8 with
    noise around 1e2) the split signal drowns in cancellation and the
    scan must run on centered labels.  Below the threshold the score
    difference still carries >= 8 digits, and keeping the uncentered
    arithmetic preserves the reference trajectories bit-for-bit.
    """
    spread = float(y.max()) - float(y.min())
    return abs(float(y.mean())) > _CENTERING_RATIO * spread


class DecisionTreeRegressor:
    """A binary regression tree minimizing squared error.

    Parameters
    ----------
    max_depth:
        Maximum tree depth; ``None`` grows until leaves are pure or
        ``min_samples_split`` stops growth.
    min_samples_split:
        Minimum samples required to attempt a split.
    min_samples_leaf:
        Minimum samples in each child of a split.
    max_features:
        Number of features examined per split: ``None`` (all), an int,
        a float fraction, or ``"sqrt"``.  Random forests use ``"sqrt"`` or
        a fraction to decorrelate trees.
    seed:
        Seed for the feature subsampling RNG.
    accelerated:
        Use the presorted, matrix-scan split search (default).  Produces
        the same tree byte-for-byte as the scalar reference path.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = None,
        seed: int | None = None,
        accelerated: bool = True,
    ) -> None:
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.accelerated = accelerated

        # Flat tree structure (filled by fit).
        self.feature: np.ndarray | None = None
        self.threshold: np.ndarray | None = None
        self.left: np.ndarray | None = None
        self.right: np.ndarray | None = None
        self.value: np.ndarray | None = None
        self.n_node_samples: np.ndarray | None = None
        self.impurity_decrease: np.ndarray | None = None
        #: Leaf node id of each *training* sample (filled by fit); lets
        #: ensembles reuse the fit-time partition for in-sample
        #: prediction instead of re-descending the tree.
        self.train_node_ids_: np.ndarray | None = None
        self.n_features_: int = 0

    # ------------------------------------------------------------------
    def _n_candidate_features(self, d: int) -> int:
        mf = self.max_features
        if mf is None:
            return d
        if mf == "sqrt":
            return max(1, int(math.sqrt(d)))
        if isinstance(mf, float):
            if not 0.0 < mf <= 1.0:
                raise ValueError("float max_features must be in (0, 1]")
            return max(1, int(round(mf * d)))
        if isinstance(mf, int):
            if mf < 1:
                raise ValueError("int max_features must be >= 1")
            return min(mf, d)
        raise ValueError(f"invalid max_features: {mf!r}")

    @staticmethod
    def _best_split_for_feature(
        x: np.ndarray, y: np.ndarray, min_leaf: int
    ) -> tuple[float, float]:
        """Return (SSE reduction, threshold) of the best split on one feature.

        Uses prefix sums over the sorted column: for a split after position
        ``i`` (1-based count), reduction = sum_sq_total - (left SSE + right
        SSE), which only depends on partial sums of y and y^2.  When the
        labels carry a common offset far above their spread (see
        :func:`_needs_centering`) they are centered on the node mean
        first — centering changes no SSE reduction mathematically but
        removes the offset that would otherwise cancel away the score
        differences.
        """
        if _needs_centering(y):
            y = y - y.mean()
        order = np.argsort(x, kind="stable")
        xs, ys = x[order], y[order]
        n = len(ys)
        csum = np.cumsum(ys)
        total = csum[-1]
        # Candidate split positions: between i-1 and i where x changes.
        positions = np.arange(min_leaf, n - min_leaf + 1)
        if len(positions) == 0:
            return 0.0, math.nan
        valid = xs[positions - 1] < xs[positions]
        positions = positions[valid]
        if len(positions) == 0:
            return 0.0, math.nan
        left_sum = csum[positions - 1]
        right_sum = total - left_sum
        n_left = positions.astype(float)
        n_right = n - n_left
        # Maximizing SSE reduction == maximizing sum of squared child means
        # weighted by child size (total SS is constant).
        score = left_sum**2 / n_left + right_sum**2 / n_right
        best = int(np.argmax(score))
        pos = positions[best]
        base = total**2 / n
        reduction = float(score[best] - base)
        threshold = float(0.5 * (xs[pos - 1] + xs[pos]))
        return reduction, threshold

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sort_order: np.ndarray | None = None,
    ) -> "DecisionTreeRegressor":
        """Fit the tree.

        ``sort_order`` is an optional ``(d, n)`` matrix of per-feature
        stable sort orders (see :func:`repro.perf.treefast.full_sort_orders`)
        that ensembles precompute so bootstrap resamples and boosting
        rounds never re-sort the float columns.  Only consulted on the
        accelerated path; when omitted it is computed here, once.
        """
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if len(X) != len(y):
            raise ValueError("X and y length mismatch")
        if len(X) == 0:
            raise ValueError("cannot fit on empty data")
        self.n_features_ = X.shape[1]
        if self.accelerated:
            return self._fit_fast(X, y, sort_order)
        return self._fit_scalar(X, y)

    def _fit_scalar(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        """Reference implementation: per-node, per-feature argsort."""
        n, d = X.shape
        rng = np.random.default_rng(self.seed)

        feature: list[int] = []
        threshold: list[float] = []
        left: list[int] = []
        right: list[int] = []
        value: list[float] = []
        n_node: list[int] = []
        decrease: list[float] = []
        node_of = np.zeros(n, dtype=int)

        k_features = self._n_candidate_features(d)

        def new_node(idx: np.ndarray) -> int:
            node = len(feature)
            feature.append(_NO_CHILD)
            threshold.append(math.nan)
            left.append(_NO_CHILD)
            right.append(_NO_CHILD)
            value.append(float(y[idx].mean()))
            n_node.append(len(idx))
            decrease.append(0.0)
            return node

        # Iterative depth-first construction to avoid recursion limits.
        root = new_node(np.arange(n))
        stack: list[tuple[int, np.ndarray, int]] = [(root, np.arange(n), 0)]
        while stack:
            node, idx, depth = stack.pop()
            if len(idx) < self.min_samples_split:
                continue
            if self.max_depth is not None and depth >= self.max_depth:
                continue
            y_node = y[idx]
            if np.all(y_node == y_node[0]):
                continue
            if k_features < d:
                candidates = rng.choice(d, size=k_features, replace=False)
            else:
                candidates = np.arange(d)
            best_gain, best_feat, best_thr = 0.0, -1, math.nan
            for f in candidates:
                gain, thr = self._best_split_for_feature(
                    X[idx, f], y_node, self.min_samples_leaf
                )
                if gain > best_gain and not math.isnan(thr):
                    best_gain, best_feat, best_thr = gain, int(f), thr
            if best_feat < 0 or best_gain <= _MIN_GAIN:
                continue
            mask = X[idx, best_feat] <= best_thr
            left_idx, right_idx = idx[mask], idx[~mask]
            if len(left_idx) < self.min_samples_leaf or len(right_idx) < self.min_samples_leaf:
                continue
            feature[node] = best_feat
            threshold[node] = best_thr
            decrease[node] = best_gain
            l_node = new_node(left_idx)
            r_node = new_node(right_idx)
            left[node] = l_node
            right[node] = r_node
            node_of[left_idx] = l_node
            node_of[right_idx] = r_node
            stack.append((l_node, left_idx, depth + 1))
            stack.append((r_node, right_idx, depth + 1))

        self._store(feature, threshold, left, right, value, n_node, decrease, node_of)
        return self

    def _fit_fast(
        self, X: np.ndarray, y: np.ndarray, sort_order: np.ndarray | None
    ) -> "DecisionTreeRegressor":
        """Presorted split search with a vectorized multi-feature scan.

        Mirrors :meth:`_fit_scalar` node for node (same DFS order, same
        RNG stream, same tie-breaking) but never argsorts inside a node:
        the root's per-feature sort orders are partitioned stably into
        the children, which preserves sortedness, and all candidate
        features of a node are scanned in one cumulative-sum matrix.
        The node's samples are always in ascending original-row order,
        so stable partition exactly reproduces the scalar path's
        stable per-node argsort.
        """
        n, d = X.shape
        rng = np.random.default_rng(self.seed)
        min_leaf = self.min_samples_leaf

        feature: list[int] = []
        threshold: list[float] = []
        left: list[int] = []
        right: list[int] = []
        value: list[float] = []
        n_node: list[int] = []
        decrease: list[float] = []
        node_of = np.zeros(n, dtype=int)

        k_features = self._n_candidate_features(d)
        all_features = np.arange(d)
        if sort_order is None:
            sort_order = full_sort_orders(X)
        # Scratch flag buffer for the stable partitions (reset after use).
        flags = np.zeros(n, dtype=bool)

        def new_node(idx: np.ndarray) -> int:
            node = len(feature)
            feature.append(_NO_CHILD)
            threshold.append(math.nan)
            left.append(_NO_CHILD)
            right.append(_NO_CHILD)
            value.append(float(y[idx].mean()))
            n_node.append(len(idx))
            decrease.append(0.0)
            return node

        root = new_node(np.arange(n))
        stack: list[tuple[int, np.ndarray, np.ndarray, int]] = [
            (root, np.arange(n), sort_order, 0)
        ]
        while stack:
            node, idx, orders, depth = stack.pop()
            m = len(idx)
            if m < self.min_samples_split:
                continue
            if self.max_depth is not None and depth >= self.max_depth:
                continue
            y_node = y[idx]
            if np.all(y_node == y_node[0]):
                continue
            if k_features < d:
                candidates = rng.choice(d, size=k_features, replace=False)
            else:
                candidates = all_features
            positions = np.arange(min_leaf, m - min_leaf + 1)
            if len(positions) == 0:
                continue
            # One (k, m) pass over all candidate features: rows are the
            # node's samples in that feature's sorted order.
            rows = orders[candidates]
            xs = X[rows, candidates[:, None]]
            ys = y[rows]
            if _needs_centering(y_node):
                ys = ys - y_node.mean()
            csum = np.cumsum(ys, axis=1)
            total = csum[:, -1]
            valid = xs[:, positions - 1] < xs[:, positions]
            left_sum = csum[:, positions - 1]
            right_sum = total[:, None] - left_sum
            n_left = positions.astype(float)
            n_right = m - n_left
            score = left_sum**2 / n_left + right_sum**2 / n_right
            per_row = np.arange(len(candidates))
            best_pos = np.argmax(np.where(valid, score, -np.inf), axis=1)
            has_split = valid[per_row, best_pos]
            # The reference arm squares ``total`` as a numpy *scalar*,
            # which routes through libm pow and can land one ULP away
            # from the exact product that the array square (x*x)
            # produces.  Near-tie feature choices hinge on those low
            # bits, so reproduce the scalar power op element by element.
            base = np.array([t**2 for t in total.tolist()]) / m
            gains = np.where(has_split, score[per_row, best_pos] - base, -np.inf)
            j = int(np.argmax(gains))
            best_gain = float(gains[j])
            if best_gain <= _MIN_GAIN:
                continue
            pos = positions[best_pos[j]]
            best_feat = int(candidates[j])
            best_thr = float(0.5 * (xs[j, pos - 1] + xs[j, pos]))
            mask = X[idx, best_feat] <= best_thr
            left_idx, right_idx = idx[mask], idx[~mask]
            if len(left_idx) < min_leaf or len(right_idx) < min_leaf:
                continue
            # Stable partition of every feature's sorted order into the
            # children: each row keeps exactly len(left_idx) members, so
            # the boolean gather reshapes back to (d, child size).
            flags[left_idx] = True
            member = flags[orders]
            left_orders = orders[member].reshape(d, len(left_idx))
            right_orders = orders[~member].reshape(d, len(right_idx))
            flags[left_idx] = False
            feature[node] = best_feat
            threshold[node] = best_thr
            decrease[node] = best_gain
            l_node = new_node(left_idx)
            r_node = new_node(right_idx)
            left[node] = l_node
            right[node] = r_node
            node_of[left_idx] = l_node
            node_of[right_idx] = r_node
            stack.append((l_node, left_idx, left_orders, depth + 1))
            stack.append((r_node, right_idx, right_orders, depth + 1))

        self._store(feature, threshold, left, right, value, n_node, decrease, node_of)
        return self

    def _store(
        self,
        feature: list[int],
        threshold: list[float],
        left: list[int],
        right: list[int],
        value: list[float],
        n_node: list[int],
        decrease: list[float],
        node_of: np.ndarray,
    ) -> None:
        self.feature = np.array(feature, dtype=int)
        self.threshold = np.array(threshold, dtype=float)
        self.left = np.array(left, dtype=int)
        self.right = np.array(right, dtype=int)
        self.value = np.array(value, dtype=float)
        self.n_node_samples = np.array(n_node, dtype=int)
        self.impurity_decrease = np.array(decrease, dtype=float)
        self.train_node_ids_ = node_of

    # ------------------------------------------------------------------
    def _check_fitted(self) -> None:
        if self.feature is None:
            raise RuntimeError("tree is not fitted")

    @property
    def n_nodes(self) -> int:
        self._check_fitted()
        assert self.feature is not None
        return len(self.feature)

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Return the leaf index each sample falls into."""
        self._check_fitted()
        assert self.feature is not None and self.left is not None
        assert self.right is not None and self.threshold is not None
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[None, :]
        n = len(X)
        nodes = np.zeros(n, dtype=int)
        active = self.feature[nodes] >= 0
        while np.any(active):
            idx = np.nonzero(active)[0]
            cur = nodes[idx]
            feats = self.feature[cur]
            go_left = X[idx, feats] <= self.threshold[cur]
            nodes[idx[go_left]] = self.left[cur[go_left]]
            nodes[idx[~go_left]] = self.right[cur[~go_left]]
            active = self.feature[nodes] >= 0
        return nodes

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        assert self.value is not None
        return self.value[self.apply(X)]

    # ------------------------------------------------------------------
    # structure accessors used by importance measurements
    # ------------------------------------------------------------------
    def split_counts(self) -> np.ndarray:
        """Number of internal-node splits per feature (Gini score basis)."""
        self._check_fitted()
        assert self.feature is not None
        counts = np.zeros(self.n_features_, dtype=float)
        for f in self.feature:
            if f >= 0:
                counts[f] += 1
        return counts

    def feature_importances(self) -> np.ndarray:
        """Normalized total SSE decrease attributable to each feature."""
        self._check_fitted()
        assert self.feature is not None and self.impurity_decrease is not None
        imp = np.zeros(self.n_features_, dtype=float)
        for f, dec in zip(self.feature, self.impurity_decrease):
            if f >= 0:
                imp[f] += dec
        total = imp.sum()
        return imp / total if total > 0 else imp

    def leaf_partition(self, bounds: np.ndarray) -> list[tuple[np.ndarray, float]]:
        """Enumerate leaves as (per-feature interval box, leaf value) pairs.

        ``bounds`` is an ``(d, 2)`` array of feature [lower, upper) limits.
        Used by fANOVA to integrate marginal predictions exactly.
        """
        self._check_fitted()
        assert self.feature is not None and self.left is not None
        assert self.right is not None and self.threshold is not None
        assert self.value is not None
        bounds = np.asarray(bounds, dtype=float)
        if bounds.shape != (self.n_features_, 2):
            raise ValueError(f"bounds must be ({self.n_features_}, 2)")
        result: list[tuple[np.ndarray, float]] = []
        stack: list[tuple[int, np.ndarray]] = [(0, bounds.copy())]
        while stack:
            node, box = stack.pop()
            f = self.feature[node]
            if f < 0:
                result.append((box, float(self.value[node])))
                continue
            thr = self.threshold[node]
            left_box = box.copy()
            left_box[f, 1] = min(left_box[f, 1], thr)
            right_box = box.copy()
            right_box[f, 0] = max(right_box[f, 0], thr)
            if left_box[f, 0] < left_box[f, 1]:
                stack.append((self.left[node], left_box))
            if right_box[f, 0] < right_box[f, 1]:
                stack.append((self.right[node], right_box))
        return result

    def get_params(self) -> dict[str, Any]:
        """Constructor parameters (for cloning in ensembles)."""
        return {
            "max_depth": self.max_depth,
            "min_samples_split": self.min_samples_split,
            "min_samples_leaf": self.min_samples_leaf,
            "max_features": self.max_features,
            "seed": self.seed,
            "accelerated": self.accelerated,
        }
