"""Evaluation analyses: sensitivity, overhead, and report formatting."""

from repro.analysis.overhead import overhead_at_checkpoints
from repro.analysis.report import format_table
from repro.analysis.sensitivity import SensitivityPoint, sensitivity_analysis

__all__ = [
    "SensitivityPoint",
    "format_table",
    "overhead_at_checkpoints",
    "sensitivity_analysis",
]
