"""Text, JSON, and SARIF reporters for lint results."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.lint.engine import FileReport
from repro.lint.findings import Finding
from repro.lint.registry import RULES

#: Schema version of the JSON report (bump on breaking field changes).
JSON_SCHEMA_VERSION = 1


def _all_findings(reports: Iterable[FileReport]) -> list[Finding]:
    findings = [f for report in reports for f in report.findings]
    findings.sort(key=Finding.sort_key)
    return findings


def render_text(reports: list[FileReport]) -> str:
    """Human-readable report: one ``path:line:col: RULE message`` per line
    plus a summary footer."""
    findings = _all_findings(reports)
    n_suppressed = sum(len(r.suppressed) for r in reports)
    lines = [
        f"{f.path}:{f.line}:{f.col}: {f.rule} {f.message}" for f in findings
    ]
    if findings:
        noun = "finding" if len(findings) == 1 else "findings"
        lines.append("")
        lines.append(
            f"Found {len(findings)} {noun} in {len(reports)} files checked "
            f"({n_suppressed} suppressed)."
        )
    else:
        lines.append(
            f"Clean: {len(reports)} files checked, 0 findings "
            f"({n_suppressed} suppressed)."
        )
    return "\n".join(lines)


def render_json(reports: list[FileReport]) -> str:
    """Machine-readable report with a stable schema.

    Top-level keys: ``version``, ``files_checked``, ``counts`` (total,
    suppressed, per-rule breakdown), ``findings`` (list of objects with
    ``rule``/``path``/``line``/``col``/``message``).
    """
    findings = _all_findings(reports)
    per_rule: dict[str, int] = {}
    for finding in findings:
        per_rule[finding.rule] = per_rule.get(finding.rule, 0) + 1
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": len(reports),
        "counts": {
            "total": len(findings),
            "suppressed": sum(len(r.suppressed) for r in reports),
            "by_rule": dict(sorted(per_rule.items())),
        },
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=False)


#: SARIF 2.1.0 — the schema GitHub code scanning ingests for PR annotations.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Parse errors block analysis entirely; everything else is a contract
#: violation CI treats as a failure but annotates as a warning so the
#: diff view stays readable.
_SARIF_LEVELS = {"E001": "error"}


def _engine_version() -> str:
    from repro.lint import ENGINE_VERSION  # local import: no cycle at load

    return ENGINE_VERSION


def _sarif_uri(path: str) -> str:
    """Repo-relative forward-slash URI (SARIF wants URIs, not OS paths)."""
    p = Path(path)
    if p.is_absolute():
        try:
            p = p.relative_to(Path.cwd())
        except ValueError:
            pass
    return p.as_posix()


def render_sarif(reports: list[FileReport]) -> str:
    """SARIF 2.1.0 report for GitHub code-scanning PR annotations.

    One run, one driver (``reprolint``), one rule descriptor per rule
    that actually fired, one result per finding.  Suppressed findings
    are emitted with a SARIF ``suppressions`` entry so the annotation
    history stays auditable without failing the scan.
    """
    findings = _all_findings(reports)
    suppressed = sorted(
        (f for report in reports for f in report.suppressed), key=Finding.sort_key
    )

    fired = sorted({f.rule for f in findings} | {f.rule for f in suppressed})
    rule_index = {rule_id: i for i, rule_id in enumerate(fired)}
    rules = []
    for rule_id in fired:
        cls = RULES.get(rule_id)
        descriptor: dict[str, object] = {
            "id": rule_id,
            "name": getattr(cls, "name", rule_id) if cls else rule_id,
            "defaultConfiguration": {
                "level": _SARIF_LEVELS.get(rule_id, "warning")
            },
        }
        if cls is not None and getattr(cls, "summary", ""):
            descriptor["shortDescription"] = {"text": cls.summary}
            descriptor["helpUri"] = (
                "https://github.com/repro/repro/blob/main/docs/LINTING.md"
                f"#{rule_id.lower()}"
            )
        rules.append(descriptor)

    def result_for(finding: Finding, is_suppressed: bool) -> dict[str, object]:
        result: dict[str, object] = {
            "ruleId": finding.rule,
            "ruleIndex": rule_index[finding.rule],
            "level": _SARIF_LEVELS.get(finding.rule, "warning"),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _sarif_uri(finding.path),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": max(1, finding.line),
                            "startColumn": max(1, finding.col),
                        },
                    }
                }
            ],
        }
        if is_suppressed:
            result["suppressions"] = [{"kind": "inSource"}]
        return result

    payload = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "version": _engine_version(),
                        "informationUri": (
                            "https://github.com/repro/repro/blob/main/docs/LINTING.md"
                        ),
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": "file:///"},
                },
                "results": [
                    *(result_for(f, False) for f in findings),
                    *(result_for(f, True) for f in suppressed),
                ],
                "columnKind": "unicodeCodePoints",
            }
        ],
    }
    return json.dumps(payload, indent=2)


REPORTERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}
