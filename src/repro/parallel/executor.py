"""The process-pool executor behind every experiment harness.

Scheduling rules:

- ``n_workers <= 1`` (or a single spec) runs everything in-process — no
  pickling, no pool, identical results.
- Specs that cannot be pickled (e.g. a closure-based optimizer factory)
  are detected up front and run in-process while the rest of the batch
  uses the pool; callers never have to care.
- A worker exception is caught *inside* the worker and returned as a
  failed :class:`RunResult`; a hard worker death (``os._exit``, OOM kill)
  breaks the pool, which marks only the affected runs failed.  Failed
  runs are retried once on a freshly spawned pool after a short jittered
  backoff.  The surviving runs of the study are never aborted.
"""

from __future__ import annotations

import pickle
import time
import traceback
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.parallel.spec import RunResult, RunSpec
from repro.parallel.telemetry import write_telemetry


class _TimedObjective:
    """Delegating objective that accounts evaluation wall-time."""

    def __init__(self, inner) -> None:
        self.inner = inner
        self.eval_seconds = 0.0

    def __call__(self, config):
        t0 = time.perf_counter()
        try:
            return self.inner(config)
        finally:
            self.eval_seconds += time.perf_counter() - t0

    def failure_fallback_score(self) -> float:
        return self.inner.failure_fallback_score()

    def default_score(self) -> float:
        return self.inner.default_score()


def execute_run(spec: RunSpec) -> RunResult:
    """Execute one spec in the current process; never raises.

    Any exception — a crashing objective, a singular GP fit, a bad
    optimizer suggestion — is converted into a failed :class:`RunResult`
    carrying the traceback tail, so one diverging run cannot take down a
    whole study.
    """
    t0 = time.perf_counter()
    try:
        # Imported here so a worker only pays for what the spec needs.
        from repro.tuning.objective import DatabaseObjective
        from repro.tuning.session import TuningSession

        objective = spec.objective
        if objective is None:
            from repro.dbms.server import MySQLServer

            server = MySQLServer(spec.workload, spec.instance, seed=spec.server_seed)
            objective = DatabaseObjective(server, spec.space)
        timed = _TimedObjective(objective)
        optimizer = spec.optimizer
        if optimizer is None:
            optimizer = spec.optimizer_factory(spec.space, spec.optimizer_seed)
        session = TuningSession(
            timed,
            optimizer,
            spec.space,
            max_iterations=spec.n_iterations,
            n_initial=spec.n_initial,
            seed=spec.session_seed,
            warm_start=spec.warm_start,
        )
        history = session.run()
        return RunResult(
            run_index=spec.run_index,
            history=history,
            wall_seconds=time.perf_counter() - t0,
            suggest_seconds=float(sum(o.suggest_seconds for o in history)),
            eval_seconds=timed.eval_seconds,
            simulated_hours=session.total_simulated_hours(),
            n_iterations=len(history),
            n_failed_evals=sum(1 for o in history if o.failed),
            tags=dict(spec.tags),
        )
    except Exception as exc:  # noqa: BLE001 — the whole point is containment
        tb = traceback.format_exc(limit=3)
        return RunResult(
            run_index=spec.run_index,
            failed=True,
            error=f"{type(exc).__name__}: {exc}\n{tb}",
            wall_seconds=time.perf_counter() - t0,
            tags=dict(spec.tags),
        )


def _picklable(spec: RunSpec) -> bool:
    try:
        pickle.dumps(spec)
        return True
    except Exception:  # noqa: BLE001 — anything unpicklable runs inline
        return False


class ParallelExecutor:
    """Runs batches of :class:`RunSpec` with retry and telemetry."""

    def __init__(
        self,
        n_workers: int = 1,
        max_retries: int = 1,
        telemetry_path: str | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.n_workers = n_workers
        self.max_retries = max_retries
        self.telemetry_path = telemetry_path

    # ------------------------------------------------------------------
    def run(self, specs: list[RunSpec]) -> list[RunResult]:
        """Execute all specs; results come back in spec order."""
        results: dict[int, RunResult] = {}
        pending = list(specs)
        attempt = 0
        while pending:
            if attempt > 0:
                time.sleep(self._jitter(attempt))
            batch = self._run_batch(pending)
            retry: list[RunSpec] = []
            for spec, result in zip(pending, batch):
                result.attempts = attempt + 1
                results[id(spec)] = result
                if result.failed and attempt < self.max_retries:
                    retry.append(spec)
            pending = retry
            attempt += 1
        ordered = [results[id(spec)] for spec in specs]
        if self.telemetry_path is not None:
            write_telemetry(self.telemetry_path, ordered)
        return ordered

    # ------------------------------------------------------------------
    def _run_batch(self, specs: list[RunSpec]) -> list[RunResult]:
        workers = min(self.n_workers, len(specs))
        if workers <= 1:
            return [execute_run(spec) for spec in specs]
        inline = [spec for spec in specs if not _picklable(spec)]
        inline_ids = {id(spec) for spec in inline}
        pooled = [spec for spec in specs if id(spec) not in inline_ids]
        outcomes: dict[int, RunResult] = {}
        if pooled:
            # A fresh pool per batch: a worker death in a previous attempt
            # must not poison this one (the "jittered respawn").
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {id(spec): pool.submit(execute_run, spec) for spec in pooled}
                for spec in pooled:
                    try:
                        outcomes[id(spec)] = futures[id(spec)].result()
                    except Exception as exc:  # noqa: BLE001 — broken pool, lost worker
                        outcomes[id(spec)] = RunResult(
                            run_index=spec.run_index,
                            failed=True,
                            error=f"worker died: {type(exc).__name__}: {exc}",
                            tags=dict(spec.tags),
                        )
        for spec in inline:
            outcomes[id(spec)] = execute_run(spec)
        return [outcomes[id(spec)] for spec in specs]

    def _jitter(self, attempt: int) -> float:
        """Deterministic short backoff before respawning a pool."""
        rng = np.random.default_rng(0xC0FFEE + attempt)
        return float(rng.uniform(0.05, 0.25))
