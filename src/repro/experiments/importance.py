"""Knob-selection experiments: Table 6 / Figure 3 and Figure 4 (paper §5)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.sensitivity import SensitivityPoint, sensitivity_analysis
from repro.dbms.catalog import mysql_knob_space
from repro.experiments.runner import median_improvement, run_sessions
from repro.experiments.scale import Scale, bench_scale
from repro.experiments.spaces import workload_pool
from repro.parallel import RegistryOptimizerFactory
from repro.selection import MEASUREMENT_REGISTRY
from repro.tuning.metrics import average_ranks

#: The measurements of Table 2, in the paper's reporting order.
MEASUREMENTS = ("gini", "lasso", "fanova", "ablation", "shap")

#: Reduced estimator budgets the harnesses use at bench scale.
FAST_MEASUREMENT_KWARGS: dict[str, dict] = {
    "shap": {"n_targets": 10, "n_permutations": 5},
    "ablation": {"n_targets": 6},
    "gini": {"n_trees": 24},
    "fanova": {"n_trees": 12},
    "lasso": {"n_alphas": 10},
}


@dataclass
class ImportanceRow:
    """One Figure 3 bar: tuning outcome on one measurement's knob set."""

    workload: str
    measurement: str
    top_k: int
    optimizer: str
    improvement: float


@dataclass
class ImportanceComparison:
    """Figure 3 bars plus the Table 6 overall ranking."""

    rows: list[ImportanceRow]
    overall_ranking: dict[str, float]
    top_knobs: dict[tuple[str, str], list[str]]


def _optimizer_factory(name: str) -> RegistryOptimizerFactory:
    if name not in ("vanilla_bo", "ddpg"):
        raise ValueError(f"unsupported optimizer {name!r}")
    return RegistryOptimizerFactory(name)


def importance_comparison(
    workloads: tuple[str, ...] = ("SYSBENCH", "JOB"),
    measurements: tuple[str, ...] = MEASUREMENTS,
    top_ks: tuple[int, ...] = (5, 20),
    optimizers: tuple[str, ...] = ("vanilla_bo", "ddpg"),
    scale: Scale | None = None,
    instance: str = "B",
    seed: int = 17,
    n_workers: int = 1,
) -> ImportanceComparison:
    """Tune over each measurement's top-k knob sets (Figure 3, Table 6).

    For every (workload, measurement) pair the knob ranking is computed
    from the shared LHS pool; each top-k subspace is then tuned by each
    optimizer and the median improvement over the default reported.
    Table 6's overall ranking averages each measurement's rank across all
    (workload, top-k, optimizer) settings.
    """
    scale = scale or bench_scale()
    full = mysql_knob_space(instance, seed=seed)
    rows: list[ImportanceRow] = []
    top_knobs: dict[tuple[str, str], list[str]] = {}
    for workload in workloads:
        configs, scores, default_score = workload_pool(
            workload, instance, scale.n_pool_samples, seed
        )
        rankings = {}
        for name in measurements:
            kwargs = FAST_MEASUREMENT_KWARGS.get(name, {})
            m = MEASUREMENT_REGISTRY[name](full, seed=seed, **kwargs)
            rankings[name] = m.rank(configs, scores, default_score=default_score)
            top_knobs[(workload, name)] = rankings[name].top(max(top_ks))
        for name in measurements:
            for k in top_ks:
                subspace = full.subspace(rankings[name].top(k), seed=seed)
                for opt_name in optimizers:
                    histories = run_sessions(
                        workload,
                        subspace,
                        _optimizer_factory(opt_name),
                        n_runs=scale.n_runs,
                        n_iterations=scale.n_iterations,
                        n_initial=scale.n_initial,
                        instance=instance,
                        seed=seed,
                        n_workers=n_workers,
                    )
                    rows.append(
                        ImportanceRow(
                            workload=workload,
                            measurement=name,
                            top_k=k,
                            optimizer=opt_name,
                            improvement=median_improvement(histories, workload, instance),
                        )
                    )

    per_setting: dict[str, list[float]] = {name: [] for name in measurements}
    settings = sorted({(r.workload, r.top_k, r.optimizer) for r in rows})
    for setting in settings:
        for name in measurements:
            value = next(
                r.improvement
                for r in rows
                if r.measurement == name and (r.workload, r.top_k, r.optimizer) == setting
            )
            per_setting[name].append(value)
    ranking = average_ranks(per_setting, higher_is_better=True)
    return ImportanceComparison(rows=rows, overall_ranking=ranking, top_knobs=top_knobs)


def importance_sensitivity(
    workload: str = "SYSBENCH",
    measurements: tuple[str, ...] = MEASUREMENTS,
    sample_sizes: tuple[int, ...] = (100, 200, 400, 800),
    n_repeats: int = 3,
    top_k: int = 5,
    scale: Scale | None = None,
    instance: str = "B",
    seed: int = 17,
) -> dict[str, list[SensitivityPoint]]:
    """Figure 4: top-k stability (IoU) and surrogate R² vs training size."""
    scale = scale or bench_scale()
    full = mysql_knob_space(instance, seed=seed)
    configs, scores, default_score = workload_pool(
        workload, instance, scale.n_pool_samples, seed
    )
    out: dict[str, list[SensitivityPoint]] = {}
    for name in measurements:
        kwargs = FAST_MEASUREMENT_KWARGS.get(name, {})
        out[name] = sensitivity_analysis(
            lambda s, _n=name, _kw=kwargs: MEASUREMENT_REGISTRY[_n](full, seed=s, **_kw),
            configs,
            scores,
            default_score,
            sample_sizes=sample_sizes,
            n_repeats=n_repeats,
            top_k=top_k,
            seed=seed,
        )
    return out
