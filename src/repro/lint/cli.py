"""Command-line entry point: ``python -m repro.lint [paths] [options]``.

Exit codes: 0 = clean, 1 = findings reported, 2 = usage/configuration
error.  The CLI is stdlib-only (``argparse``) so the CI lint gate needs no
third-party installs.

v2 runs the whole-program passes (R010–R014) by default, with per-file
analysis results cached under ``.reprolint_cache/`` keyed by content
hash.  ``--no-program`` restores the v1 per-file-only behaviour;
``--baseline``/``--write-baseline`` let a new rule land against an
existing codebase without a mass-suppression commit.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Sequence

import repro.lint.program  # noqa: F401 — registers the R010-R014 program rules
from repro.lint.config import LintConfig, load_config
from repro.lint.engine import Linter
from repro.lint.registry import rule_catalog
from repro.lint.reporters import REPORTERS

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def _split_codes(values: list[str] | None) -> list[str]:
    out: list[str] = []
    for value in values or []:
        out.extend(code.strip() for code in value.split(",") if code.strip())
    return out


def _default_jobs() -> int:
    return max(1, min(8, os.cpu_count() or 1))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based determinism & contract linter for the repro codebase. "
            "Checks that RNGs are threaded from the SeedSequence tree, that "
            "optimizer/estimator contracts hold, and that the usual "
            "silent-nondeterminism footguns stay out of the tree. "
            "Whole-program passes (seed provenance, checkpoint schema "
            "symmetry, cross-module clock flow) run by default."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=sorted(REPORTERS),
        default="text",
        help="output format (default: text; sarif for GitHub annotations)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULES",
        help="comma-separated rule ids to run exclusively (repeatable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="RULES",
        help="comma-separated rule ids to skip (repeatable)",
    )
    parser.add_argument(
        "--config",
        metavar="PYPROJECT",
        help="explicit pyproject.toml to read [tool.reprolint] from",
    )
    parser.add_argument(
        "--no-config",
        action="store_true",
        help="ignore pyproject.toml configuration entirely",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    # -- whole-program analysis ----------------------------------------
    parser.add_argument(
        "--no-program",
        action="store_true",
        help="per-file rules only; skip the whole-program passes (R010+)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="re-analyze every file; neither read nor write the cache",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="analysis cache location (default: .reprolint_cache)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        default=None,
        help="worker processes for cold-file analysis (default: min(8, cpus))",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="suppress findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help="write current findings to FILE as the new baseline and exit 0",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, name, summary in rule_catalog():
            print(f"{rule_id}  {name}: {summary}")
        return EXIT_CLEAN

    try:
        if args.no_config:
            config = LintConfig()
        else:
            explicit = Path(args.config) if args.config else None
            if explicit is not None and not explicit.is_file():
                print(f"error: config file not found: {explicit}", file=sys.stderr)
                return EXIT_ERROR
            config = load_config(path=explicit)
        config = config.merged_with_cli(
            _split_codes(args.select), _split_codes(args.ignore)
        )
        Linter(config)  # validate rule ids before any analysis
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"error: path(s) not found: {', '.join(missing)}", file=sys.stderr)
        return EXIT_ERROR

    from repro.lint.program.baseline import Baseline
    from repro.lint.program.cache import DEFAULT_CACHE_DIR
    from repro.lint.program.driver import run_program_analysis

    baseline = None
    if args.baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load baseline: {exc}", file=sys.stderr)
            return EXIT_ERROR

    result = run_program_analysis(
        args.paths,
        config,
        cache_dir=args.cache_dir or DEFAULT_CACHE_DIR,
        use_cache=not args.no_cache,
        jobs=args.jobs if args.jobs is not None else _default_jobs(),
        baseline=baseline,
        program=not args.no_program,
    )

    if args.write_baseline:
        new_baseline = Baseline.from_findings(result.findings, result.sources)
        new_baseline.save(args.write_baseline)
        print(
            f"baseline: recorded {len(new_baseline.entries)} finding(s) "
            f"to {args.write_baseline}"
        )
        return EXIT_CLEAN

    print(REPORTERS[args.format](result.reports))
    if baseline is not None and result.baselined:
        print(
            f"baseline: {len(result.baselined)} finding(s) suppressed, "
            f"{result.stale_baseline_entries} stale entr(y/ies)",
            file=sys.stderr,
        )
    return EXIT_FINDINGS if result.findings else EXIT_CLEAN
