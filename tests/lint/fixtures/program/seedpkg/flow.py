"""R010/R011 positive and negative cases."""

import numpy as np

from seedpkg.seeds import derive_seed, unrelated_value


class BadTuner:
    def __init__(self, space, seed=None):
        self.space = space
        value = unrelated_value()
        # R010: a seed is in scope but the sink is fed something with no
        # provenance from it.
        self.rng = np.random.default_rng(value)


class GoodTuner:
    def __init__(self, space, seed=None):
        # negative: provenance flows through a helper in another module.
        self.rng = np.random.default_rng(derive_seed(seed))


class DroppingSampler:
    def __init__(self, seed=None):
        # R011: stored to an attribute no code in the package ever reads.
        self._stashed_seed = seed


class ForwardingSampler:
    def __init__(self, seed=None):
        # negative: forwarded to a sub-component.
        self.inner = GoodTuner((), seed=seed)


def checked_but_used(seed=None):
    # negative: the None-check plus a real use.
    if seed is None:
        seed = 7
    return np.random.default_rng(seed)
