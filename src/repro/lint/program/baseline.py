"""Baseline: accepted pre-existing findings that do not fail the build.

A baseline entry identifies a finding by ``(rule, path, content hash of
its source line, occurrence ordinal)`` — line *content*, not line
*number*, so unrelated edits above a finding do not resurrect it, while
editing the flagged line itself (or introducing a brand-new finding)
escapes the baseline and fails CI as it should.  The ordinal counts
same-content duplicates within one file in line order, so adding a
*second* ``def __init__(self, seed=None):`` with the same defect does
not hide behind the first one's entry.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.lint.findings import Finding

BASELINE_FORMAT_VERSION = 1

#: (rule, posix path, line fingerprint, occurrence ordinal)
Entry = tuple[str, str, str, int]


def _line_fingerprint(lines: list[str], lineno: int) -> str:
    """Short hash of the stripped source line a finding points at."""
    if 1 <= lineno <= len(lines):
        text = lines[lineno - 1].strip()
    else:
        text = ""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def _assign_ordinals(
    findings: list[Finding], sources: dict[str, list[str]]
) -> list[tuple[Finding, Entry]]:
    """Pair each finding (in line order) with its baseline entry."""
    counters: dict[tuple[str, str, str], int] = {}
    out: list[tuple[Finding, Entry]] = []
    for finding in sorted(findings, key=Finding.sort_key):
        lines = sources.get(finding.path, [])
        key = (
            finding.rule,
            str(Path(finding.path).as_posix()),
            _line_fingerprint(lines, finding.line),
        )
        ordinal = counters.get(key, 0)
        counters[key] = ordinal + 1
        out.append((finding, (*key, ordinal)))
    return out


class Baseline:
    """A set of accepted findings, serializable to a JSON file."""

    def __init__(self, entries: set[Entry] | None = None) -> None:
        self.entries: set[Entry] = set(entries or ())
        #: entries matched at least once this run (for staleness reports)
        self.used: set[Entry] = set()

    # ------------------------------------------------------------------
    def split(
        self, findings: list[Finding], sources: dict[str, list[str]]
    ) -> tuple[list[Finding], list[Finding]]:
        """Partition findings into ``(kept, baselined)``."""
        kept: list[Finding] = []
        baselined: list[Finding] = []
        for finding, entry in _assign_ordinals(findings, sources):
            if entry in self.entries:
                self.used.add(entry)
                baselined.append(finding)
            else:
                kept.append(finding)
        return kept, baselined

    @property
    def stale(self) -> set[Entry]:
        return self.entries - self.used

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        if data.get("format") != BASELINE_FORMAT_VERSION:
            raise ValueError(
                f"unsupported baseline format {data.get('format')!r} in {path}"
            )
        entries = {
            (e["rule"], e["path"], e["fingerprint"], int(e.get("occurrence", 0)))
            for e in data["entries"]
        }
        return cls(entries)

    def save(self, path: str | Path) -> None:
        payload = {
            "format": BASELINE_FORMAT_VERSION,
            "entries": [
                {
                    "rule": rule,
                    "path": file_path,
                    "fingerprint": fp,
                    "occurrence": ordinal,
                }
                for rule, file_path, fp, ordinal in sorted(self.entries)
            ],
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    @classmethod
    def from_findings(
        cls, findings: list[Finding], sources: dict[str, list[str]]
    ) -> "Baseline":
        return cls({entry for _, entry in _assign_ordinals(findings, sources)})


__all__ = ["Baseline", "BASELINE_FORMAT_VERSION"]
