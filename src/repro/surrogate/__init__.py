"""The efficient database tuning benchmark via surrogates (paper §8).

Expensive stress tests are replaced by a regression model trained on an
offline (configuration, performance) pool:

- :mod:`repro.surrogate.models` compares the candidate regressors the
  paper evaluates (RF, GB, SVR, NuSVR, KNN, Ridge) by 10-fold CV
  (Table 9);
- :mod:`repro.surrogate.benchmark` packages the winning model as a
  drop-in objective for tuning sessions (Figure 10) and accounts the
  150-311x speedup over replaying workloads.
"""

from repro.surrogate.benchmark import SurrogateBenchmark
from repro.surrogate.metric_model import (
    MetricAwareSurrogateObjective,
    MetricSurrogate,
)
from repro.surrogate.models import SURROGATE_MODEL_REGISTRY, compare_surrogate_models

__all__ = [
    "MetricAwareSurrogateObjective",
    "MetricSurrogate",
    "SURROGATE_MODEL_REGISTRY",
    "SurrogateBenchmark",
    "compare_surrogate_models",
]
