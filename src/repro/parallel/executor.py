"""The process-pool executor behind every experiment harness.

Scheduling rules:

- ``n_workers <= 1`` runs everything in-process — no pickling, no pool,
  identical results (and no isolation: serial mode cannot survive a hard
  death, by construction).  With ``n_workers > 1`` every picklable spec
  runs in a worker process, even when only one spec remains, because the
  pool is the isolation boundary that keeps a dying run from taking the
  study down.
- Specs that cannot be pickled (e.g. a closure-based optimizer factory)
  are detected up front and run in-process while the rest of the batch
  uses the pool; callers never have to care.
- Futures are harvested *as they complete*; every finished attempt is
  streamed to the telemetry file immediately and every completed run is
  appended to the checkpoint immediately, so an interrupted study keeps
  all finished work.
- A worker exception is caught *inside* the worker and returned as a
  failed :class:`RunResult`.  A hard worker death (``os._exit``, OOM
  kill) breaks the pool; the scheduler then consults the attempt journal
  each worker writes (a start marker before the run, the full serialized
  result after it) to (a) recover results that completed but whose
  future was lost with the pool, (b) charge a failed attempt only to the
  run(s) attributable to the dead worker via process exit codes, and
  (c) resubmit every other unfinished spec on a freshly spawned pool
  without charging it an attempt.  Failed attempts are retried up to
  ``max_retries`` times after a short deterministic jittered backoff,
  always from the spec's original seeds.
- ``run(specs, resume_from=...)`` skips any spec whose completed result
  is already in the checkpoint (matched by content hash, see
  :func:`repro.parallel.checkpoint.spec_key`), returning the stored
  result unchanged.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import signal
import tempfile
import time
import traceback
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, as_completed

import numpy as np

from repro.parallel.checkpoint import (
    StudyCheckpoint,
    record_to_result,
    result_to_record,
    spec_key,
)
from repro.parallel.spec import RunResult, RunSpec
from repro.parallel.telemetry import (
    append_telemetry_record,
    telemetry_record,
    write_telemetry,
)

#: Pool-respawn rounds tolerated with zero progress (no result harvested,
#: no death attributed) before the remaining specs are marked failed.
_MAX_STALLED_ROUNDS = 3


class _TimedObjective:
    """Delegating objective that accounts evaluation wall-time.

    Everything except the call/timing concern is forwarded to the wrapped
    objective via ``__getattr__`` — harness code that inspects
    ``direction``, ``score_of``, ``server`` (or anything added later)
    sees identical behavior with and without timing.
    """

    def __init__(self, inner) -> None:
        self.inner = inner
        self.eval_seconds = 0.0

    def __call__(self, config):
        t0 = time.perf_counter()
        try:
            return self.inner(config)
        finally:
            self.eval_seconds += time.perf_counter() - t0

    def __getattr__(self, name):
        # Only called for attributes not found on the wrapper itself
        # (``inner`` / ``eval_seconds`` resolve normally).
        return getattr(self.inner, name)


def execute_run(spec: RunSpec) -> RunResult:
    """Execute one spec in the current process; never raises.

    Any exception — a crashing objective, a singular GP fit, a bad
    optimizer suggestion — is converted into a failed :class:`RunResult`
    carrying the traceback tail, so one diverging run cannot take down a
    whole study.
    """
    t0 = time.perf_counter()
    try:
        # Imported here so a worker only pays for what the spec needs.
        from repro.tuning.objective import DatabaseObjective
        from repro.tuning.session import TuningSession

        objective = spec.objective
        if objective is None:
            from repro.dbms.server import MySQLServer

            server = MySQLServer(spec.workload, spec.instance, seed=spec.server_seed)
            objective = DatabaseObjective(server, spec.space)
        if spec.guard is not None:
            from repro.resilience.guard import GuardedObjective

            # Guard inside the timer: watchdog/backoff wall-time is part
            # of the evaluation cost the timer reports.
            objective = GuardedObjective(
                objective, spec.space, policy=spec.guard, seed=spec.guard_seed
            )
        timed = _TimedObjective(objective)
        optimizer = spec.optimizer
        if optimizer is None:
            optimizer = spec.optimizer_factory(spec.space, spec.optimizer_seed)
        session = TuningSession(
            timed,
            optimizer,
            spec.space,
            max_iterations=spec.n_iterations,
            n_initial=spec.n_initial,
            seed=spec.session_seed,
            warm_start=spec.warm_start,
            on_iteration=spec.iteration_hook,
            max_simulated_hours=spec.max_simulated_hours,
        )
        history = session.run()
        return RunResult(
            run_index=spec.run_index,
            history=history,
            wall_seconds=time.perf_counter() - t0,
            suggest_seconds=float(sum(o.suggest_seconds for o in history)),
            eval_seconds=timed.eval_seconds,
            simulated_hours=session.total_simulated_hours(),
            n_iterations=len(history),
            n_failed_evals=sum(1 for o in history if o.failed),
            stop_reason=session.stop_reason,
            failure_kinds=history.failure_summary(),
            tags=dict(spec.tags),
        )
    except Exception as exc:  # noqa: BLE001 — the whole point is containment
        tb = traceback.format_exc(limit=3)
        return RunResult(
            run_index=spec.run_index,
            failed=True,
            error=f"{type(exc).__name__}: {exc}\n{tb}",
            wall_seconds=time.perf_counter() - t0,
            tags=dict(spec.tags),
        )


def _journaled_run(spec: RunSpec, journal_dir: str, token: str) -> RunResult:
    """Worker-side wrapper: journal the attempt around :func:`execute_run`.

    The start marker (``<token>.start``, containing the worker pid) lets
    the scheduler attribute a pool break to the run that was on the dead
    worker.  The result file (``<token>.done``, written atomically via
    ``os.replace``) lets it recover a completed result whose future was
    lost when the pool broke — the race the old batch harvester turned
    into a full re-run.
    """
    start_path = os.path.join(journal_dir, f"{token}.start")
    with open(start_path, "w", encoding="utf-8") as fh:
        fh.write(str(os.getpid()))
        fh.flush()
    result = execute_run(spec)
    tmp_path = os.path.join(journal_dir, f"{token}.done.tmp")
    with open(tmp_path, "w", encoding="utf-8") as fh:
        json.dump(result_to_record(result), fh)
        fh.flush()
    os.replace(tmp_path, os.path.join(journal_dir, f"{token}.done"))
    return result


def _picklable(spec: RunSpec) -> bool:
    try:
        pickle.dumps(spec)
        return True
    except Exception:  # reprolint: disable=R009 probe only: unpicklable specs run inline, nothing is lost
        return False


#: Worker exit codes that do *not* indicate the worker died of its own
#: accord: a clean exit, still-running (no code yet), or the SIGTERM the
#: pool manager sends to surviving workers while tearing a broken pool
#: down.  Anything else (``os._exit(n)``, SIGKILL/OOM, SIGSEGV) marks the
#: worker as the death that broke the pool.
_COLLATERAL_EXIT_CODES = (0, None, -int(signal.SIGTERM))


class ParallelExecutor:
    """Runs batches of :class:`RunSpec` with containment, retry, streaming
    telemetry, and checkpoint/resume."""

    def __init__(
        self,
        n_workers: int = 1,
        max_retries: int = 1,
        telemetry_path: str | None = None,
        checkpoint_path: str | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.n_workers = n_workers
        self.max_retries = max_retries
        self.telemetry_path = telemetry_path
        self.checkpoint_path = checkpoint_path

    # ------------------------------------------------------------------
    def run(
        self, specs: list[RunSpec], resume_from: str | None = None
    ) -> list[RunResult]:
        """Execute all specs; results come back in spec order.

        ``resume_from`` (defaulting to ``checkpoint_path``) names a
        :class:`StudyCheckpoint` file; specs whose completed result it
        already holds are returned from it without re-execution.  With
        ``checkpoint_path`` set, every newly completed run is appended as
        it finishes, so a killed study resumes where it stopped.
        """
        results: dict[int, RunResult] = {}
        keys = {id(spec): spec_key(spec) for spec in specs}
        checkpoint = (
            StudyCheckpoint(self.checkpoint_path) if self.checkpoint_path else None
        )

        pending = list(specs)
        resume_path = resume_from if resume_from is not None else self.checkpoint_path
        if resume_path is not None and os.path.exists(resume_path):
            cache = StudyCheckpoint(resume_path).load()
            pending = []
            for spec in specs:
                record = cache.get(keys[id(spec)])
                if record is None:
                    pending.append(spec)
                else:
                    results[id(spec)] = record_to_result(record, spec.space)

        attempts: dict[int, int] = {id(spec): 0 for spec in specs}
        round_no = 0
        stalled = 0
        while pending:
            if round_no > 0:
                time.sleep(self._jitter(round_no))
            finished, unfinished = self._run_round(pending, attempts)
            stalled = stalled + 1 if not finished else 0
            if stalled >= _MAX_STALLED_ROUNDS:
                for spec in unfinished:
                    attempts[id(spec)] += 1
                    result = self._worker_death_result(
                        spec,
                        attempts[id(spec)],
                        "process pool kept breaking before this run could finish",
                    )
                    self._stream(result)
                    finished.append((spec, result))
                unfinished = []
            retry_ids: set[int] = set()
            for spec, result in finished:
                sid = id(spec)
                if result.failed and attempts[sid] <= self.max_retries:
                    retry_ids.add(sid)
                else:
                    results[sid] = result
                    if checkpoint is not None:
                        checkpoint.record(keys[sid], result)
            unfinished_ids = {id(spec) for spec in unfinished}
            pending = [
                spec for spec in pending if id(spec) in unfinished_ids or id(spec) in retry_ids
            ]
            round_no += 1

        ordered = [results[id(spec)] for spec in specs]
        if self.telemetry_path is not None:
            write_telemetry(self.telemetry_path, ordered)
        return ordered

    # ------------------------------------------------------------------
    def _run_round(
        self, specs: list[RunSpec], attempts: dict[int, int]
    ) -> tuple[list[tuple[RunSpec, RunResult]], list[RunSpec]]:
        """One execution round: at most one pool lifetime plus inline runs.

        Returns ``(finished, unfinished)`` — finished pairs carry charged,
        telemetry-streamed results; unfinished specs were either never
        started or were innocent bystanders of a pool break, and cost no
        attempt.
        """
        finished: list[tuple[RunSpec, RunResult]] = []
        unfinished: list[RunSpec] = []
        if self.n_workers <= 1:
            pooled: list[RunSpec] = []
            inline = list(specs)
        else:
            # Even a single remaining spec (e.g. the one retry of a run
            # whose worker died) goes through the pool: with n_workers > 1
            # the pool is the *isolation* boundary, and executing the spec
            # inline would let a second hard death take down the study.
            inline = [spec for spec in specs if not _picklable(spec)]
            inline_ids = {id(spec) for spec in inline}
            pooled = [spec for spec in specs if id(spec) not in inline_ids]
        if pooled:
            finished, unfinished = self._run_pool(pooled, attempts)
        for spec in inline:
            attempts[id(spec)] += 1
            result = execute_run(spec)
            result.attempts = attempts[id(spec)]
            self._stream(result)
            finished.append((spec, result))
        return finished, unfinished

    def _run_pool(
        self, specs: list[RunSpec], attempts: dict[int, int]
    ) -> tuple[list[tuple[RunSpec, RunResult]], list[RunSpec]]:
        """Run specs on one freshly spawned pool, harvesting as completed."""
        workers = min(self.n_workers, len(specs))
        journal_dir = tempfile.mkdtemp(prefix="repro-attempts-")
        finished: list[tuple[RunSpec, RunResult]] = []
        harvested: set[int] = set()
        tokens = {id(spec): str(i) for i, spec in enumerate(specs)}
        broken = False
        try:
            pool = ProcessPoolExecutor(max_workers=workers)
            try:
                by_future = {}
                submitted: set[int] = set()
                try:
                    for spec in specs:
                        fut = pool.submit(
                            _journaled_run, spec, journal_dir, tokens[id(spec)]
                        )
                        by_future[fut] = spec
                        submitted.add(id(spec))
                except BrokenExecutor:
                    broken = True
                # Worker processes spawn synchronously during submit; this
                # snapshot (a CPython implementation detail, hence the
                # getattr guard) is what exit-code attribution reads.
                procs = dict(getattr(pool, "_processes", None) or {})
                for fut in as_completed(by_future):
                    spec = by_future[fut]
                    try:
                        result = fut.result()
                    except BrokenExecutor:
                        broken = True
                        continue
                    except Exception as exc:  # noqa: BLE001 — e.g. a result that fails to unpickle
                        result = self._worker_death_result(
                            spec, attempts[id(spec)] + 1,
                            f"result lost in transit: {type(exc).__name__}: {exc}",
                        )
                    attempts[id(spec)] += 1
                    result.attempts = attempts[id(spec)]
                    harvested.add(id(spec))
                    self._stream(result)
                    finished.append((spec, result))
            finally:
                pool.shutdown(wait=True)
            if broken:
                dead_pids = {
                    pid
                    for pid, proc in procs.items()
                    if proc.exitcode not in _COLLATERAL_EXIT_CODES
                }
                finished_extra, unfinished = self._settle_break(
                    specs, harvested, submitted, tokens, journal_dir, dead_pids, attempts
                )
                finished.extend(finished_extra)
                return finished, unfinished
            return finished, []
        finally:
            shutil.rmtree(journal_dir, ignore_errors=True)

    def _settle_break(
        self,
        specs: list[RunSpec],
        harvested: set[int],
        submitted: set[int],
        tokens: dict[int, str],
        journal_dir: str,
        dead_pids: set[int],
        attempts: dict[int, int],
    ) -> tuple[list[tuple[RunSpec, RunResult]], list[RunSpec]]:
        """Classify every unharvested spec after a pool break.

        - a ``.done`` journal entry: the run completed but its future was
          lost with the pool — recover the result (first attempt stands);
        - a ``.start`` entry whose worker pid died (non-collateral exit
          code): the run was on the dead worker — charge a failed attempt;
        - otherwise (never started, or torn down mid-run by the pool
          manager): resubmit on the next pool, free of charge.
        """
        finished: list[tuple[RunSpec, RunResult]] = []
        unfinished: list[RunSpec] = []
        suspects: list[RunSpec] = []
        for spec in specs:
            sid = id(spec)
            if sid in harvested:
                continue
            if sid not in submitted:
                unfinished.append(spec)
                continue
            token = tokens[sid]
            done_path = os.path.join(journal_dir, f"{token}.done")
            start_path = os.path.join(journal_dir, f"{token}.start")
            if os.path.exists(done_path):
                try:
                    with open(done_path, encoding="utf-8") as fh:
                        record = json.load(fh)
                    result = record_to_result(record, spec.space)
                except (json.JSONDecodeError, KeyError, OSError):
                    # Unreadable journal entry: treat as never finished.
                    unfinished.append(spec)
                    continue
                attempts[sid] += 1
                result.attempts = attempts[sid]
                self._stream(result)
                finished.append((spec, result))
                continue
            if os.path.exists(start_path):
                try:
                    with open(start_path, encoding="utf-8") as fh:
                        pid = int(fh.read().strip() or "-1")
                except (OSError, ValueError):
                    pid = -1
                if pid in dead_pids or not dead_pids:
                    # Attributed to the dead worker — or, when exit codes
                    # gave us nothing (e.g. the manager hard-killed every
                    # worker), conservatively charge every in-flight run
                    # so a deterministic killer cannot respawn pools
                    # forever.
                    suspects.append(spec)
                else:
                    unfinished.append(spec)
                continue
            unfinished.append(spec)
        for spec in suspects:
            sid = id(spec)
            attempts[sid] += 1
            detail = (
                f"pool broke while run {spec.run_index} was on a dead worker "
                f"(dead pids: {sorted(dead_pids) or 'unknown'})"
            )
            result = self._worker_death_result(spec, attempts[sid], detail)
            self._stream(result)
            finished.append((spec, result))
        return finished, unfinished

    @staticmethod
    def _worker_death_result(spec: RunSpec, attempt: int, detail: str) -> RunResult:
        return RunResult(
            run_index=spec.run_index,
            failed=True,
            error=f"worker died: {detail}",
            attempts=attempt,
            tags=dict(spec.tags),
        )

    # ------------------------------------------------------------------
    def _stream(self, result: RunResult) -> None:
        """Append the per-attempt telemetry record the moment it exists."""
        if self.telemetry_path is None:
            return
        append_telemetry_record(
            self.telemetry_path,
            telemetry_record(result, event="attempt", attempt=result.attempts),
        )

    def _jitter(self, attempt: int) -> float:
        """Deterministic short backoff before respawning a pool."""
        rng = np.random.default_rng(0xC0FFEE + attempt)
        return float(rng.uniform(0.05, 0.25))
