"""JSONL run telemetry.

One line per finished run *attempt*, appended the moment the scheduler
harvests it, so a long study can be tailed while it executes — plus one
``"event": "final"`` line per run when the study completes, which is the
compatibility view the Figure 9 overhead analysis reads:

.. code-block:: json

    {"event": "attempt", "attempt": 1, "run_index": 0, "status": "ok",
     "attempts": 1, "wall_seconds": 1.93, "suggest_seconds": 1.52,
     "eval_seconds": 0.33, "simulated_hours": 2.98, "n_iterations": 50,
     "n_failed_evals": 2, "tags": {"workload": "SYSBENCH", "optimizer": "smac"}}

A study killed mid-write leaves a torn trailing line;
:func:`read_telemetry` skips it (with a warning) instead of raising, so
the surviving records of an hours-long study stay readable.
"""

from __future__ import annotations

import json
import os
import warnings
from typing import Any, Iterable

from repro.parallel.spec import RunResult


def telemetry_record(
    result: RunResult,
    event: str | None = None,
    attempt: int | None = None,
) -> dict[str, Any]:
    """The JSON-serializable telemetry view of one run result.

    ``event`` tags the record kind (``"attempt"`` for streamed per-attempt
    records, ``"final"`` for the end-of-study state); ``attempt`` is the
    1-based attempt number the record describes.  Both are omitted when
    ``None`` so the historical record shape is a strict subset.
    """
    record: dict[str, Any] = {
        "run_index": result.run_index,
        "status": "failed" if result.failed else "ok",
        "attempts": result.attempts,
        "wall_seconds": round(result.wall_seconds, 6),
        "suggest_seconds": round(result.suggest_seconds, 6),
        "eval_seconds": round(result.eval_seconds, 6),
        "simulated_hours": round(result.simulated_hours, 6),
        "n_iterations": result.n_iterations,
        "n_failed_evals": result.n_failed_evals,
        "tags": result.tags,
    }
    if event is not None:
        record["event"] = event
    if attempt is not None:
        record["attempt"] = attempt
    if result.error is not None:
        record["error"] = result.error.splitlines()[0]
    # Resilience fields are included only when populated, so records for
    # failed runs (no session ran) and pre-resilience results loaded from
    # old checkpoints keep their historical shape.
    if result.stop_reason is not None:
        record["stop_reason"] = result.stop_reason
    if result.failure_kinds:
        record["failure_kinds"] = result.failure_kinds
    return record


def _ensure_parent(path: str) -> None:
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)


def append_telemetry_record(path: str, record: dict[str, Any]) -> None:
    """Durably append one record (open/write/flush/close per call).

    This is the streaming write path: each finished attempt costs one
    small append, the file is tailable immediately, and a crash can tear
    at most the line being written.
    """
    _ensure_parent(path)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(record) + "\n")
        fh.flush()


def write_telemetry(path: str, results: Iterable[RunResult]) -> None:
    """Append one ``"event": "final"`` JSON line per result to ``path``.

    Parent directories are created on demand so a mistyped path does
    not throw away the telemetry of an hours-long study at the end.
    """
    _ensure_parent(path)
    with open(path, "a", encoding="utf-8") as fh:
        for result in results:
            fh.write(json.dumps(telemetry_record(result, event="final")) + "\n")


def read_telemetry(path: str) -> list[dict[str, Any]]:
    """Read back all records, skipping a truncated final line.

    A worker kill or study kill can land mid-append; the resulting torn
    trailing line is dropped with a warning.  A malformed line *before*
    intact ones still raises — that is corruption, not a crash artifact.
    """
    records: list[dict[str, Any]] = []
    with open(path, encoding="utf-8") as fh:
        lines = [ln for ln in (raw.strip() for raw in fh) if ln]
    for i, line in enumerate(lines):
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                warnings.warn(
                    f"skipping torn final telemetry line in {path} "
                    "(writer was likely killed mid-append)",
                    RuntimeWarning,
                    stacklevel=2,
                )
                break
            raise
    return records


def final_records(records: Iterable[dict[str, Any]]) -> list[dict[str, Any]]:
    """The end-of-study view: one record per run.

    Records written before the streaming-telemetry change carry no
    ``event`` field and are treated as final for compatibility.
    """
    return [r for r in records if r.get("event", "final") == "final"]


def attempt_records(records: Iterable[dict[str, Any]]) -> list[dict[str, Any]]:
    """The per-attempt stream (one record per execution attempt)."""
    return [r for r in records if r.get("event") == "attempt"]
