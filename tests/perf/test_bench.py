"""The ``repro.perf.bench`` harness: payload generation, schema validation,
and the CLI round trip.  Timing *magnitudes* are never asserted — CI
runners are too noisy for that — only structure and value domains."""

import json

import pytest

from repro.perf import bench


@pytest.fixture(scope="module")
def payload():
    # One tiny real run shared by the structural tests.
    return bench.run_bench(sizes=(6,), seed=3, repeats=1, pool_rows=32, smoke=True)


def test_run_bench_payload_is_schema_valid(payload):
    assert bench.validate_payload(payload) == []


def test_payload_covers_all_operations(payload):
    ops = {row["op"] for row in payload["results"]}
    assert ops == set(bench.OPS)
    assert payload["schema_version"] == bench.SCHEMA_VERSION
    assert payload["seed"] == 3
    assert payload["smoke"] is True


def test_payload_has_no_wall_clock_state(payload):
    # Reproducibility contract: rerunning with the same seed must produce a
    # payload that differs only in measured durations — no timestamps.
    text = json.dumps(payload)
    for banned in ("timestamp", "created_at", "wall_clock"):
        assert banned not in text


def test_summary_reports_largest_size(payload):
    assert "bo_iteration_n6_speedup" in payload["summary"]
    assert "candidate_pool_n32_speedup" in payload["summary"]


@pytest.mark.parametrize(
    "mutate, fragment",
    [
        (lambda p: p.update(schema_version=2), "schema_version"),
        (lambda p: p.pop("seed"), "seed"),
        (lambda p: p.update(results=[]), "non-empty"),
        (lambda p: p["results"][0].update(op="warp_drive"), "op"),
        (lambda p: p["results"][0].update(baseline_seconds=-1.0), "baseline_seconds"),
        (lambda p: p["results"][0].update(n="six"), ".n"),
        (lambda p: p.update(sizes=[0]), "sizes"),
        (lambda p: p["env"].pop("numpy"), "env.numpy"),
        (lambda p: p["summary"].update(bogus="text"), "summary.bogus"),
    ],
)
def test_validator_catches_broken_payloads(payload, mutate, fragment):
    broken = json.loads(json.dumps(payload))  # deep copy
    mutate(broken)
    errors = bench.validate_payload(broken)
    assert errors, f"mutation {fragment!r} was not caught"
    assert any(fragment in e for e in errors)


def test_validator_rejects_non_object():
    assert bench.validate_payload([1, 2, 3]) == ["payload is not a JSON object"]


def test_cli_smoke_and_validate_round_trip(tmp_path, capsys):
    out = tmp_path / "bench.json"
    code = bench.main(
        ["--smoke", "--sizes", "6", "--repeats", "1", "--seed", "3", "--out", str(out)]
    )
    assert code == 0
    assert out.exists()
    assert bench.main(["--validate", str(out)]) == 0
    captured = capsys.readouterr()
    assert "schema OK" in captured.out


def test_cli_validate_rejects_broken_file(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema_version": 0}))
    assert bench.main(["--validate", str(bad)]) == 1
    assert "schema violation" in capsys.readouterr().err


def test_cli_validate_missing_file(tmp_path, capsys):
    assert bench.main(["--validate", str(tmp_path / "nope.json")]) == 2
    assert "cannot read" in capsys.readouterr().err


@pytest.mark.parametrize("name", ["BENCH_PR4.json", "BENCH_PR9.json"])
def test_tracked_payload_is_valid(name):
    """Committed trajectory payloads must always pass the current schema."""
    from pathlib import Path

    tracked = Path(__file__).resolve().parents[2] / "benchmarks" / "perf" / name
    assert tracked.exists(), f"benchmarks/perf/{name} is missing"
    assert bench.validate_payload(json.loads(tracked.read_text())) == []


def test_tracked_trajectory_is_comparable():
    """PR4 -> PR9 must diff cleanly: same suite, overlapping cells."""
    from pathlib import Path

    perf_dir = Path(__file__).resolve().parents[2] / "benchmarks" / "perf"
    old = json.loads((perf_dir / "BENCH_PR4.json").read_text())
    new = json.loads((perf_dir / "BENCH_PR9.json").read_text())
    errors, rows = bench.compare_payloads(old, new)
    assert errors == []
    compared_ops = {row["op"] for row in rows}
    assert {"gp_fit", "gp_predict", "bo_iteration", "candidate_pool"} <= compared_ops
    assert all(row["ratio"] > 0 for row in rows)


# ----------------------------------------------------------------------
# --compare mode
# ----------------------------------------------------------------------
def test_compare_identical_payloads(payload):
    errors, rows = bench.compare_payloads(payload, payload)
    assert errors == []
    assert {(r["op"], r["n"]) for r in rows} == {
        (r["op"], r["n"]) for r in payload["results"]
    }
    assert all(r["ratio"] == pytest.approx(1.0) for r in rows)


def test_compare_subset_of_ops_is_fine(payload):
    # Trajectories grow suites over time: an old payload missing the new
    # ops still compares on the intersection.
    old = json.loads(json.dumps(payload))
    old["results"] = [r for r in old["results"] if r["op"] in ("gp_fit", "gp_predict")]
    errors, rows = bench.compare_payloads(old, payload)
    assert errors == []
    assert {r["op"] for r in rows} == {"gp_fit", "gp_predict"}


def test_compare_rejects_schema_violations(payload):
    broken = json.loads(json.dumps(payload))
    broken.pop("results")
    errors, rows = bench.compare_payloads(broken, payload)
    assert rows == []
    assert any("old" in e and "results" in e for e in errors)


def test_compare_rejects_suite_mismatch(payload):
    other = json.loads(json.dumps(payload))
    other["benchmark"] = "somebody.elses.bench"
    errors, rows = bench.compare_payloads(payload, other)
    assert rows == []
    assert any("suite mismatch" in e for e in errors)


def test_compare_rejects_disjoint_cells(payload):
    shifted = json.loads(json.dumps(payload))
    for row in shifted["results"]:
        row["n"] += 1
    errors, rows = bench.compare_payloads(payload, shifted)
    assert rows == []
    assert any("no common" in e for e in errors)


def test_cli_compare_round_trip(tmp_path, capsys, payload):
    path = tmp_path / "payload.json"
    path.write_text(json.dumps(payload))
    assert bench.main(["--compare", str(path), str(path)]) == 0
    assert "old/new" in capsys.readouterr().out


def test_cli_compare_exit_codes(tmp_path, capsys, payload):
    good = tmp_path / "good.json"
    good.write_text(json.dumps(payload))
    missing = tmp_path / "nope.json"
    assert bench.main(["--compare", str(missing), str(good)]) == 2
    assert "cannot read" in capsys.readouterr().err
    malformed = tmp_path / "malformed.json"
    malformed.write_text("{not json")
    assert bench.main(["--compare", str(malformed), str(good)]) == 2
    bad_schema = tmp_path / "bad.json"
    bad_schema.write_text(json.dumps({"schema_version": 0}))
    assert bench.main(["--compare", str(bad_schema), str(good)]) == 1
    assert "compare error" in capsys.readouterr().err
