"""Orchestration: discovery → cache → (pooled) analysis → program rules.

``run_program_analysis`` is the v2 entry point the CLI calls.  It
subsumes the per-file pass: every file gets its per-file findings
exactly as ``Linter.run`` would produce them, *plus* a cached
:class:`~repro.lint.program.summary.FileSummary`; summaries are grouped
into analysis scopes and the whole-program rules (R010–R014) run over a
:class:`~repro.lint.program.graph.ProgramIndex` per scope.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.lint import ENGINE_VERSION
from repro.lint.config import LintConfig
from repro.lint.engine import FileReport, Linter, discover_files
from repro.lint.findings import PARSE_ERROR_RULE_ID, Finding
from repro.lint.program import passes as _passes  # noqa: F401 — registers R010-R014
from repro.lint.program.baseline import Baseline
from repro.lint.program.cache import DEFAULT_CACHE_DIR, AnalysisCache, CacheStats
from repro.lint.program.graph import ProgramIndex, group_by_scope, module_name_for
from repro.lint.program.summary import FileSummary, extract_summary
from repro.lint.registry import RULES, ProgramRule

#: Below this many cold files a process pool costs more than it saves.
_POOL_THRESHOLD = 8


@dataclass
class ProgramResult:
    """Outcome of one whole-program lint run."""

    reports: list[FileReport] = field(default_factory=list)
    stats: CacheStats = field(default_factory=CacheStats)
    #: Baselined findings that were filtered from the reports.
    baselined: list[Finding] = field(default_factory=list)
    #: Baseline entries that matched nothing (candidates for pruning).
    stale_baseline_entries: int = 0
    #: path -> raw source lines, for baseline fingerprinting.
    sources: dict[str, list[str]] = field(default_factory=dict)

    @property
    def findings(self) -> list[Finding]:
        return [f for report in self.reports for f in report.findings]

    @property
    def ok(self) -> bool:
        return all(report.ok for report in self.reports)


# ----------------------------------------------------------------------
# per-file analysis (runs in the worker processes for cold files)
# ----------------------------------------------------------------------
def _analyze_file(
    args: tuple[str, str, LintConfig],
) -> tuple[str, FileReport, FileSummary | None]:
    """Per-file pass + summary extraction from one parse."""
    path_str, source, config = args
    linter = Linter(config)
    report, ctx, suppressions = linter.lint_source_full(source, path_str)
    if ctx is None:
        return path_str, report, None
    module, package, is_init = module_name_for(Path(path_str))
    summary = extract_summary(
        ctx.tree,
        path_str,
        module,
        package,
        is_init,
        suppressions={line: sorted(s.codes) for line, s in suppressions.items()},
    )
    return path_str, report, summary


def _analyze_cold(
    cold: list[tuple[str, str]], config: LintConfig, jobs: int
) -> list[tuple[str, FileReport, FileSummary | None]]:
    tasks = [(path, source, config) for path, source in cold]
    if jobs > 1 and len(cold) >= _POOL_THRESHOLD:
        try:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                return list(pool.map(_analyze_file, tasks, chunksize=4))
        except (OSError, ValueError):  # no fork/spawn available: degrade
            pass
    return [_analyze_file(task) for task in tasks]


# ----------------------------------------------------------------------
def _cache_salt(config: LintConfig) -> str:
    fingerprint = json.dumps(
        {
            "select": sorted(config.select),
            "ignore": sorted(config.ignore),
            "per_path_ignores": {
                k: sorted(v) for k, v in sorted(config.per_path_ignores.items())
            },
        },
        sort_keys=True,
    )
    return AnalysisCache.salt_for(ENGINE_VERSION, sorted(RULES) + [fingerprint])


def _program_rules() -> list[ProgramRule]:
    return [
        cls()
        for rid, cls in sorted(RULES.items())
        if cls.scope == "program"
    ]


def run_program_analysis(
    paths: Sequence[str | Path],
    config: LintConfig | None = None,
    *,
    cache_dir: str | Path = DEFAULT_CACHE_DIR,
    use_cache: bool = True,
    jobs: int = 1,
    baseline: Baseline | None = None,
    program: bool = True,
) -> ProgramResult:
    """Lint ``paths`` with both the per-file and whole-program rules."""
    config = config if config is not None else LintConfig()
    Linter(config)  # validates select/ignore rule ids up front
    files = discover_files(paths, config)

    cache = AnalysisCache(cache_dir, _cache_salt(config), enabled=use_cache)
    result = ProgramResult(stats=cache.stats)

    reports: dict[str, FileReport] = {}
    summaries: list[FileSummary] = []
    cold: list[tuple[str, str]] = []
    cold_sources: dict[str, str] = {}

    for path in files:
        path_str = str(path)
        try:
            source = path.read_text(encoding="utf-8-sig")
        except (OSError, UnicodeDecodeError, ValueError) as exc:
            report = FileReport(path=path_str)
            report.findings.append(
                Finding(PARSE_ERROR_RULE_ID, path_str, 1, 1, f"cannot read file: {exc}")
            )
            reports[path_str] = report
            continue
        result.sources[path_str] = source.splitlines()
        cached = cache.load(path_str, source)
        if cached is not None:
            report = FileReport(
                path=path_str,
                findings=list(cached.findings),
                suppressed=list(cached.suppressed),
            )
            reports[path_str] = report
            summaries.append(cached.summary)
        else:
            cold.append((path_str, source))
            cold_sources[path_str] = source

    for path_str, report, summary in _analyze_cold(cold, config, jobs):
        reports[path_str] = report
        if summary is not None:
            summaries.append(summary)
            cache.store(
                path_str,
                cold_sources[path_str],
                summary,
                report.findings,
                report.suppressed,
            )
        else:
            cache.stats.analyzed.append(path_str)

    # ------------------------------------------------------------------
    # whole-program passes
    # ------------------------------------------------------------------
    if program and summaries:
        rules = _program_rules()
        program_ids = sorted(rule.id for rule in rules)
        for scope in group_by_scope(summaries):
            index = ProgramIndex(scope)
            suppression_map = {s.path: s.suppressions for s in scope}
            for rule in rules:
                for finding in rule.check_program(index):
                    report = reports.get(finding.path)
                    if report is None:  # defensive: unknown path
                        continue
                    active = config.rules_for(Path(finding.path), program_ids)
                    if finding.rule not in active:
                        continue
                    codes = suppression_map.get(finding.path, {}).get(finding.line)
                    if codes and (finding.rule in codes or "all" in codes):
                        report.suppressed.append(finding)
                    else:
                        report.findings.append(finding)

    # ------------------------------------------------------------------
    # baseline
    # ------------------------------------------------------------------
    if baseline is not None:
        for report in reports.values():
            kept, baselined = baseline.split(report.findings, result.sources)
            report.findings = kept
            result.baselined.extend(baselined)
        result.baselined.sort(key=Finding.sort_key)
        result.stale_baseline_entries = len(baseline.stale)

    for report in reports.values():
        report.findings.sort(key=Finding.sort_key)
        report.suppressed.sort(key=Finding.sort_key)
    result.reports = [reports[p] for p in sorted(reports)]
    return result


__all__ = ["ProgramResult", "run_program_analysis"]
