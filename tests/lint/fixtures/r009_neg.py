"""True negatives for R009: classified, recorded, or re-raised failures."""


def reraises(fn):
    try:
        return fn()
    except Exception:
        raise


def wraps_and_raises(fn):
    try:
        return fn()
    except Exception as exc:
        raise RuntimeError("evaluation failed") from exc


def builds_failed_result(fn, RunResult):
    try:
        return fn()
    except Exception as exc:
        return RunResult(failed=True, error=str(exc))


def builds_failed_observation(fn, make_failed_obs):
    try:
        return fn()
    except Exception as exc:
        return make_failed_obs(reason=str(exc))


def classifies_kind(fn, FailureKind, record):
    try:
        return fn()
    except Exception:
        record(FailureKind("evaluation_error"))
        return None


def narrow_catch_is_fine(fn):
    try:
        return fn()
    except ValueError:
        return None
