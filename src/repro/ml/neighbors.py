"""k-nearest-neighbour regression (Table 9 surrogate candidate)."""

from __future__ import annotations

import numpy as np


class KNNRegressor:
    """Distance-weighted (or uniform) KNN regression on Euclidean distance."""

    def __init__(self, n_neighbors: int = 5, weights: str = "uniform") -> None:
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        if weights not in ("uniform", "distance"):
            raise ValueError("weights must be 'uniform' or 'distance'")
        self.n_neighbors = n_neighbors
        self.weights = weights
        self._X: np.ndarray | None = None
        self._x_sq: np.ndarray | None = None
        self._y: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNNRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if len(X) != len(y):
            raise ValueError("X and y length mismatch")
        if len(X) == 0:
            raise ValueError("cannot fit on empty data")
        self._X = X
        # The train-side term of the pairwise distance expansion is
        # query-independent: compute it once here instead of once per
        # prediction block.
        self._x_sq = np.sum(X**2, axis=1)
        self._y = y
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._X is None or self._y is None:
            raise RuntimeError("model is not fitted")
        assert self._x_sq is not None
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[None, :]
        k = min(self.n_neighbors, len(self._X))
        # Pairwise squared distances, computed blockwise to bound memory.
        out = np.empty(len(X))
        block = 256
        for start in range(0, len(X), block):
            chunk = X[start : start + block]
            d2 = (
                np.sum(chunk**2, axis=1)[:, None]
                - 2.0 * chunk @ self._X.T
                + self._x_sq[None, :]
            )
            np.maximum(d2, 0.0, out=d2)
            nn = np.argpartition(d2, k - 1, axis=1)[:, :k]
            if self.weights == "uniform":
                out[start : start + block] = self._y[nn].mean(axis=1)
            else:
                rows = np.arange(len(chunk))[:, None]
                w = 1.0 / (np.sqrt(d2[rows, nn]) + 1e-12)
                out[start : start + block] = (w * self._y[nn]).sum(axis=1) / w.sum(axis=1)
        return out
