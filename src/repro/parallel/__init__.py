"""Parallel experiment execution.

Every evaluation artifact in the reproduction boils down to a batch of
fully independent ``(server, optimizer, session)`` runs.  This package
fans those runs out over a process pool while keeping them bit-identical
to serial execution:

- :mod:`repro.parallel.spec` describes one run (:class:`RunSpec`) and its
  outcome (:class:`RunResult`), and derives per-run seeds from a single
  root seed via ``numpy.random.SeedSequence.spawn`` so the simulator's
  noise stream, the optimizer's sampling stream, and the session's LHS
  stream are statistically independent *and* independent of the execution
  order.
- :mod:`repro.parallel.executor` schedules specs onto a
  ``ProcessPoolExecutor``; a crashed worker only fails its own run, which
  is retried once on a freshly spawned pool after a jittered backoff.
- :mod:`repro.parallel.telemetry` appends one JSON line per finished run
  (suggest/eval wall-time, failure counts, simulated hours) — the raw
  data behind the Figure 9 overhead analysis.
"""

from repro.parallel.executor import ParallelExecutor, execute_run
from repro.parallel.spec import (
    RegistryOptimizerFactory,
    RunResult,
    RunSeeds,
    RunSpec,
    derive_run_seeds,
)
from repro.parallel.telemetry import read_telemetry, telemetry_record, write_telemetry

__all__ = [
    "ParallelExecutor",
    "RegistryOptimizerFactory",
    "RunResult",
    "RunSeeds",
    "RunSpec",
    "derive_run_seeds",
    "execute_run",
    "read_telemetry",
    "telemetry_record",
    "write_telemetry",
]
