"""Importance-measurement interface and sample collection.

Every measurement consumes the same inputs (paper §3.1): a set of
(configuration, performance) observations over the full knob space, plus
the space itself.  Scores are maximization targets (latency negated), so
"better than default" means score above the default's score for both
objective directions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dbms.server import MySQLServer
from repro.space import Configuration, ConfigurationSpace
from repro.space.sampling import LatinHypercubeSampler


@dataclass
class ImportanceResult:
    """Ranked knob importances (descending)."""

    knob_scores: dict[str, float]

    def ranked(self) -> list[str]:
        """Knob names, most important first (stable for ties)."""
        return [k for k, __ in sorted(self.knob_scores.items(), key=lambda t: (-t[1], t[0]))]

    def top(self, k: int) -> list[str]:
        return self.ranked()[:k]

    def score_of(self, knob: str) -> float:
        return self.knob_scores[knob]


class ImportanceMeasurement:
    """Base class: ranks knobs from observations.

    Subclasses implement :meth:`_compute` returning a per-knob score.
    :attr:`surrogate_r2_` is populated by measurements that fit a
    regression surrogate (used by the Figure 4 sensitivity analysis).
    """

    name = "importance"

    def __init__(self, space: ConfigurationSpace, seed: int | None = None) -> None:
        self.space = space
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.surrogate_r2_: float | None = None

    def rank(
        self,
        configs: list[Configuration],
        scores: np.ndarray,
        default_score: float | None = None,
    ) -> ImportanceResult:
        """Rank all knobs of the space by importance.

        ``scores`` are maximization targets aligned with ``configs``;
        ``default_score`` (required by tunability-based measurements) is
        the score of the default configuration.
        """
        scores = np.asarray(scores, dtype=float).ravel()
        if len(configs) != len(scores):
            raise ValueError("configs and scores length mismatch")
        if len(configs) < 2:
            raise ValueError("need at least two observations")
        values = self._compute(configs, scores, default_score)
        return ImportanceResult(dict(zip(self.space.names, values)))

    def _compute(
        self,
        configs: list[Configuration],
        scores: np.ndarray,
        default_score: float | None,
    ) -> np.ndarray:
        raise NotImplementedError


def collect_samples(
    server: MySQLServer,
    space: ConfigurationSpace,
    n_samples: int,
    seed: int | None = None,
    include_default: bool = True,
) -> tuple[list[Configuration], np.ndarray, float]:
    """LHS sample pool for knob selection / surrogate training (paper §5.1).

    Failed configurations are kept with the worst successful score
    (mirroring the session clamping rule).  Returns (configs, scores,
    default score); scores are maximization targets.
    """
    sampler = LatinHypercubeSampler(space, seed=seed)
    configs = sampler.sample(n_samples)
    direction = server.objective_direction
    sign = -1.0 if direction == "min" else 1.0
    default_score = sign * server.default_objective()

    raw: list[float] = []
    failed: list[bool] = []
    for config in configs:
        result = server.evaluate(config)
        failed.append(result.failed)
        raw.append(float("nan") if result.failed else sign * result.objective)
    scores = np.array(raw)
    success_scores = scores[~np.isnan(scores)]
    worst = float(success_scores.min()) if len(success_scores) else default_score / 3.0
    scores = np.where(np.isnan(scores), worst, scores)
    if include_default:
        configs = configs + [space.default_configuration()]
        scores = np.append(scores, default_score)
    return configs, scores, default_score
