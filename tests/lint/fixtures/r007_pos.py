"""True positives for R007: wall-clock reads in result-producing code."""

import time
from datetime import date, datetime


def stamp_result(value):
    return {"value": value, "ts": time.time()}  # finding


def label_run():
    return datetime.now().isoformat()  # finding


def today_tag():
    return str(date.today())  # finding


def ns_timestamp():
    return time.time_ns()  # finding
