"""Contract tests: every objective type satisfies the session protocol."""

import numpy as np
import pytest

from repro.dbms.server import MySQLServer
from repro.surrogate import MetricAwareSurrogateObjective, SurrogateBenchmark
from repro.tuning import DatabaseObjective


def _check_objective_contract(objective, space):
    """The duck-typed protocol TuningSession relies on."""
    default_score = objective.default_score()
    fallback = objective.failure_fallback_score()
    assert np.isfinite(default_score)
    assert np.isfinite(fallback)
    assert fallback <= default_score
    obs = objective(space.default_configuration())
    assert obs.config == space.default_configuration()
    if not obs.failed:
        assert np.isfinite(obs.score)
        assert obs.simulated_seconds > 0


class TestObjectiveContracts:
    def test_database_objective_throughput(self, sysbench_space, sysbench_server):
        _check_objective_contract(
            DatabaseObjective(sysbench_server, sysbench_space), sysbench_space
        )

    def test_database_objective_latency(self, mysql_space, job_server):
        _check_objective_contract(
            DatabaseObjective(job_server, mysql_space), mysql_space
        )

    def test_surrogate_objective(self, sysbench_space):
        bench = SurrogateBenchmark.build("SYSBENCH", sysbench_space, n_samples=60, seed=0)
        _check_objective_contract(bench.objective(), sysbench_space)

    def test_metric_aware_objective(self, sysbench_space):
        objective = MetricAwareSurrogateObjective.build(
            "SYSBENCH", sysbench_space, n_samples=80, seed=0
        )
        _check_objective_contract(objective, sysbench_space)

    def test_score_sign_convention(self, mysql_space):
        """For every direction, better objective => higher score."""
        tp = DatabaseObjective(MySQLServer("SYSBENCH", "B", seed=0), mysql_space)
        assert tp.score_of(200.0) > tp.score_of(100.0)
        lat = DatabaseObjective(MySQLServer("JOB", "B", seed=0), mysql_space)
        assert lat.score_of(100.0) > lat.score_of(200.0)
