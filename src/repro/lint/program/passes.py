"""The whole-program rules R010–R014.

Each rule consumes a :class:`~repro.lint.program.graph.ProgramIndex`
(one per analysis scope) and yields ordinary findings; the driver
applies per-path configuration, inline suppressions, and the baseline
exactly as it does for per-file rules.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator

from repro.lint.findings import Finding
from repro.lint.program.graph import IndexedFunction, ProgramIndex
from repro.lint.registry import ProgramRule, register

#: Receivers we are confident hold an Optimizer at a suggest/observe
#: call site; anything else is left unchecked rather than guessed at.
_OPTIMIZER_RECEIVER_RE = re.compile(r"(?:^|[._])(?:opt|optimizer|tuner|base)s?$")

_TO_RECORD_RE = re.compile(r"^_?(?P<entity>\w+)_to_(?P<form>record|payload)$")
_FROM_RECORD_RE = re.compile(r"^_?(?P<form>record|payload)_to_(?P<entity>\w+)$")


# ======================================================================
@register
class UntaintedSeedSink(ProgramRule):
    id = "R010"
    name = "untainted-seed-sink"
    summary = (
        "RNG constructed from a value that never derives from the seed "
        "the scope received — the seed exists but does not reach the sink"
    )

    def check_program(self, index: ProgramIndex) -> Iterator[Finding]:
        for fn in index.all_functions():
            facts = fn.facts
            if not facts.seed_params and not facts.reads_seed_attr:
                # No seed in scope: nothing to drop.  R001/R002 police
                # the no-seed-anywhere and hard-coded-constant cases.
                continue
            for sink in facts.sink_calls:
                if sink.status != "untainted":
                    continue
                if sink.deps and index.seed_dep_tainted(sink.deps):
                    continue
                available = ", ".join(
                    f"`{u.name}`" for u in facts.seed_params
                ) or "`self.seed`"
                yield Finding(
                    rule=self.id,
                    path=fn.summary.path,
                    line=sink.line,
                    col=sink.col,
                    message=(
                        f"`{sink.callee.rsplit('.', 1)[-1]}(...)` in "
                        f"`{facts.qualname}` is seeded from a value with no "
                        f"provenance from the {available} this scope "
                        "receives; thread the seed through so replay stays "
                        "correlated"
                    ),
                )


# ======================================================================
@register
class DroppedSeed(ProgramRule):
    id = "R011"
    name = "dropped-seed"
    summary = (
        "`seed`/`rng` parameter accepted but never forwarded to an RNG "
        "sink, a sub-component, or an attribute anybody reads"
    )

    def check_program(self, index: ProgramIndex) -> Iterator[Finding]:
        for fn in index.all_functions():
            facts = fn.facts
            if facts.is_stub:
                continue
            for use in facts.seed_params:
                if use.calls or use.sinks or use.returns or use.other:
                    continue
                # A store to an attribute someone, somewhere reads is a
                # forward; a store nobody ever reads is still a drop.
                if any(attr in index.attr_loads for attr in use.stores):
                    continue
                if use.stores:
                    detail = (
                        f"stored to {', '.join(f'`self.{a}`' for a in sorted(set(use.stores)))}"
                        " which no code ever reads"
                    )
                else:
                    detail = "never read after binding"
                if use.none_checks:
                    detail += " (only `is None` checks)"
                yield Finding(
                    rule=self.id,
                    path=fn.summary.path,
                    line=facts.line,
                    col=facts.col,
                    message=(
                        f"`{facts.qualname}` accepts `{use.name}` but drops "
                        f"it: {detail}; forward it to the component's RNG or "
                        "sub-components (or remove the parameter)"
                    ),
                )


# ======================================================================
@register
class OptimizerCallSiteContract(ProgramRule):
    id = "R012"
    name = "optimizer-callsite-contract"
    summary = (
        "suggest/observe signatures validated program-wide: every "
        "Optimizer subclass must stay callable as `suggest(history)` / "
        "`observe(observation)` from every call site"
    )

    _ARITY = {"suggest": ("history", 1), "observe": ("observation", 1)}

    def check_program(self, index: ProgramIndex) -> Iterator[Finding]:
        optimizers = index.optimizer_classes()

        # (a) definition side: an override that cannot be invoked with the
        # canonical single positional argument breaks every driver.
        signatures: dict[str, list] = {name: [] for name in self._ARITY}
        for canonical, indexed in optimizers.items():
            for method, (arg_name, arity) in self._ARITY.items():
                facts = indexed.facts.methods.get(method)
                if facts is None:
                    continue
                signatures[method].append((canonical, facts))
                n_required = max(0, facts.n_required_pos - 1)  # minus self
                n_max = len(facts.pos_params) - 1
                problems = []
                if n_required > arity:
                    problems.append(
                        f"requires {n_required} positional arguments"
                    )
                if n_max < arity and not facts.has_vararg:
                    problems.append(
                        f"accepts only {n_max} positional arguments"
                    )
                if facts.required_kwonly:
                    names = ", ".join(facts.required_kwonly)
                    problems.append(
                        f"has default-less keyword-only parameters ({names})"
                    )
                if problems:
                    yield Finding(
                        rule=self.id,
                        path=indexed.summary.path,
                        line=facts.line,
                        col=facts.col,
                        message=(
                            f"`{indexed.facts.name}.{method}` drifts from "
                            f"the Optimizer contract `{method}(self, "
                            f"{arg_name})`: {'; '.join(problems)} — every "
                            "session/executor drives optimizers "
                            "polymorphically"
                        ),
                    )

        # (b) call side: sites whose argument shape no conforming
        # optimizer could accept.
        if not optimizers:
            return
        for summary in index.summaries:
            for call in summary.contract_calls:
                if call.method not in self._ARITY:
                    continue
                if not _OPTIMIZER_RECEIVER_RE.search(call.receiver or ""):
                    continue
                if call.has_star or call.has_kwstar:
                    continue
                arg_name, arity = self._ARITY[call.method]
                n_args = call.n_pos + sum(
                    1 for kw in call.kwargs if kw == arg_name
                )
                if n_args != arity:
                    yield Finding(
                        rule=self.id,
                        path=summary.path,
                        line=call.line,
                        col=call.col,
                        message=(
                            f"`{call.receiver}.{call.method}(...)` passes "
                            f"{n_args} argument(s); the Optimizer contract "
                            f"is `{call.method}({arg_name})` — this call "
                            "breaks at least one registered optimizer"
                        ),
                    )
                    continue
                unknown_kwargs = [
                    kw
                    for kw in call.kwargs
                    if kw != arg_name
                    and any(
                        not facts.has_kwarg and kw not in facts.all_params
                        for _, facts in signatures[call.method]
                    )
                ]
                if unknown_kwargs:
                    names = ", ".join(sorted(unknown_kwargs))
                    yield Finding(
                        rule=self.id,
                        path=summary.path,
                        line=call.line,
                        col=call.col,
                        message=(
                            f"`{call.receiver}.{call.method}(...)` passes "
                            f"keyword(s) {names} that at least one "
                            "registered optimizer does not accept"
                        ),
                    )


# ======================================================================
@register
class CheckpointSchemaSymmetry(ProgramRule):
    id = "R013"
    name = "checkpoint-schema-symmetry"
    summary = (
        "field sets written by `X_to_record` and read by `record_to_X` "
        "must match — an asymmetric field silently vanishes on resume"
    )

    def check_program(self, index: ProgramIndex) -> Iterator[Finding]:
        writers: dict[tuple[str, str], IndexedFunction] = {}
        readers: dict[tuple[str, str], IndexedFunction] = {}
        for fn in index.all_functions():
            match = _TO_RECORD_RE.match(fn.facts.name)
            if match and fn.facts.record_write_keys:
                writers[(match.group("entity"), match.group("form"))] = fn
            match = _FROM_RECORD_RE.match(fn.facts.name)
            if match and fn.facts.record_read_keys:
                readers[(match.group("entity"), match.group("form"))] = fn

        for key in sorted(set(writers) & set(readers)):
            writer, reader = writers[key], readers[key]
            written = set(writer.facts.record_write_keys)
            read = set(reader.facts.record_read_keys)
            for field in sorted(written - read):
                yield Finding(
                    rule=self.id,
                    path=writer.summary.path,
                    line=writer.facts.line,
                    col=writer.facts.col,
                    message=(
                        f"`{writer.facts.qualname}` writes field "
                        f"`{field}` that `{reader.facts.qualname}` never "
                        "reads — the field is silently lost on the "
                        "record→object round trip"
                    ),
                )
            for field in sorted(read - written):
                yield Finding(
                    rule=self.id,
                    path=reader.summary.path,
                    line=reader.facts.line,
                    col=reader.facts.col,
                    message=(
                        f"`{reader.facts.qualname}` reads field "
                        f"`{field}` that `{writer.facts.qualname}` never "
                        "writes — resume would fault (or silently default) "
                        "on every record"
                    ),
                )


# ======================================================================
@register
class ClockIntoRecordedValues(ProgramRule):
    id = "R014"
    name = "clock-into-recorded-values"
    summary = (
        "wall-clock value flows (possibly through other modules' helpers) "
        "into a recorded/fingerprinted payload"
    )

    def check_program(self, index: ProgramIndex) -> Iterator[Finding]:
        from repro.lint.program.summary import RECORDISH_NAME_RE

        for fn in index.all_functions():
            facts = fn.facts
            recordish = bool(RECORDISH_NAME_RE.search(facts.name))
            if recordish:
                for write in facts.dict_writes:
                    if write.clock_definite or index.clock_dep_tainted(
                        write.clock_deps
                    ):
                        yield Finding(
                            rule=self.id,
                            path=fn.summary.path,
                            line=write.line,
                            col=write.col,
                            message=(
                                f"record field `{write.key}` in "
                                f"`{facts.qualname}` derives from the wall "
                                "clock; recorded values must be "
                                "run-independent (use perf_counter "
                                "durations or inject the timestamp)"
                            ),
                        )
            for arg in facts.hash_sink_args:
                if arg.clock_definite or index.clock_dep_tainted(arg.clock_deps):
                    yield Finding(
                        rule=self.id,
                        path=fn.summary.path,
                        line=arg.line,
                        col=arg.col,
                        message=(
                            f"wall-clock-derived value flows into "
                            f"`{arg.callee}` in `{facts.qualname}`; "
                            "fingerprints/serialized payloads built from "
                            "the clock differ on every run"
                        ),
                    )


def run_program_rules(
    index: ProgramIndex, rules: Iterable[ProgramRule]
) -> list[Finding]:
    """All findings of the given program rules over one index."""
    findings: list[Finding] = []
    for rule in rules:
        findings.extend(rule.check_program(index))
    return findings
