"""Array-level codecs (``encode_many`` / ``decode_many`` / ``snap_many``)
must be bit-identical to the scalar per-row round trips they replace."""

import numpy as np
import pytest

from repro.space import ConfigurationSpace
from repro.space.parameter import CategoricalKnob, ContinuousKnob, IntegerKnob


@pytest.fixture
def space():
    return ConfigurationSpace(
        [
            ContinuousKnob("lin", 0.0, 10.0, 5.0),
            ContinuousKnob("logc", 1e-3, 1e3, 1.0, log=True),
            IntegerKnob("ilin", 0, 1000, 50),
            IntegerKnob("ilog", 1, 2**20, 64, log=True),
            CategoricalKnob("cat2", ["off", "on"], "off"),
            CategoricalKnob("cat5", list("abcde"), "a"),
        ]
    )


@pytest.fixture
def vectors(space):
    rng = np.random.default_rng(99)
    U = rng.random((500, space.n_dims))
    # Include the boundary rows that exercise clamping and the last
    # categorical bucket edge.
    U[0, :] = 0.0
    U[1, :] = 1.0
    U[2, :] = 1.0 - 1e-16
    return U


def test_snap_many_bit_identical_to_scalar_round_trip(space, vectors):
    fast = space.snap_many(vectors)
    slow = space.encode_many([space.decode(row) for row in vectors])
    assert fast.tobytes() == slow.tobytes()


def test_decode_many_matches_scalar_decode(space, vectors):
    many = space.decode_many(vectors)
    one_by_one = [space.decode(row) for row in vectors]
    assert many == one_by_one


def test_encode_many_bit_identical_to_scalar_encode(space, vectors):
    configs = [space.decode(row) for row in vectors]
    fast = space.encode_many(configs)
    slow = np.vstack([space.encode(c) for c in configs])
    assert fast.tobytes() == slow.tobytes()


def test_snap_many_idempotent(space, vectors):
    snapped = space.snap_many(vectors)
    assert space.snap_many(snapped).tobytes() == snapped.tobytes()


def test_empty_inputs(space):
    assert space.encode_many([]).shape == (0, space.n_dims)
    assert space.decode_many(np.empty((0, space.n_dims))) == []
    assert space.snap_many(np.empty((0, space.n_dims))).shape == (0, space.n_dims)


def test_decoded_values_in_domain(space, vectors):
    for config in space.decode_many(vectors):
        assert 0.0 <= config["lin"] <= 10.0
        assert 1e-3 <= config["logc"] <= 1e3
        assert isinstance(config["ilin"], int) and 0 <= config["ilin"] <= 1000
        assert isinstance(config["ilog"], int) and 1 <= config["ilog"] <= 2**20
        assert config["cat2"] in ("off", "on")
        assert config["cat5"] in "abcde"
