"""Cloud hardware instance profiles (paper Table 5).

All instances use network-attached SSD storage typical of RDS deployments;
CPU and RAM follow the paper exactly.  The DBMS is deployed on instance B
unless an experiment specifies otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

GIB = 1024**3


@dataclass(frozen=True)
class HardwareInstance:
    """A database host: CPU, memory, and storage capability."""

    name: str
    cpu_cores: int
    ram_gb: float
    disk_read_iops: float = 22000.0
    disk_write_iops: float = 9000.0
    disk_seq_mb_s: float = 350.0
    fsync_latency_ms: float = 1.1

    @property
    def ram_bytes(self) -> int:
        return int(self.ram_gb * GIB)

    @property
    def io_read_latency_ms(self) -> float:
        """Mean latency of a random page read at low queue depth."""
        return 1000.0 / self.disk_read_iops * 4.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name} ({self.cpu_cores} cores, {self.ram_gb:.0f}GB)"


INSTANCES: dict[str, HardwareInstance] = {
    "A": HardwareInstance("A", cpu_cores=4, ram_gb=8.0),
    "B": HardwareInstance("B", cpu_cores=8, ram_gb=16.0),
    "C": HardwareInstance("C", cpu_cores=16, ram_gb=32.0),
    "D": HardwareInstance("D", cpu_cores=32, ram_gb=64.0),
}
