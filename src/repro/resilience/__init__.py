"""Resilient evaluation boundary between sessions and objectives.

The executor layer (:mod:`repro.parallel`) survives dying *workers*; this
package pushes robustness one layer down, to the session ↔ objective ↔
server boundary:

- :mod:`repro.resilience.taxonomy` — the :class:`FailureKind` enum
  (``CRASH`` / ``UNSTARTABLE`` / ``TIMEOUT`` / ``TRANSIENT`` /
  ``EVALUATION_ERROR``) threaded through engine results, observations,
  and telemetry, so every failed attempt records what went wrong.
- :mod:`repro.resilience.guard` — :class:`GuardedObjective`, a wrapper
  that converts raised exceptions into clamped ``EVALUATION_ERROR``
  observations, enforces per-evaluation deadlines (wall-clock watchdog
  plus a simulated-seconds cap), retries ``TRANSIENT`` failures with
  bounded seeded backoff, quarantines crash neighbourhoods, and trips a
  session-wide circuit breaker to a safe-default health probe.
- :mod:`repro.resilience.smoke` — the CI chaos round trip
  (``python -m repro.resilience.smoke``).

``taxonomy`` is imported eagerly (it is a stdlib-only leaf that low-level
modules depend on); the guard is loaded lazily via PEP 562 so importing
``repro.optimizers.base`` — which itself imports the taxonomy — never
recurses back through the guard's heavier dependencies.
"""

from repro.resilience.taxonomy import (
    CONFIG_INDUCED_KINDS,
    RETRYABLE_KINDS,
    EvaluationTimeout,
    FailureKind,
    TransientEvaluationError,
    classify_failure_reason,
    is_retryable,
)

_GUARD_EXPORTS = ("GuardedObjective", "GuardPolicy", "QuarantineRegion")

__all__ = [
    "CONFIG_INDUCED_KINDS",
    "EvaluationTimeout",
    "FailureKind",
    "GuardPolicy",
    "GuardedObjective",
    "QuarantineRegion",
    "RETRYABLE_KINDS",
    "TransientEvaluationError",
    "classify_failure_reason",
    "is_retryable",
]


def __getattr__(name: str):
    if name in _GUARD_EXPORTS:
        from repro.resilience import guard

        return getattr(guard, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
