"""Tests for scalers and polynomial features."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis.extra.numpy import arrays
from hypothesis import strategies as st

from repro.ml.preprocessing import MinMaxScaler, PolynomialFeatures, StandardScaler


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(3.0, 2.5, size=(200, 3))
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(Z.std(axis=0), 1.0, atol=1e-10)

    def test_constant_column_is_safe(self):
        X = np.ones((10, 2))
        Z = StandardScaler().fit_transform(X)
        assert np.isfinite(Z).all()

    def test_inverse_transform_roundtrip(self):
        rng = np.random.default_rng(1)
        X = rng.random((50, 4))
        scaler = StandardScaler().fit(X)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((2, 2)))


class TestMinMaxScaler:
    def test_range(self):
        rng = np.random.default_rng(2)
        X = rng.normal(0, 10, size=(100, 3))
        Z = MinMaxScaler().fit_transform(X)
        assert Z.min() == pytest.approx(0.0)
        assert Z.max() == pytest.approx(1.0)

    @given(arrays(np.float64, (20, 2), elements=st.floats(-100, 100)))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, X):
        scaler = MinMaxScaler().fit(X)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(X)), X, atol=1e-8
        )


class TestPolynomialFeatures:
    def test_degree2_expansion(self):
        X = np.array([[2.0, 3.0]])
        out = PolynomialFeatures(degree=2).fit_transform(X)
        # a, b, a^2, ab, b^2
        np.testing.assert_allclose(out, [[2, 3, 4, 6, 9]])

    def test_interaction_only(self):
        X = np.array([[2.0, 3.0]])
        out = PolynomialFeatures(degree=2, interaction_only=True).fit_transform(X)
        np.testing.assert_allclose(out, [[2, 3, 6]])

    def test_bias_column(self):
        X = np.array([[5.0]])
        out = PolynomialFeatures(degree=1, include_bias=True).fit_transform(X)
        np.testing.assert_allclose(out, [[1, 5]])

    def test_feature_groups_map_to_inputs(self):
        poly = PolynomialFeatures(degree=2)
        poly.fit(np.zeros((1, 3)))
        groups = poly.feature_groups(3)
        assert (0,) in groups and (0, 1) in groups and (2,) in groups

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            PolynomialFeatures(degree=0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PolynomialFeatures().transform(np.ones((1, 2)))
