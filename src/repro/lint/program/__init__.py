"""repro.lint.program — whole-program analysis layer.

The per-file rules (R001–R009) see one AST at a time; this package sees
the project.  It builds a module/import graph with symbol resolution
across a package (``from x import y``, aliases, ``__init__`` re-exports),
extracts a compact, cacheable :class:`~repro.lint.program.summary.FileSummary`
per file (one AST walk, shared with the per-file pass), and runs
cross-module rules over the resulting :class:`ProgramIndex`:

========  =============================================================
R010      RNG sink reachable without a tainted seed: ``default_rng(x)``
          where ``x`` never derives from the seed the scope received.
R011      Dropped seed: a ``seed``/``rng`` parameter accepted but never
          forwarded to a sink or sub-component.
R012      Optimizer call-site contract: ``suggest``/``observe``
          signatures validated against every call site, program-wide.
R013      Checkpoint schema symmetry: fields written by ``*_to_record``
          must be read by ``record_to_*`` and vice versa.
R014      Wall-clock flowing into recorded/fingerprinted values through
          any chain of calls (supersedes the file-local R007 heuristic
          across module boundaries).
========  =============================================================

Whole-program analysis is cheap enough to gate CI: summaries and
per-file findings are cached under ``.reprolint_cache/`` keyed by
content hash (only dirty files re-parse), cold files fan out over a
process pool, and a baseline file lets new rules land without a
mass-suppression commit.
"""

from __future__ import annotations

from repro.lint.program import passes as _passes  # noqa: F401 — registers R010-R014
from repro.lint.program.baseline import Baseline
from repro.lint.program.cache import AnalysisCache, CacheStats
from repro.lint.program.driver import ProgramResult, run_program_analysis
from repro.lint.program.graph import ProgramIndex
from repro.lint.program.summary import FileSummary, extract_summary

__all__ = [
    "AnalysisCache",
    "Baseline",
    "CacheStats",
    "FileSummary",
    "ProgramIndex",
    "ProgramResult",
    "extract_summary",
    "run_program_analysis",
]
