"""Analytical MySQL/InnoDB performance model.

The model maps (configuration, workload, hardware) to a performance
objective plus internal metrics, realizing the response-surface properties
the paper's conclusions rest on:

- **few impactful knobs among 197** — only :data:`~repro.dbms.catalog.MODELED_KNOBS`
  have first-order effects; the rest are inert, so knob selection matters;
- **robust defaults** — several knobs (query cache, ``max_connections``,
  ``big_tables``) have high *variance* but no *tunability*: bad values
  destroy performance while the default is already optimal.  These are the
  knobs that separate SHAP from variance-based importance measurements;
- **interactions** — e.g. ``tmp_table_size x innodb_thread_concurrency``
  via memory pressure (the paper's own example), change buffering x buffer
  pool hit rate, group commit x client parallelism;
- **heterogeneity** — several categorical knobs carry real gains;
- **failure regions** — memory overcommit crashes the DBMS ("unable to
  start"), which tuning sessions clamp to the worst seen (paper §4.1).

Throughput is a bottleneck-resource capacity model: CPU, redo-log
serialization (group commit), and read I/O each impose a rate bound, and
checkpoint/flush pressure applies multiplicative stall factors.  Analytical
latency (JOB) is a sum of planning, join CPU, scan I/O, and sort/temp-table
components.  Constants live at module level so ablation benches can modify
them to show which surface property drives which algorithm ranking.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.dbms.instances import GIB, HardwareInstance
from repro.resilience.taxonomy import FailureKind
from repro.workloads.profiles import WorkloadProfile

KB = 1024
MB = 1024**2
GB = 1024**3
PAGE = 16 * KB

# --- tunable model constants (ablation hooks) ---------------------------
#: Memory fraction above which the stress test OOM-crashes the DBMS.
OOM_FRACTION = 0.95
#: Memory fraction above which the DBMS cannot even allocate its buffers:
#: startup itself fails (§4.1's "unable to start") rather than the OOM
#: killer reaping mysqld mid-stress.
UNSTARTABLE_FRACTION = 1.10
#: Memory fraction above which swapping degrades performance.
SWAP_FRACTION = 0.80
#: Base server memory footprint outside of configured buffers.
SERVER_BASE_BYTES = 400 * MB
#: OLTP buffer-pool hit curve steepness.
OLTP_HIT_STEEPNESS = 2.2
#: Stall-factor weights for checkpoint (log) and flush (io) pressure.
LOG_STALL_WEIGHT = 0.09
IO_STALL_WEIGHT = 0.045
STALL_CAP = 6.0
#: Multiplicative noise scale (throughput / latency).
NOISE_SIGMA_TPS = 0.02
NOISE_SIGMA_LAT = 0.025

_FLUSH_METHOD_FACTOR = {
    "fsync": 1.00,
    "O_DSYNC": 0.92,
    "O_DIRECT": 1.10,
    "O_DIRECT_NO_FSYNC": 1.12,
}
_FLUSH_NEIGHBOR_FACTOR = {"0": 1.06, "1": 1.00, "2": 0.90}
_CHANGE_BUFFER_COVERAGE = {
    "none": 0.0,
    "inserts": 0.5,
    "deletes": 0.3,
    "purges": 0.2,
    "changes": 0.7,
    "all": 1.0,
}


def _sat(x: float) -> float:
    """Smooth saturation in [0, 1): x / (1 + x)."""
    return x / (1.0 + x) if x > 0 else 0.0


@dataclass
class EngineResult:
    """Outcome of one simulated stress test.

    ``failure_kind`` classifies failures into the taxonomy of
    :mod:`repro.resilience.taxonomy` (``None`` on success).
    """

    objective: float
    failed: bool
    failure_reason: str | None
    failure_kind: FailureKind | None = None
    metrics: dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failed


class PerformanceModel:
    """Maps configurations to performance for one hardware instance."""

    def __init__(self, instance: HardwareInstance, seed: int | None = None) -> None:
        self.instance = instance
        self.seed = seed
        self._baseline_cache: dict[tuple[str, str], EngineResult] = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def evaluate(
        self,
        config: Mapping[str, Any],
        workload: WorkloadProfile,
        rng: np.random.Generator | None = None,
        noise: bool = True,
    ) -> EngineResult:
        """Simulate a stress test of ``workload`` under ``config``.

        ``config`` must be a complete knob assignment (all catalog knobs).
        The objective is throughput (txn/s, maximize) for OLTP workloads
        and 95%-quantile latency (seconds, minimize) for analytical ones,
        normalized so the default configuration reproduces the workload's
        anchor value on this instance.
        """
        failure = self.classify_failure(config, workload)
        if failure is not None:
            reason, kind = failure
            return EngineResult(
                objective=float("nan"),
                failed=True,
                failure_reason=reason,
                failure_kind=kind,
            )

        raw, inter = self._raw_performance(config, workload)
        baseline = self._baseline(workload)
        if workload.is_analytical:
            objective = workload.base_latency_s * (raw / baseline)
            sigma = NOISE_SIGMA_LAT
        else:
            objective = workload.base_throughput * (raw / baseline)
            sigma = NOISE_SIGMA_TPS
        if noise:
            rng = np.random.default_rng(self.seed) if rng is None else rng
            objective *= float(np.exp(rng.normal(0.0, sigma)))
            if rng.random() < 0.04:
                # Cloud-instance fluctuation: occasional degraded interval.
                dip = 1.0 + 0.08 * float(rng.random())
                objective = objective * dip if workload.is_analytical else objective / dip
        metrics = self._internal_metrics(config, workload, inter, rng if noise else None)
        return EngineResult(objective=float(objective), failed=False, failure_reason=None, metrics=metrics)

    def default_objective(self, workload: WorkloadProfile) -> float:
        """Noise-free objective of the default configuration."""
        return workload.base_latency_s if workload.is_analytical else workload.base_throughput

    # ------------------------------------------------------------------
    # failure semantics
    # ------------------------------------------------------------------
    def memory_footprint(
        self, config: Mapping[str, Any], workload: WorkloadProfile
    ) -> float:
        """Estimated peak resident bytes under the workload."""
        threads = min(workload.client_threads, int(config["max_connections"]))
        per_conn = (
            config["sort_buffer_size"]
            + config["join_buffer_size"]
            + config["read_buffer_size"]
            + config["read_rnd_buffer_size"]
            + config["binlog_cache_size"]
            + config["thread_stack"]
        )
        heap_tmp_unit = min(config["tmp_table_size"], config["max_heap_table_size"])
        if config["big_tables"] == "ON":
            heap_tmp_unit = 0  # all temp tables forced to disk
        heap_tmp = heap_tmp_unit * workload.temp_table_intensity * threads
        qcache = config["query_cache_size"] if config["query_cache_type"] != "OFF" else 0
        return float(
            config["innodb_buffer_pool_size"]
            + config["innodb_log_buffer_size"]
            + threads * per_conn
            + heap_tmp
            + qcache
            + config["key_buffer_size"]
            + SERVER_BASE_BYTES
        )

    def classify_failure(
        self, config: Mapping[str, Any], workload: WorkloadProfile
    ) -> tuple[str, FailureKind] | None:
        """``(reason, kind)`` for a failing config, ``None`` when it runs.

        The single memory-overcommit predicate splits into the paper's two
        failure classes: allocation so far past physical RAM that startup
        itself fails (``UNSTARTABLE``), versus a footprint that clears
        startup but gets mysqld OOM-killed under workload pressure
        (``CRASH``).  Both are deterministic functions of the config, so
        neither is ever worth retrying.
        """
        footprint = self.memory_footprint(config, workload)
        ram = self.instance.ram_bytes
        if footprint > UNSTARTABLE_FRACTION * ram:
            return (
                "oom: memory overcommit, mysqld unable to start "
                f"(footprint {footprint / ram:.2f}x RAM)",
                FailureKind.UNSTARTABLE,
            )
        if footprint > OOM_FRACTION * ram:
            return (
                "oom: memory overcommit, mysqld killed during stress test "
                f"(footprint {footprint / ram:.2f}x RAM)",
                FailureKind.CRASH,
            )
        return None

    # ------------------------------------------------------------------
    # core response surface
    # ------------------------------------------------------------------
    def _baseline(self, workload: WorkloadProfile) -> float:
        key = (self.instance.name, workload.name)
        cached = self._baseline_cache.get(key)
        if cached is None:
            from repro.dbms.catalog import mysql_knob_space

            default = mysql_knob_space(self.instance).default_configuration()
            raw, __ = self._raw_performance(default, workload)
            cached = EngineResult(objective=raw, failed=False, failure_reason=None)
            self._baseline_cache[key] = cached
        return cached.objective

    def _raw_performance(
        self, config: Mapping[str, Any], workload: WorkloadProfile
    ) -> tuple[float, dict[str, float]]:
        if workload.is_analytical:
            return self._olap_latency(config, workload)
        return self._oltp_throughput(config, workload)

    # --- shared sub-models ------------------------------------------------
    def _swap_penalty(self, config: Mapping[str, Any], workload: WorkloadProfile) -> float:
        frac = self.memory_footprint(config, workload) / self.instance.ram_bytes
        if frac <= SWAP_FRACTION:
            return 1.0
        return 1.0 + 6.0 * (frac - SWAP_FRACTION)

    def _oltp_hit_rate(self, config: Mapping[str, Any], workload: WorkloadProfile) -> float:
        ws_bytes = max(workload.working_set_gb * GIB, 1.0)
        ratio = min(config["innodb_buffer_pool_size"] / ws_bytes, 20.0)
        hit = 1.0 - 0.45 * math.exp(-OLTP_HIT_STEEPNESS * ratio)
        return min(hit, 0.9995)

    def _thread_efficiency(self, config: Mapping[str, Any], workload: WorkloadProfile) -> tuple[float, float]:
        """(effective client threads, contention multiplier on CPU time)."""
        cores = self.instance.cpu_cores
        threads = min(workload.client_threads, int(config["max_connections"]))
        tc = int(config["innodb_thread_concurrency"])
        running = threads if tc == 0 else min(threads, tc)
        # Admission throttling below ~1.5x cores starves the CPU.
        starvation = max(0.0, 1.0 - running / max(1.0, 1.5 * cores))
        # Over-subscription with contended rows costs spinning/context switches.
        oversub = max(0.0, running / cores - 2.0)
        contention_mult = (
            (1.0 + 0.35 * starvation)
            * (1.0 + 0.22 * workload.contention * oversub)
        )
        spin = int(config["innodb_spin_wait_delay"])
        contention_mult *= 1.0 + 0.02 * workload.contention * abs(math.log10(max(spin, 1) / 6.0))
        return float(running), contention_mult

    # --- OLTP -------------------------------------------------------------
    def _oltp_throughput(
        self, config: Mapping[str, Any], workload: WorkloadProfile
    ) -> tuple[float, dict[str, float]]:
        inst = self.instance
        cores = inst.cpu_cores
        w = workload

        threads, contention_mult = self._thread_efficiency(config, w)
        hit = self._oltp_hit_rate(config, w)

        # ---- CPU time per transaction (ms) ----
        cpu_ms = 0.015 * w.reads_per_txn + 0.04 * w.writes_per_txn + 0.3 * w.join_complexity
        if config["innodb_adaptive_hash_index"] == "ON":
            cpu_ms *= 1.0 - 0.15 * w.point_read_frac
            cpu_ms *= 1.0 + 0.10 * w.write_frac * w.contention * min(threads / cores, 8.0) / 8.0
        churn = max(0.0, 1.0 - config["thread_cache_size"] / max(threads, 1.0))
        cpu_ms *= 1.0 + 0.14 * churn
        toc_need = w.n_tables * 4.0
        toc_miss = max(0.0, 1.0 - config["table_open_cache"] / toc_need)
        cpu_ms *= 1.0 + 0.10 * toc_miss
        if config["general_log"] == "ON":
            cpu_ms *= 1.30
        if config["slow_query_log"] == "ON":
            cpu_ms *= 1.02
        if config["performance_schema"] == "OFF":
            cpu_ms *= 0.94

        # ---- query cache: high variance, negative tunability for OLTP ----
        qcache_hit = 0.0
        qc_mode = config["query_cache_type"]
        if qc_mode != "OFF" and config["query_cache_size"] > 8 * MB:
            scale = 1.0 if qc_mode == "ON" else 0.5
            qcache_hit = scale * w.repetitive_read_frac * 0.55 * _sat(
                config["query_cache_size"] / (64 * MB)
            )
            cpu_ms *= 1.0 - 0.25 * qcache_hit * w.read_only_frac
            invalidation = 0.30 * w.write_frac + 0.12 * w.write_frac * math.sqrt(threads / cores)
            cpu_ms *= 1.0 + invalidation

        cpu_ms *= contention_mult * self._swap_penalty(config, w)

        # ---- read I/O per transaction (ms) ----
        # Buffered flush methods (fsync/O_DSYNC) double-buffer pages in the
        # OS cache: with a small buffer pool the OS cache absorbs misses,
        # with a large one it wastes memory.  O_DIRECT bypasses the OS
        # cache entirely — a strong bp x flush_method interaction.
        miss_frac = 1.0 - hit
        bp_ram_frac = config["innodb_buffer_pool_size"] / self.instance.ram_bytes
        if config["innodb_flush_method"] in ("fsync", "O_DSYNC"):
            os_cache = 0.60 * max(0.0, 0.8 - bp_ram_frac)
            miss_frac *= 1.0 - os_cache
        miss_pages = w.reads_per_txn * miss_frac * 0.9
        read_boost = min(max((config["innodb_read_io_threads"] / 4.0) ** 0.25, 0.75), 1.5)
        read_io_ms = miss_pages * inst.io_read_latency_ms / read_boost
        if config["innodb_flush_method"] in ("O_DIRECT", "O_DIRECT_NO_FSYNC"):
            if bp_ram_frac >= 0.5:
                read_io_ms *= 0.92  # no double copy on the read path
            else:
                read_io_ms *= 1.0 + 1.0 * (0.5 - bp_ram_frac)
        if config["innodb_random_read_ahead"] == "ON":
            read_io_ms *= 1.0 - 0.06 * w.range_scan_frac

        # ---- commit path (redo + binlog), amortized by group commit ----
        writers = max(threads * w.write_frac, 1e-6)
        group = max(writers, 1.0) ** 0.52
        fsync = inst.fsync_latency_ms
        flush_mode = config["innodb_flush_log_at_trx_commit"]
        # Serialized portion: actual fsyncs through the (group-committed)
        # redo/binlog mutexes.  Non-durable modes only buffer.
        if flush_mode == "1":
            redo_fsync_ms = fsync / group
            if config["innodb_flush_method"] == "O_DIRECT_NO_FSYNC":
                redo_fsync_ms *= 0.90
            redo_base_ms = 0.02
        elif flush_mode == "2":
            redo_fsync_ms = 0.0
            redo_base_ms = 0.06
        else:
            redo_fsync_ms = 0.0
            redo_base_ms = 0.03
        log_buffer_need = 1.0 * MB * math.sqrt(max(writers, 1.0))
        if config["innodb_log_buffer_size"] < log_buffer_need:
            deficit = math.log2(log_buffer_need / config["innodb_log_buffer_size"])
            redo_base_ms += 0.05 * min(1.0, deficit / 4.0)
        sync_binlog = int(config["sync_binlog"])
        binlog_fsync_ms = fsync / group / sync_binlog if sync_binlog >= 1 else 0.0
        serial_ms = redo_fsync_ms + binlog_fsync_ms
        if qc_mode != "OFF" and config["query_cache_size"] > 8 * MB:
            # The query cache's global mutex serializes invalidating writes
            # (the notorious reason it was removed in MySQL 8.0).
            serial_ms += 0.15
        if config["general_log"] == "ON":
            # Synchronous general-log writes serialize statement execution.
            serial_ms += 0.08 * w.write_frac + 0.02
        commit_ms = serial_ms + redo_base_ms + 0.02
        if config["innodb_support_xa"] == "OFF":
            commit_ms *= 0.94
        if config["binlog_row_image"] in ("minimal", "noblob"):
            commit_ms *= 0.98

        # ---- background flush & checkpoint pressure ----
        page_writes_per_s = w.base_throughput * w.writes_per_txn * 0.5
        coverage = _CHANGE_BUFFER_COVERAGE[config["innodb_change_buffering"]]
        if config["innodb_change_buffer_max_size"] < 10:
            coverage *= 0.5
        cb_saving = 0.60 * coverage * w.secondary_index_write_frac * math.sqrt(1.0 - hit)
        page_writes_per_s *= 1.0 - cb_saving

        write_boost = min(max((config["innodb_write_io_threads"] / 4.0) ** 0.25, 0.75), 1.4)
        flush_eff = (
            write_boost
            * _FLUSH_NEIGHBOR_FACTOR[config["innodb_flush_neighbors"]]
            * _FLUSH_METHOD_FACTOR[config["innodb_flush_method"]]
        )
        if config["innodb_doublewrite"] == "ON":
            flush_eff *= 0.80
        if config["innodb_page_cleaners"] >= 4:
            flush_eff *= 1.02
        io_cap = config["innodb_io_capacity"]
        io_cap_max = max(config["innodb_io_capacity_max"], io_cap)
        flush_capacity = flush_eff * (0.75 * io_cap + 0.25 * min(io_cap_max, 2.5 * io_cap))
        flush_capacity = min(flush_capacity, inst.disk_write_iops)
        # Foreground read misses compete with background flushing for the
        # same device — couples buffer-pool sizing into the write path.
        disk_reads_nominal = w.base_throughput * miss_pages
        read_pressure = min(disk_reads_nominal / inst.disk_read_iops, 0.85)
        flush_capacity *= 1.0 - 0.6 * read_pressure
        stall_io = max(0.0, page_writes_per_s / max(flush_capacity, 1.0) - 1.0)
        mdp = int(config["innodb_max_dirty_pages_pct"])
        if mdp < 25:
            stall_io += 0.4 * (25 - mdp) / 25.0
        if config["innodb_adaptive_flushing"] == "OFF":
            stall_io *= 1.25
        lwm = int(config["innodb_adaptive_flushing_lwm"])
        stall_io *= 1.0 + 0.02 * abs(lwm - 10) / 70.0
        lsd = int(config["innodb_lru_scan_depth"])
        if lsd < 512:
            stall_io += 0.05
        elif lsd > 8192:
            stall_io += 0.02

        # Overprovisioned background I/O competes for the device: InnoDB
        # issues flush/read-ahead I/O at the configured io_capacity even
        # when the dirty-page rate does not warrant it, crowding out
        # foreground reads and queueing writes.
        io_target = flush_eff * (0.75 * io_cap + 0.25 * min(io_cap_max, 2.5 * io_cap))
        device_pressure = (min(io_target, 50000.0) + disk_reads_nominal) / (
            inst.disk_write_iops + inst.disk_read_iops
        )
        if device_pressure > 0.75:
            stall_io += 1.2 * (device_pressure - 0.75)
            read_io_ms *= 1.0 + 0.3 * (device_pressure - 0.75)

        log_total = config["innodb_log_file_size"] * config["innodb_log_files_in_group"]
        write_bytes_per_s = w.base_throughput * w.writes_per_txn * 3 * KB
        ckpt_pressure = write_bytes_per_s * 45.0 / max(log_total, 1.0)
        stall_log = max(0.0, ckpt_pressure - 1.0)

        purge_need = w.write_frac * w.writes_per_txn / 3.5
        purge_lag = max(0.0, purge_need - config["innodb_purge_threads"]) / 8.0

        write_penalty = (
            (1.0 + LOG_STALL_WEIGHT * min(stall_log, STALL_CAP + 1.0))
            * (1.0 + IO_STALL_WEIGHT * min(stall_io, STALL_CAP))
            * (1.0 + 0.18 * min(purge_lag, 1.0))
        )

        # ---- bottleneck capacity analysis (ms of bottleneck per txn) ----
        cpu_cost = cpu_ms / cores
        redo_cost = (serial_ms + 0.15 * (commit_ms - serial_ms)) * w.write_frac
        # The disk itself bounds the miss rate: every buffer-pool miss is
        # one random read against the device's IOPS budget (shared with
        # background flushing).  This is what makes the buffer pool a
        # first-order knob for workloads larger than memory.
        read_iops_budget = inst.disk_read_iops * (
            1.0 - 0.25 * min(io_target / inst.disk_write_iops, 1.0)
        )
        device_cost = 1000.0 * miss_pages / max(read_iops_budget, 1.0)
        io_parallel = min(threads, 8.0 * config["innodb_read_io_threads"], 64.0)
        read_cost = read_io_ms / max(io_parallel, 1.0)
        thread_cost = (cpu_ms + read_io_ms + commit_ms * w.write_frac) / max(threads, 1.0)
        # Smooth bottleneck: a p-norm over resource costs.  Pure max() would
        # be a perfectly rigid bottleneck; real systems interleave resources
        # imperfectly, so secondary resources still cost something.
        costs = np.array([cpu_cost, redo_cost, read_cost, device_cost, thread_cost])
        bottleneck_ms = float(np.sum(costs**3.0) ** (1.0 / 3.0))

        tps = 1000.0 / bottleneck_ms
        tps /= write_penalty ** min(1.0, 1.4 * w.write_frac)

        inter = {
            "hit": hit,
            "threads": threads,
            "cpu_ms": cpu_ms,
            "read_io_ms": read_io_ms,
            "commit_ms": commit_ms,
            "stall_io": stall_io,
            "stall_log": stall_log,
            "purge_lag": purge_lag,
            "qcache_hit": qcache_hit,
            "page_writes_per_s": page_writes_per_s,
            "flush_capacity": flush_capacity,
            "tps_raw": tps,
            "churn": churn,
            "toc_miss": toc_miss,
            "tmp_disk_frac": 0.0,
        }
        return tps, inter

    # --- OLAP (JOB) ---------------------------------------------------------
    def _olap_hit_rate(self, config: Mapping[str, Any], workload: WorkloadProfile) -> float:
        # Scans thrash the LRU; hit grows more slowly than for point reads
        # and is sensitive to the midpoint-insertion (old blocks) policy.
        ws_bytes = max(workload.working_set_gb * GIB, 1.0)
        ratio = min(config["innodb_buffer_pool_size"] / ws_bytes, 8.0)
        hit = min(0.98, 0.55 * ratio**0.8)
        old_pct = int(config["innodb_old_blocks_pct"])
        hit *= 1.0 + 0.04 * (old_pct - 37) / 58.0  # keeping scans out of the young list
        if config["innodb_old_blocks_time"] < 100:
            hit *= 0.97
        return float(min(max(hit, 0.0), 0.985))

    def _olap_latency(
        self, config: Mapping[str, Any], workload: WorkloadProfile
    ) -> tuple[float, dict[str, float]]:
        inst = self.instance
        w = workload
        hit = self._olap_hit_rate(config, w)
        swap = self._swap_penalty(config, w)

        # ---- optimizer / planning ----
        depth = int(config["optimizer_search_depth"])
        eff_depth = 62 if depth == 0 else depth
        plan_quality = 1.0 + 0.35 * max(0.0, (14 - eff_depth)) / 14.0 * w.join_complexity
        planning_s = 4.0 * (0.25 + 0.75 * _sat(eff_depth / 20.0))
        if config["optimizer_prune_level"] == "0":
            plan_quality *= 0.95
            planning_s *= 2.0
        stats_pages = int(config["innodb_stats_persistent_sample_pages"])
        plan_quality *= 1.0 - 0.07 * _sat(math.log2(max(stats_pages, 1) / 20.0) / 3.0 if stats_pages > 20 else 0.0)
        if config["innodb_stats_method"] == "nulls_unequal":
            plan_quality *= 0.95
        elif config["innodb_stats_method"] == "nulls_ignored":
            plan_quality *= 1.03
        if config["innodb_stats_persistent"] == "OFF":
            plan_quality *= 1.06

        # ---- join execution CPU ----
        join_cpu_s = 112.0 * plan_quality
        jb = config["join_buffer_size"]
        jb_gain = 0.26 * _sat(math.log2(max(jb / (256.0 * KB), 1.0)) / 6.0 * 3.0)
        join_cpu_s *= 1.0 - jb_gain
        if config["innodb_adaptive_hash_index"] == "ON":
            join_cpu_s *= 0.97

        # ---- scan / index read I/O ----
        scan_gb = 4.0 * (1.0 - hit)
        seq_s = scan_gb * 1024.0 / inst.disk_seq_mb_s
        read_boost = min(max((config["innodb_read_io_threads"] / 4.0) ** 0.3, 0.7), 1.6)
        scan_io_s = seq_s * 1.4 / read_boost
        if config["innodb_random_read_ahead"] == "ON":
            scan_io_s *= 0.90
        rat = int(config["innodb_read_ahead_threshold"])
        scan_io_s *= 1.0 - 0.03 * (56 - rat) / 56.0
        if config["innodb_checksum_algorithm"] == "none":
            scan_io_s *= 0.98
        rrb = config["read_rnd_buffer_size"]
        scan_io_s *= 1.0 - 0.08 * _sat(math.log2(max(rrb / (256.0 * KB), 1.0)) / 8.0 * 2.0)

        # ---- sorting / temp tables ----
        tmp_limit = min(config["tmp_table_size"], config["max_heap_table_size"])
        if config["big_tables"] == "ON":
            in_mem_frac = 0.0
        else:
            in_mem_frac = _sat(tmp_limit / (256.0 * MB)) / _sat(1.0)  # ~1 when >=256MB
            in_mem_frac = min(in_mem_frac, 1.0)
        disk_tmp_penalty = 1.0 + 1.1 * (1.0 - in_mem_frac) * w.temp_table_intensity
        if config["internal_tmp_disk_storage_engine"] == "MYISAM":
            disk_tmp_penalty = 1.0 + (disk_tmp_penalty - 1.0) * 0.85
        sb = config["sort_buffer_size"]
        sort_gain = 0.22 * _sat(math.log2(max(sb / (256.0 * KB), 1.0)) / 7.0 * 2.5)
        sort_tmp_s = 46.0 * disk_tmp_penalty * (1.0 - sort_gain)

        latency = (planning_s + join_cpu_s + scan_io_s + sort_tmp_s) * swap
        if config["general_log"] == "ON":
            latency *= 1.12

        inter = {
            "hit": hit,
            "threads": float(w.client_threads),
            "cpu_ms": join_cpu_s * 1000.0 / 50.0,
            "read_io_ms": scan_io_s * 1000.0 / 50.0,
            "commit_ms": 0.0,
            "stall_io": 0.0,
            "stall_log": 0.0,
            "purge_lag": 0.0,
            "qcache_hit": 0.0,
            "page_writes_per_s": 0.0,
            "flush_capacity": float(config["innodb_io_capacity"]),
            "tps_raw": 1.0 / max(latency, 1e-9),
            "churn": 0.0,
            "toc_miss": 0.0,
            "tmp_disk_frac": 1.0 - in_mem_frac,
            "latency_raw": latency,
        }
        return latency, inter

    # ------------------------------------------------------------------
    # internal metrics
    # ------------------------------------------------------------------
    def _internal_metrics(
        self,
        config: Mapping[str, Any],
        workload: WorkloadProfile,
        inter: dict[str, float],
        rng: np.random.Generator | None,
    ) -> dict[str, float]:
        w = workload
        inst = self.instance
        tps = inter["tps_raw"] if not w.is_analytical else 1.0 / max(inter["latency_raw"], 1e-9)
        threads = inter["threads"]
        hit = inter["hit"]
        reads_per_s = tps * w.reads_per_txn
        writes_per_s = tps * w.writes_per_txn
        disk_reads = reads_per_s * (1.0 - hit)
        bp_pages = config["innodb_buffer_pool_size"] / PAGE
        data_pages = min(bp_pages, w.size_gb * GIB / PAGE)
        dirty_pct = min(90.0, 100.0 * inter["stall_io"] / 3.0 + 10.0 * w.write_frac + 2.0)
        flush_mode = config["innodb_flush_log_at_trx_commit"]
        fsyncs = writes_per_s if flush_mode == "1" else (1.0 if flush_mode == "2" else 0.2)
        if int(config["sync_binlog"]) >= 1:
            fsyncs += writes_per_s / int(config["sync_binlog"])
        tmp_tables = tps * w.temp_table_intensity * 2.0
        metrics = {
            "bp_hit_rate": hit,
            "bp_pages_data_pct": 100.0 * data_pages / max(bp_pages, 1.0),
            "bp_pages_dirty_pct": dirty_pct,
            "bp_logical_reads_per_s": reads_per_s,
            "bp_disk_reads_per_s": disk_reads,
            "bp_pages_flushed_per_s": min(inter["page_writes_per_s"], inter["flush_capacity"]),
            "bp_read_ahead_per_s": disk_reads * (0.3 if config["innodb_random_read_ahead"] == "ON" else 0.05),
            "bp_wait_free_per_s": max(0.0, inter["stall_io"]) * 100.0,
            "log_waits_per_s": max(0.0, inter["stall_log"]) * 50.0,
            "log_writes_per_s": writes_per_s,
            "log_fsyncs_per_s": fsyncs,
            "checkpoint_age_pct": min(95.0, 60.0 * min(inter["stall_log"] + 0.5, 1.5)),
            "rows_read_per_s": reads_per_s,
            "rows_inserted_per_s": writes_per_s * 0.4,
            "rows_updated_per_s": writes_per_s * 0.45,
            "rows_deleted_per_s": writes_per_s * 0.15,
            "qps": tps * (w.reads_per_txn * 0.2 + w.writes_per_txn * 0.3 + 1.0),
            "tps": tps,
            "threads_running": min(threads, inst.cpu_cores * 3.0),
            "threads_connected": threads,
            "threads_created_per_s": inter["churn"] * threads * 0.5,
            "connection_usage_pct": 100.0 * threads / max(int(config["max_connections"]), 1),
            "created_tmp_tables_per_s": tmp_tables,
            "created_tmp_disk_tables_per_s": tmp_tables * inter["tmp_disk_frac"],
            "sort_merge_passes_per_s": tps * w.temp_table_intensity * inter["tmp_disk_frac"] * 0.8,
            "select_full_join_per_s": tps * w.join_complexity * 0.5,
            "select_range_per_s": tps * w.range_scan_frac,
            "table_open_cache_hit_rate": 1.0 - inter["toc_miss"],
            "qcache_hit_rate": inter["qcache_hit"],
            "qcache_invalidations_per_s": inter["qcache_hit"] * writes_per_s,
            "io_read_mb_per_s": disk_reads * PAGE / MB,
            "io_write_mb_per_s": inter["page_writes_per_s"] * PAGE / MB,
            "io_pending_flushes": inter["stall_io"] * 20.0,
            "row_lock_waits_per_s": tps * w.contention * 0.3,
            "row_lock_time_avg_ms": w.contention * (threads / inst.cpu_cores) * 0.8,
            "mutex_spin_waits_per_s": tps * w.contention * threads / inst.cpu_cores,
            "purge_lag_pages": inter["purge_lag"] * 10000.0,
            "change_buffer_merges_per_s": writes_per_s
            * w.secondary_index_write_frac
            * _CHANGE_BUFFER_COVERAGE[config["innodb_change_buffering"]],
            "adaptive_hash_searches_per_s": (
                reads_per_s * 0.6 if config["innodb_adaptive_hash_index"] == "ON" else 0.0
            ),
            "cpu_util_pct": min(98.0, 100.0 * inter["cpu_ms"] * tps / 1000.0 / inst.cpu_cores),
            "mem_util_pct": 100.0
            * self.memory_footprint(config, w)
            / inst.ram_bytes,
            "disk_util_pct": min(
                98.0,
                100.0
                * (disk_reads + inter["page_writes_per_s"])
                / (inst.disk_read_iops + inst.disk_write_iops),
            ),
        }
        if rng is not None:
            for key in metrics:
                metrics[key] *= float(np.exp(rng.normal(0.0, 0.01)))
        return metrics
