"""Tests for the three knowledge-transfer frameworks."""

import numpy as np
import pytest

from repro.dbms.server import MySQLServer
from repro.optimizers import SMAC, MixedKernelBO
from repro.optimizers.base import History, Observation
from repro.transfer import (
    MappedOptimizer,
    RGPEMixedKernelBO,
    RGPESMAC,
    RGPESurrogate,
    SourceTask,
    TransferRepository,
    fine_tuned_ddpg,
    pretrain_ddpg,
    ranking_loss,
)
from repro.transfer.mapping import workload_distance
from repro.transfer.repository import mean_metric_signature
from repro.transfer.rgpe import compute_rgpe_weights
from repro.tuning import DatabaseObjective, TuningSession


def _make_history(space, workload, n=15, seed=0):
    server = MySQLServer(workload, "B", seed=seed)
    obj = DatabaseObjective(server, space)
    history = History(space, task_id=workload)
    for config in space.sample_configurations(n, np.random.default_rng(seed)):
        obs = obj(config)
        if obs.failed:
            obs.score = obj.failure_fallback_score()
        history.append(obs)
    return history


@pytest.fixture(scope="module")
def repo(sysbench_space):
    tasks = [
        SourceTask("SEATS", _make_history(sysbench_space, "SEATS", seed=1)),
        SourceTask("Voter", _make_history(sysbench_space, "Voter", seed=2)),
    ]
    return TransferRepository(tasks)


class TestRepository:
    def test_signatures_computed(self, repo):
        for task in repo:
            assert task.metric_signature.size > 0

    def test_most_similar_prefers_itself(self, sysbench_space, repo):
        seats_again = _make_history(sysbench_space, "SEATS", seed=9)
        signature = mean_metric_signature(seats_again)
        assert repo.most_similar(signature).workload_name == "SEATS"

    def test_empty_repository_raises(self):
        with pytest.raises(ValueError):
            TransferRepository().most_similar(np.ones(3))

    def test_training_data_standardized(self, repo):
        for task in repo:
            __, y = task.training_data()
            assert abs(y.mean()) < 1e-9
            assert y.std() == pytest.approx(1.0, abs=1e-6)

    def test_workload_distance_symmetry(self, sysbench_space):
        a = _make_history(sysbench_space, "SEATS", seed=1)
        b = _make_history(sysbench_space, "Voter", seed=2)
        assert workload_distance(a, b) == pytest.approx(workload_distance(b, a))
        assert workload_distance(a, a) == 0.0


class TestRankingLoss:
    def test_perfect_order_zero_loss(self):
        y = np.array([1.0, 2.0, 3.0])
        assert ranking_loss(y, y) == 0

    def test_reversed_order_max_loss(self):
        y = np.array([1.0, 2.0, 3.0])
        assert ranking_loss(-y, y) == 3

    def test_weights_favor_target_with_no_sources(self):
        weights = compute_rgpe_weights(
            [], np.zeros((2, 2)), np.array([1.0, 2.0]),
            lambda X, y: None, np.random.default_rng(0),
        )
        np.testing.assert_array_equal(weights, [1.0])


class TestRGPEOptimizers:
    def test_rgpe_smac_suggests_valid(self, sysbench_space, repo):
        opt = RGPESMAC(sysbench_space, repo, seed=0)
        history = _make_history(sysbench_space, "TPC-C", n=12, seed=4)
        config = opt.suggest(history)
        assert sysbench_space.validate(config)
        assert opt.last_weights_ is not None
        assert opt.last_weights_.sum() == pytest.approx(1.0)

    def test_rgpe_mixed_bo_suggests_valid(self, sysbench_space, repo):
        opt = RGPEMixedKernelBO(sysbench_space, repo, seed=0)
        history = _make_history(sysbench_space, "TPC-C", n=12, seed=4)
        config = opt.suggest(history)
        assert sysbench_space.validate(config)

    def test_ensemble_variance_composition(self):
        class Flat:
            def __init__(self, mean, std):
                self._m, self._s = mean, std

            def predict_with_std(self, X):
                n = len(X)
                return np.full(n, self._m), np.full(n, self._s)

        ens = RGPESurrogate([Flat(1.0, 1.0)], Flat(3.0, 1.0), np.array([0.5, 0.5]))
        mean, std = ens.predict_with_std(np.zeros((2, 2)))
        np.testing.assert_allclose(mean, 2.0)
        np.testing.assert_allclose(std, np.sqrt(0.5))

    def test_weight_count_validation(self):
        with pytest.raises(ValueError):
            RGPESurrogate([], None, np.array([0.5, 0.5]))


class TestMapping:
    def test_maps_and_augments(self, sysbench_space, repo):
        base = SMAC(sysbench_space, seed=0)
        opt = MappedOptimizer(base, repo)
        history = _make_history(sysbench_space, "SEATS", n=12, seed=5)
        config = opt.suggest(history)
        assert sysbench_space.validate(config)
        assert opt.mapped_workload_ in ("SEATS", "Voter")

    def test_empty_repo_falls_through(self, sysbench_space):
        opt = MappedOptimizer(MixedKernelBO(sysbench_space, seed=0), TransferRepository())
        history = _make_history(sysbench_space, "SEATS", n=6, seed=5)
        assert sysbench_space.validate(opt.suggest(history))
        assert opt.mapped_workload_ is None


class TestFineTune:
    def test_pretrain_returns_agent_and_repo(self, sysbench_space):
        agent, repository = pretrain_ddpg(
            sysbench_space, ["Voter"], iterations_per_source=12, seed=0
        )
        assert len(repository) == 1
        assert agent.action_dim == sysbench_space.n_dims

    def test_fine_tuned_agent_reuses_weights(self, sysbench_space):
        agent, __ = pretrain_ddpg(sysbench_space, ["Voter"], iterations_per_source=8, seed=0)
        tuned = fine_tuned_ddpg(sysbench_space, agent, seed=1)
        state = np.zeros(agent.state_dim)
        np.testing.assert_allclose(
            tuned.agent.act(state), agent.act(state), atol=1e-12
        )
        assert len(tuned.agent.buffer) == 0  # buffer cleared

    def test_fine_tuned_runs_session(self, sysbench_space):
        agent, __ = pretrain_ddpg(sysbench_space, ["Voter"], iterations_per_source=8, seed=0)
        opt = fine_tuned_ddpg(sysbench_space, agent, seed=1)
        server = MySQLServer("TPC-C", "B", seed=3)
        session = TuningSession(
            DatabaseObjective(server, sysbench_space), opt, sysbench_space,
            max_iterations=8, n_initial=4, seed=3,
        )
        history = session.run()
        assert len(history) == 8
