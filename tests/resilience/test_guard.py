"""GuardedObjective: exception containment, deadlines, retries, quarantine,
and the circuit breaker."""

import math

import pytest

from repro.dbms.server import MySQLServer
from repro.optimizers import OPTIMIZER_REGISTRY
from repro.parallel.faults import (
    HangingObjective,
    RaisingObjective,
    TransientObjective,
)
from repro.resilience import FailureKind, GuardedObjective, GuardPolicy
from repro.tuning.objective import DatabaseObjective
from repro.tuning.session import TuningSession

GIB = 1 << 30


def _db_objective(space, seed=11):
    return DatabaseObjective(MySQLServer("SYSBENCH", "B", seed=seed), space)


def _run_session(objective, space, n_iterations=8, seed=3, **kwargs):
    optimizer = OPTIMIZER_REGISTRY["random"](space, seed=seed)
    session = TuningSession(
        objective,
        optimizer,
        space,
        max_iterations=n_iterations,
        n_initial=2,
        seed=seed,
        **kwargs,
    )
    return session, session.run()


# ----------------------------------------------------------------------
# the regression the guard exists for
# ----------------------------------------------------------------------
def test_unguarded_objective_exception_aborts_session(sysbench_space):
    chaos = RaisingObjective(_db_objective(sysbench_space), at_calls=(2,))
    with pytest.raises(ValueError, match="injected objective bug"):
        _run_session(chaos, sysbench_space)


def test_guarded_session_completes_budget_with_clamped_errors(sysbench_space):
    chaos = RaisingObjective(_db_objective(sysbench_space), at_calls=(2, 4))
    guarded = GuardedObjective(chaos, sysbench_space, seed=0)
    _, history = _run_session(guarded, sysbench_space, n_iterations=8)
    assert len(history) == 8
    # The space also produces natural crashes (oversized buffer pools), so
    # select the injected exceptions by kind.
    errors = [
        o for o in history if o.failure_kind is FailureKind.EVALUATION_ERROR
    ]
    assert len(errors) == 2
    assert all(not math.isnan(o.score) for o in errors)  # clamped, not NaN
    assert all("ValueError" in o.failure_reason for o in errors)


# ----------------------------------------------------------------------
# deadlines
# ----------------------------------------------------------------------
def test_wall_clock_watchdog_yields_timeout(sysbench_space):
    chaos = HangingObjective(
        _db_objective(sysbench_space), at_calls=(1,), hang_seconds=5.0
    )
    policy = GuardPolicy(eval_timeout_seconds=0.05)
    guarded = GuardedObjective(chaos, sysbench_space, policy=policy, seed=0)
    _, history = _run_session(guarded, sysbench_space, n_iterations=4)
    assert len(history) == 4
    timeouts = [o for o in history if o.failure_kind is FailureKind.TIMEOUT]
    assert len(timeouts) == 1
    assert timeouts[0].simulated_seconds == 0.0  # no cap configured


def test_simulated_seconds_cap_converts_success_to_timeout(sysbench_space):
    policy = GuardPolicy(max_simulated_seconds=100.0)  # below 215s per eval
    guarded = GuardedObjective(_db_objective(sysbench_space), sysbench_space, policy=policy)
    obs = guarded(sysbench_space.default_configuration())
    assert obs.failed
    assert obs.failure_kind is FailureKind.TIMEOUT
    assert obs.simulated_seconds == 100.0  # clamped at the cap


# ----------------------------------------------------------------------
# transient retries
# ----------------------------------------------------------------------
def test_transient_failures_are_retried_with_attempt_accounting(sysbench_space):
    chaos = TransientObjective(_db_objective(sysbench_space), fail_calls=(1,))
    sleeps = []
    policy = GuardPolicy(max_transient_retries=2)
    guarded = GuardedObjective(
        chaos, sysbench_space, policy=policy, seed=0, sleep=sleeps.append
    )
    first = guarded(sysbench_space.default_configuration())
    assert not first.failed and first.eval_attempts == 1
    second = guarded(sysbench_space.default_configuration())  # fails once, retried
    assert not second.failed
    assert second.eval_attempts == 2
    assert guarded.n_retries == 1
    assert len(sleeps) == 1 and sleeps[0] > 0.0


def test_transient_retries_are_bounded(sysbench_space):
    chaos = TransientObjective(
        _db_objective(sysbench_space), fail_calls=tuple(range(10))
    )
    policy = GuardPolicy(max_transient_retries=2)
    guarded = GuardedObjective(
        chaos, sysbench_space, policy=policy, seed=0, sleep=lambda _: None
    )
    obs = guarded(sysbench_space.default_configuration())
    assert obs.failed
    assert obs.failure_kind is FailureKind.TRANSIENT
    assert obs.eval_attempts == 3  # 1 original + 2 retries


def test_backoff_schedule_is_seed_deterministic(sysbench_space):
    def collect(seed):
        chaos = TransientObjective(
            _db_objective(sysbench_space), fail_calls=tuple(range(10))
        )
        sleeps = []
        guarded = GuardedObjective(
            chaos,
            sysbench_space,
            policy=GuardPolicy(max_transient_retries=3),
            seed=seed,
            sleep=sleeps.append,
        )
        guarded(sysbench_space.default_configuration())
        return sleeps

    assert collect(7) == collect(7)
    assert collect(7) != collect(8)


def test_crash_is_never_retried(sysbench_space):
    guarded = GuardedObjective(
        _db_objective(sysbench_space),
        sysbench_space,
        policy=GuardPolicy(max_transient_retries=5),
        seed=0,
        sleep=lambda _: None,
    )
    crash = dict(sysbench_space.default_configuration())
    crash["innodb_buffer_pool_size"] = 16 * GIB  # ~RAM: crash band
    obs = guarded(crash)
    assert obs.failed
    assert obs.failure_kind is FailureKind.CRASH
    assert obs.eval_attempts == 1
    assert guarded.n_retries == 0


# ----------------------------------------------------------------------
# quarantine
# ----------------------------------------------------------------------
def _crashing_config(space, bp_gib):
    config = dict(space.default_configuration())
    config["innodb_buffer_pool_size"] = bp_gib * GIB
    return config


def test_quarantine_short_circuits_at_zero_simulated_cost(sysbench_space):
    inner = _db_objective(sysbench_space)
    policy = GuardPolicy(quarantine_crashes=3, quarantine_radius=0.2)
    guarded = GuardedObjective(inner, sysbench_space, policy=policy, seed=0)
    for bp in (30, 31, 32):
        obs = guarded(_crashing_config(sysbench_space, bp))
        assert obs.failed and obs.failure_kind in (
            FailureKind.CRASH,
            FailureKind.UNSTARTABLE,
        )
        assert obs.simulated_seconds > 0.0  # real crashes still cost the restart
    assert len(guarded.quarantine_regions) == 1

    calls_before = inner.server.n_evaluations
    post = guarded(_crashing_config(sysbench_space, 31))
    assert post.failed
    assert post.failure_kind is FailureKind.CRASH
    assert post.simulated_seconds == 0.0  # short-circuit: no restart paid
    assert "quarantined" in post.failure_reason
    assert inner.server.n_evaluations == calls_before  # inner never touched
    assert guarded.n_short_circuits == 1
    assert guarded.quarantine_log[-1]["event"] == "short_circuit"


def test_quarantine_leaves_distant_configs_alone(sysbench_space):
    policy = GuardPolicy(quarantine_crashes=3, quarantine_radius=0.05)
    guarded = GuardedObjective(
        _db_objective(sysbench_space), sysbench_space, policy=policy, seed=0
    )
    for bp in (30, 31, 32):
        guarded(_crashing_config(sysbench_space, bp))
    assert guarded.quarantine_regions
    ok = guarded(sysbench_space.default_configuration())
    assert not ok.failed


def test_quarantine_can_be_disabled(sysbench_space):
    policy = GuardPolicy(quarantine_enabled=False, quarantine_crashes=1)
    guarded = GuardedObjective(
        _db_objective(sysbench_space), sysbench_space, policy=policy, seed=0
    )
    for bp in (30, 31, 32):
        guarded(_crashing_config(sysbench_space, bp))
    assert guarded.quarantine_regions == []
    assert guarded.n_short_circuits == 0


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------
def test_breaker_trips_and_probe_closes_it(sysbench_space):
    chaos = RaisingObjective(_db_objective(sysbench_space), at_calls=tuple(range(3)))
    policy = GuardPolicy(breaker_failures=3, quarantine_enabled=False)
    guarded = GuardedObjective(chaos, sysbench_space, policy=policy, seed=0)
    default = sysbench_space.default_configuration()
    for _ in range(3):
        assert guarded(default).failed
    assert guarded.breaker_trips == 1
    # Next call probes the default (healthy now), closes the breaker, and
    # evaluates normally — folding the probe's simulated cost in.
    obs = guarded(default)
    assert not obs.failed
    assert obs.metrics.get("guard_probe_seconds", 0.0) > 0.0
    assert guarded.summary()["breaker_open"] is False


def test_breaker_stays_open_while_probe_fails(sysbench_space):
    chaos = RaisingObjective(_db_objective(sysbench_space), always=True)
    policy = GuardPolicy(breaker_failures=2, quarantine_enabled=False)
    guarded = GuardedObjective(chaos, sysbench_space, policy=policy, seed=0)
    default = sysbench_space.default_configuration()
    for _ in range(2):
        guarded(default)
    assert guarded.breaker_trips == 1
    calls_before = chaos.n_calls
    obs = guarded(default)
    assert obs.failed
    assert "circuit breaker open" in obs.failure_reason
    # The probe consumed one inner call; the config itself was never tried.
    assert chaos.n_calls == calls_before + 1


# ----------------------------------------------------------------------
# transparency
# ----------------------------------------------------------------------
def test_guard_delegates_inner_interface(sysbench_space):
    inner = _db_objective(sysbench_space)
    guarded = GuardedObjective(inner, sysbench_space, seed=0)
    assert guarded.direction == inner.direction
    assert guarded.default_score() == inner.default_score()
    assert guarded.failure_fallback_score() == inner.failure_fallback_score()
    assert guarded.server is inner.server


def test_guard_policy_validation():
    with pytest.raises(ValueError):
        GuardPolicy(eval_timeout_seconds=0.0)
    with pytest.raises(ValueError):
        GuardPolicy(max_transient_retries=-1)
    with pytest.raises(ValueError):
        GuardPolicy(quarantine_crashes=0)
    with pytest.raises(ValueError):
        GuardPolicy(breaker_failures=0)


def test_guard_summary_counts(sysbench_space):
    chaos = TransientObjective(_db_objective(sysbench_space), fail_calls=(0,))
    guarded = GuardedObjective(
        chaos,
        sysbench_space,
        policy=GuardPolicy(max_transient_retries=1),
        seed=0,
        sleep=lambda _: None,
    )
    guarded(sysbench_space.default_configuration())
    summary = guarded.summary()
    assert summary["n_calls"] == 1
    assert summary["n_retries"] == 1
    assert summary["n_guard_failures"] == 1
