"""Fixture package: checkpoint-schema and clock-flow cases (R013/R014)."""
