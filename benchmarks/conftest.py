"""Shared benchmark configuration.

Benches run at :func:`repro.experiments.scale.bench_scale` by default
(minutes); set ``REPRO_SCALE=paper`` for the paper's full budgets.
Each bench prints the regenerated table/figure data so results can be
compared against EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.experiments.scale import bench_scale


@pytest.fixture(scope="session")
def scale():
    return bench_scale()


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
