"""Tests of the analytical performance model: calibration, interactions,
failure semantics, and internal-metric consistency."""

import numpy as np
import pytest

from repro.dbms.engine import PerformanceModel
from repro.dbms.instances import INSTANCES
from repro.dbms.metrics import INTERNAL_METRIC_NAMES
from repro.dbms.server import MySQLServer
from repro.workloads import ALL_WORKLOADS

GB = 1024**3
MB = 1024**2


@pytest.fixture
def quiet_server():
    return MySQLServer("SYSBENCH", "B", noise=False)


@pytest.fixture
def quiet_job():
    return MySQLServer("JOB", "B", noise=False)


class TestCalibration:
    def test_default_matches_anchor_for_all_workloads(self):
        for name, profile in ALL_WORKLOADS.items():
            server = MySQLServer(name, "B", noise=False)
            result = server.evaluate(server.default_configuration())
            anchor = (
                profile.base_latency_s if profile.is_analytical else profile.base_throughput
            )
            assert result.objective == pytest.approx(anchor, rel=1e-6), name

    def test_sysbench_headroom_in_paper_range(self, quiet_server):
        """A well-tuned config should land roughly at the paper's ~2.5-4x."""
        d = quiet_server.default_configuration()
        tuned = d.with_values(
            innodb_flush_log_at_trx_commit="0",
            sync_binlog=0,
            innodb_log_file_size=4 * GB,
            innodb_io_capacity=8000,
            innodb_doublewrite="OFF",
            innodb_flush_method="O_DIRECT",
            innodb_buffer_pool_size=13 * GB,
            thread_cache_size=128,
        )
        ratio = quiet_server.evaluate(tuned).objective / quiet_server.evaluate(d).objective
        assert 2.0 < ratio < 4.5

    def test_job_headroom_in_paper_range(self, quiet_job):
        d = quiet_job.default_configuration()
        tuned = d.with_values(
            join_buffer_size=64 * MB,
            tmp_table_size=256 * MB,
            max_heap_table_size=256 * MB,
            sort_buffer_size=32 * MB,
            innodb_stats_method="nulls_unequal",
            innodb_random_read_ahead="ON",
            read_rnd_buffer_size=8 * MB,
            innodb_read_io_threads=16,
        )
        reduction = 1.0 - quiet_job.evaluate(tuned).objective / quiet_job.evaluate(d).objective
        assert 0.25 < reduction < 0.6

    def test_deterministic_without_noise(self, quiet_server):
        config = quiet_server.default_configuration().with_values(sync_binlog=0)
        a = quiet_server.evaluate(config).objective
        b = quiet_server.evaluate(config).objective
        assert a == b

    def test_seeded_noise_reproducible(self):
        s1 = MySQLServer("SYSBENCH", "B", seed=5)
        s2 = MySQLServer("SYSBENCH", "B", seed=5)
        c = s1.default_configuration()
        assert s1.evaluate(c).objective == s2.evaluate(c).objective


class TestKnobEffects:
    def test_durability_knobs_help_write_heavy(self, quiet_server):
        d = quiet_server.default_configuration()
        base = quiet_server.evaluate(d).objective
        relaxed = quiet_server.evaluate(
            d.with_values(innodb_flush_log_at_trx_commit="0")
        ).objective
        assert relaxed > base * 1.3

    def test_query_cache_is_a_trap_for_write_heavy(self, quiet_server):
        d = quiet_server.default_configuration()
        base = quiet_server.evaluate(d).objective
        qc_on = quiet_server.evaluate(
            d.with_values(query_cache_type="ON", query_cache_size=256 * MB)
        ).objective
        assert qc_on < base  # high variance, negative tunability

    def test_max_connections_trap(self, quiet_server):
        d = quiet_server.default_configuration()
        base = quiet_server.evaluate(d).objective
        throttled = quiet_server.evaluate(d.with_values(max_connections=10)).objective
        raised = quiet_server.evaluate(d.with_values(max_connections=5000)).objective
        assert throttled < base * 0.7  # catastrophic downside
        assert raised == pytest.approx(base, rel=0.02)  # no upside

    def test_big_tables_trap_for_olap(self, quiet_job):
        d = quiet_job.default_configuration()
        base = quiet_job.evaluate(d).objective
        forced_disk = quiet_job.evaluate(d.with_values(big_tables="ON")).objective
        assert forced_disk > base  # latency increases

    def test_filler_knob_has_no_effect(self, quiet_server):
        d = quiet_server.default_configuration()
        base = quiet_server.evaluate(d).objective
        changed = quiet_server.evaluate(
            d.with_values(ft_min_word_len=10, net_retry_count=500, default_week_format=3)
        ).objective
        assert changed == pytest.approx(base, rel=1e-9)

    def test_tmp_table_max_heap_interaction(self, quiet_job):
        """min(tmp_table_size, max_heap_table_size): either alone is useless."""
        d = quiet_job.default_configuration()
        base = quiet_job.evaluate(d).objective
        only_tmp = quiet_job.evaluate(d.with_values(tmp_table_size=512 * MB)).objective
        both = quiet_job.evaluate(
            d.with_values(tmp_table_size=512 * MB, max_heap_table_size=512 * MB)
        ).objective
        assert abs(only_tmp - base) / base < 0.02
        assert both < base * 0.9

    def test_flush_method_buffer_pool_interaction(self, quiet_server):
        """O_DIRECT only pays off with a big buffer pool (no OS cache).

        The baseline relaxes checkpoint/flush saturation so the read-path
        effect is visible at the throughput bottleneck; the assertion is
        on the interaction sign: O_DIRECT's advantage grows with the
        buffer pool.
        """
        d = quiet_server.default_configuration().with_values(
            innodb_log_file_size=4 * GB, innodb_io_capacity=3000
        )

        def value(bp_gb, method):
            return quiet_server.evaluate(
                d.with_values(
                    innodb_buffer_pool_size=bp_gb * GB, innodb_flush_method=method
                )
            ).objective

        advantage_small = value(2, "O_DIRECT") - value(2, "fsync")
        advantage_big = value(13, "O_DIRECT") - value(13, "fsync")
        assert advantage_big > advantage_small

    def test_io_capacity_is_unimodal(self, quiet_server):
        d = quiet_server.default_configuration().with_values(
            innodb_log_file_size=4 * GB
        )
        values = [
            quiet_server.evaluate(d.with_values(innodb_io_capacity=cap)).objective
            for cap in (100, 12000, 40000)
        ]
        assert values[1] > values[0]  # too low stalls
        assert values[1] > values[2]  # too high interferes


class TestFailureSemantics:
    def test_memory_overcommit_crashes(self, quiet_server):
        d = quiet_server.default_configuration()
        oom = d.with_values(
            innodb_buffer_pool_size=15 * GB,
            sort_buffer_size=64 * MB,
            join_buffer_size=64 * MB,
        )
        result = quiet_server.evaluate(oom)
        assert result.failed
        assert "oom" in (result.failure_reason or "")
        assert np.isnan(result.objective)

    def test_failure_counted(self, quiet_server):
        before = quiet_server.n_failures
        quiet_server.evaluate(
            quiet_server.default_configuration().with_values(
                innodb_buffer_pool_size=30 * GB
            )
        )
        assert quiet_server.n_failures == before + 1

    def test_memory_footprint_monotone_in_buffer_pool(self):
        model = PerformanceModel(INSTANCES["B"])
        server = MySQLServer("SYSBENCH", "B", noise=False)
        d = server.full_space.complete(server.default_configuration())
        small = model.memory_footprint(d, server.workload)
        big = model.memory_footprint(
            server.full_space.complete(d.with_values(innodb_buffer_pool_size=12 * GB)),
            server.workload,
        )
        assert big > small


class TestInternalMetrics:
    def test_all_metrics_present_and_finite(self, quiet_server):
        result = quiet_server.evaluate(quiet_server.default_configuration())
        assert set(result.metrics) == set(INTERNAL_METRIC_NAMES)
        assert all(np.isfinite(v) for v in result.metrics.values())

    def test_metrics_track_buffer_pool(self, quiet_server):
        d = quiet_server.default_configuration()
        small = quiet_server.evaluate(d.with_values(innodb_buffer_pool_size=512 * MB))
        large = quiet_server.evaluate(d.with_values(innodb_buffer_pool_size=13 * GB))
        assert small.metrics["bp_hit_rate"] < large.metrics["bp_hit_rate"]
        assert small.metrics["bp_disk_reads_per_s"] > large.metrics["bp_disk_reads_per_s"]

    def test_metrics_track_tmp_tables(self, quiet_job):
        d = quiet_job.default_configuration()
        disk = quiet_job.evaluate(d.with_values(big_tables="ON"))
        mem = quiet_job.evaluate(
            d.with_values(tmp_table_size=512 * MB, max_heap_table_size=512 * MB)
        )
        assert (
            disk.metrics["created_tmp_disk_tables_per_s"]
            > mem.metrics["created_tmp_disk_tables_per_s"]
        )


class TestHardwareScaling:
    def test_bigger_instance_defaults_scale(self):
        d_small = MySQLServer("SYSBENCH", "A", noise=False)
        d_big = MySQLServer("SYSBENCH", "D", noise=False)
        # anchored defaults are equal by design, but the *achievable*
        # tuned throughput must be higher on the big box
        tuned_kwargs = dict(
            innodb_flush_log_at_trx_commit="0", sync_binlog=0,
            innodb_log_file_size=4 * GB, innodb_io_capacity=8000,
        )
        small_gain = (
            d_small.evaluate(d_small.default_configuration().with_values(**tuned_kwargs)).objective
        )
        big_gain = (
            d_big.evaluate(d_big.default_configuration().with_values(**tuned_kwargs)).objective
        )
        assert small_gain > 0 and big_gain > 0
