"""Fine-tuning a pre-trained DDPG agent (CDBTune/QTune transfer, §3.3).

The agent's networks are pre-trained by running full tuning sessions on
each source workload in turn (the paper pre-trains 300 iterations per
source); the resulting weights seed the target session's agent, which
continues training on target observations with reduced exploration noise.
The paper observes this transfer is unstable: an agent over-fitted to the
sources can be slower to adapt than training from scratch (§7.2).
"""

from __future__ import annotations

import copy

import numpy as np

from repro.dbms.server import MySQLServer
from repro.optimizers.ddpg import DDPG, DDPGAgent
from repro.space import ConfigurationSpace
from repro.tuning.objective import DatabaseObjective
from repro.tuning.session import TuningSession
from repro.transfer.repository import SourceTask, TransferRepository


def pretrain_ddpg(
    space: ConfigurationSpace,
    source_workloads: list[str],
    instance: str = "B",
    iterations_per_source: int = 300,
    seed: int | None = None,
) -> tuple[DDPGAgent, TransferRepository]:
    """Pre-train one DDPG agent across source workloads, in turn.

    Returns the trained agent and a :class:`TransferRepository` of the
    training observations — the paper uses the same observations as the
    historical data for workload mapping and RGPE ("for data fairness",
    §7.1).
    """
    agent = DDPGAgent(space.n_dims, seed=seed)
    repository = TransferRepository()
    for k, name in enumerate(source_workloads):
        server = MySQLServer(name, instance, seed=None if seed is None else seed + k)
        objective = DatabaseObjective(server, space)
        optimizer = DDPG(
            space,
            seed=None if seed is None else seed + 100 + k,
            agent=agent,
            noise_initial=0.4,
            noise_final=0.1,
            noise_decay_iters=iterations_per_source,
        )
        session = TuningSession(
            objective,
            optimizer,
            space,
            max_iterations=iterations_per_source,
            n_initial=10,
            seed=None if seed is None else seed + 200 + k,
        )
        history = session.run()
        repository.add(SourceTask(workload_name=name, history=history))
    return agent, repository


def fine_tuned_ddpg(
    space: ConfigurationSpace,
    pretrained: DDPGAgent,
    seed: int | None = None,
    noise_initial: float = 0.15,
) -> DDPG:
    """Build a DDPG optimizer seeded with a pre-trained agent's weights.

    The replay buffer is cleared (source transitions describe other
    workloads' dynamics); network weights and the state normalizer carry
    over, and exploration noise starts low — fine-tuning, not retraining.
    """
    agent = DDPGAgent(
        action_dim=pretrained.action_dim,
        state_dim=pretrained.state_dim,
        seed=seed,
    )
    agent.set_weights(pretrained.get_weights())
    agent.norm = copy.deepcopy(pretrained.norm)
    optimizer = DDPG(
        space,
        seed=seed,
        agent=agent,
        noise_initial=noise_initial,
        noise_final=0.03,
        noise_decay_iters=80,
    )
    optimizer.name = "fine-tune(ddpg)"
    return optimizer
