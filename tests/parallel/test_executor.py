"""Tests for the parallel experiment engine.

Covers the three tentpole guarantees: deterministic seed derivation
(serial == parallel bit-for-bit), crash containment (one dying run never
aborts the study), and per-run JSONL telemetry.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.dbms.catalog import mysql_knob_space
from repro.experiments.runner import run_sessions
from repro.optimizers.base import Observation
from repro.parallel import (
    ParallelExecutor,
    RegistryOptimizerFactory,
    RunSpec,
    attempt_records,
    derive_run_seeds,
    execute_run,
    final_records,
    read_telemetry,
)
from repro.space import Configuration


@pytest.fixture(scope="module")
def small_space():
    return mysql_knob_space(
        "B",
        knob_names=["innodb_flush_log_at_trx_commit", "innodb_log_file_size"],
        seed=0,
    )


class ExplodingObjective:
    """Picklable objective that always raises (simulates a worker crash)."""

    def __call__(self, config):
        raise RuntimeError("boom")

    def failure_fallback_score(self) -> float:
        return 0.0

    def default_score(self) -> float:
        return 0.0


class FlakyObjective:
    """Fails until a sentinel file exists, then succeeds (cross-process)."""

    def __init__(self, sentinel: str) -> None:
        self.sentinel = sentinel

    def __call__(self, config):
        if not os.path.exists(self.sentinel):
            with open(self.sentinel, "w") as fh:
                fh.write("attempted")
            raise RuntimeError("first-attempt crash")
        return Observation(
            config=Configuration(dict(config)), objective=1.0, score=1.0
        )

    def failure_fallback_score(self) -> float:
        return -1.0

    def default_score(self) -> float:
        return 0.0


class TestSeedDerivation:
    def test_deterministic(self):
        assert derive_run_seeds(7, 4) == derive_run_seeds(7, 4)
        assert derive_run_seeds(7, 4) != derive_run_seeds(8, 4)

    def test_streams_independent_within_and_across_runs(self):
        seeds = derive_run_seeds(0, 8)
        flat = [s for rs in seeds for s in (rs.server, rs.optimizer, rs.session)]
        assert len(set(flat)) == len(flat)

    def test_prefix_stable(self):
        # Adding runs must not change the seeds of earlier runs.
        assert derive_run_seeds(3, 2) == derive_run_seeds(3, 5)[:2]


class TestSerialParallelEquivalence:
    def test_histories_identical(self, small_space):
        kwargs = dict(
            n_runs=3, n_iterations=8, n_initial=4, instance="B", seed=11
        )
        factory = RegistryOptimizerFactory("vanilla_bo")
        serial = run_sessions("SYSBENCH", small_space, factory, n_workers=1, **kwargs)
        parallel = run_sessions("SYSBENCH", small_space, factory, n_workers=4, **kwargs)
        assert len(serial) == len(parallel) == 3
        for a, b in zip(serial, parallel):
            assert a.scores().tolist() == b.scores().tolist()
            assert [o.iteration for o in a] == [o.iteration for o in b]
            assert [o.config for o in a] == [o.config for o in b]
            assert [o.objective for o in a] == [o.objective for o in b]

    def test_closure_factories_still_work_in_parallel(self, small_space):
        # Unpicklable factories fall back to in-process execution with
        # identical results instead of erroring.
        from repro.optimizers import RandomSearch

        factory = lambda s, sd: RandomSearch(s, seed=sd)  # noqa: E731
        serial = run_sessions(
            "Voter", small_space, factory, n_runs=2, n_iterations=5, seed=3
        )
        parallel = run_sessions(
            "Voter", small_space, factory, n_runs=2, n_iterations=5, seed=3, n_workers=2
        )
        for a, b in zip(serial, parallel):
            assert a.scores().tolist() == b.scores().tolist()


def _spec(space, run_index, objective=None, n_iterations=4):
    return RunSpec(
        run_index=run_index,
        workload="Voter",
        space=space,
        n_iterations=n_iterations,
        n_initial=0,
        optimizer_factory=RegistryOptimizerFactory("random"),
        objective=objective,
        server_seed=run_index,
        optimizer_seed=run_index + 1,
        session_seed=run_index + 2,
        tags={"run": run_index},
    )


class TestCrashResilience:
    @pytest.mark.parametrize("n_workers", [1, 3])
    def test_one_crashing_run_does_not_abort_the_rest(self, small_space, n_workers):
        specs = [
            _spec(small_space, 0),
            _spec(small_space, 1, objective=ExplodingObjective()),
            _spec(small_space, 2),
        ]
        results = ParallelExecutor(n_workers=n_workers).run(specs)
        assert [r.run_index for r in results] == [0, 1, 2]
        assert results[0].history is not None and results[2].history is not None
        assert results[1].failed and results[1].history is None
        assert "boom" in results[1].error
        # failed run was retried exactly once
        assert results[1].attempts == 2
        assert results[0].attempts == 1

    def test_retry_recovers_transient_failures(self, small_space, tmp_path):
        sentinel = str(tmp_path / "flaky-sentinel")
        specs = [_spec(small_space, 0, objective=FlakyObjective(sentinel))]
        results = ParallelExecutor(n_workers=2).run(specs)
        assert not results[0].failed
        assert results[0].attempts == 2
        assert len(results[0].history) == 4

    def test_run_sessions_warns_and_drops_dead_runs(self, small_space, monkeypatch):
        import repro.experiments.runner as runner_mod

        real_build = runner_mod.build_session_specs

        def sabotaged(*args, **kwargs):
            specs = real_build(*args, **kwargs)
            specs[1].objective = ExplodingObjective()
            return specs

        monkeypatch.setattr(runner_mod, "build_session_specs", sabotaged)
        with pytest.warns(RuntimeWarning, match="1/3 runs failed"):
            histories = run_sessions(
                "Voter",
                small_space,
                RegistryOptimizerFactory("random"),
                n_runs=3,
                n_iterations=4,
                n_initial=0,
                seed=5,
            )
        assert len(histories) == 2


class TestTelemetry:
    def test_final_records(self, small_space, tmp_path):
        path = str(tmp_path / "telemetry.jsonl")
        specs = [
            _spec(small_space, 0),
            _spec(small_space, 1, objective=ExplodingObjective()),
        ]
        ParallelExecutor(n_workers=1, telemetry_path=path).run(specs)
        finals = final_records(read_telemetry(path))
        assert len(finals) == 2
        ok, bad = finals
        assert ok["status"] == "ok" and bad["status"] == "failed"
        assert ok["n_iterations"] == 4
        assert ok["wall_seconds"] > 0
        assert ok["suggest_seconds"] >= 0
        assert ok["eval_seconds"] > 0
        assert ok["simulated_hours"] > 0
        assert ok["tags"] == {"run": 0}
        assert bad["attempts"] == 2
        assert "boom" in bad["error"]

    def test_streams_one_record_per_attempt(self, small_space, tmp_path):
        # The docstring contract: records land per finished *attempt*,
        # not once at study end — a failed-then-retried run leaves one
        # line per execution, each tagged with its attempt number.
        path = str(tmp_path / "telemetry.jsonl")
        specs = [
            _spec(small_space, 0),
            _spec(small_space, 1, objective=ExplodingObjective()),
        ]
        ParallelExecutor(n_workers=1, telemetry_path=path).run(specs)
        streamed = attempt_records(read_telemetry(path))
        assert [(r["run_index"], r["attempt"], r["status"]) for r in streamed] == [
            (0, 1, "ok"),
            (1, 1, "failed"),
            (1, 2, "failed"),
        ]

    def test_append_only(self, small_space, tmp_path):
        path = str(tmp_path / "telemetry.jsonl")
        executor = ParallelExecutor(n_workers=1, telemetry_path=path)
        executor.run([_spec(small_space, 0)])
        executor.run([_spec(small_space, 1)])
        assert [r["run_index"] for r in final_records(read_telemetry(path))] == [0, 1]


class TestExecuteRun:
    def test_telemetry_fields_populated(self, small_space):
        result = execute_run(_spec(small_space, 0, n_iterations=6))
        assert not result.failed
        assert result.n_iterations == 6
        assert result.simulated_hours > 0
        assert result.n_failed_evals >= 0
        assert result.eval_seconds > 0

    def test_spec_validation(self, small_space):
        with pytest.raises(ValueError, match="exactly one"):
            RunSpec(
                run_index=0,
                workload="Voter",
                space=small_space,
                n_iterations=1,
            )

    def test_never_raises(self, small_space):
        result = execute_run(_spec(small_space, 0, objective=ExplodingObjective()))
        assert result.failed
        assert "RuntimeError" in result.error


class TestTimedObjective:
    def test_delegates_unknown_attributes(self):
        from repro.parallel.executor import _TimedObjective

        class Inner:
            direction = "min"
            server = "fake-server"

            def score_of(self, value):
                return -value

            def __call__(self, config):
                return config

            def failure_fallback_score(self):
                return -7.0

        timed = _TimedObjective(Inner())
        # Harness code inspecting the objective must see identical
        # behavior with and without the timing wrapper.
        assert timed.direction == "min"
        assert timed.server == "fake-server"
        assert timed.score_of(3.0) == pytest.approx(-3.0)
        assert timed.failure_fallback_score() == pytest.approx(-7.0)
        assert timed("cfg") == "cfg"
        assert timed.eval_seconds > 0

    def test_missing_attribute_still_raises(self):
        from repro.parallel.executor import _TimedObjective

        timed = _TimedObjective(object())
        with pytest.raises(AttributeError):
            timed.no_such_attribute


class TestJitter:
    def test_deterministic_per_attempt(self):
        executor = ParallelExecutor(n_workers=2)
        other = ParallelExecutor(n_workers=4)
        for attempt in (1, 2, 3):
            assert executor._jitter(attempt) == other._jitter(attempt)
        assert executor._jitter(1) != executor._jitter(2)
        assert all(0.05 <= executor._jitter(a) <= 0.25 for a in range(1, 6))


class TestDeterminismAcrossWorkerCounts:
    def test_seed_reuse_matches_numpy_streams(self, small_space):
        # The derived server seed drives default_rng directly; verify the
        # engine-built server reproduces a hand-built one.
        from repro.dbms.server import MySQLServer

        seeds = derive_run_seeds(42, 1)[0]
        a = MySQLServer("SYSBENCH", "B", seed=seeds.server)
        b = MySQLServer("SYSBENCH", "B", seed=seeds.server)
        config = small_space.default_configuration()
        ra = a.evaluate(small_space.complete(config))
        rb = b.evaluate(small_space.complete(config))
        assert ra.objective == rb.objective
        assert np.isfinite(ra.objective)
