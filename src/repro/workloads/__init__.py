"""The paper's nine benchmark workloads (Table 4).

Each workload is represented by a :class:`WorkloadProfile` that carries the
characteristics the paper reports (class, data size, table count, read-only
transaction fraction) plus the access-pattern parameters that drive the
simulated DBMS response surface (point/range/join mix, temp-table pressure,
working-set size, client parallelism, and the objective direction).
"""

from repro.workloads.profiles import (
    ALL_WORKLOADS,
    JOB,
    OLTP_WORKLOADS,
    SEATS,
    SIBENCH,
    SMALLBANK,
    SYSBENCH,
    TATP,
    TPCC,
    TWITTER,
    VOTER,
    WorkloadProfile,
    get_workload,
    workload_table,
)

__all__ = [
    "ALL_WORKLOADS",
    "JOB",
    "OLTP_WORKLOADS",
    "SEATS",
    "SIBENCH",
    "SMALLBANK",
    "SYSBENCH",
    "TATP",
    "TPCC",
    "TWITTER",
    "VOTER",
    "WorkloadProfile",
    "get_workload",
    "workload_table",
]
