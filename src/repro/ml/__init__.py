"""From-scratch machine-learning substrate.

The offline environment provides only numpy/scipy, so every model the paper
relies on (scikit-learn regressors, the fANOVA/SHAP libraries' internals,
BoTorch GPs, PyTorch networks) is implemented here from first principles:

- :mod:`repro.ml.preprocessing` — scalers and polynomial features,
- :mod:`repro.ml.metrics` — regression and ranking metrics,
- :mod:`repro.ml.model_selection` — K-fold CV utilities,
- :mod:`repro.ml.linear` — OLS / Ridge / coordinate-descent Lasso,
- :mod:`repro.ml.tree` — CART regression trees,
- :mod:`repro.ml.forest` — random forests with predictive variance,
- :mod:`repro.ml.boosting` — gradient-boosted trees,
- :mod:`repro.ml.neighbors` — k-nearest-neighbour regression,
- :mod:`repro.ml.svm` — epsilon-SVR / NuSVR (kernelized dual ascent),
- :mod:`repro.ml.kernels` + :mod:`repro.ml.gp` — Gaussian processes,
- :mod:`repro.ml.neural` — MLPs with Adam (DDPG actor/critic substrate).
"""

from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.forest import RandomForestRegressor
from repro.ml.gp import GaussianProcessRegressor
from repro.ml.kernels import (
    ConstantKernel,
    HammingKernel,
    Matern52Kernel,
    MixedKernel,
    ProductKernel,
    RBFKernel,
    SumKernel,
    WhiteKernel,
)
from repro.ml.linear import LassoRegression, LinearRegression, RidgeRegression
from repro.ml.metrics import (
    kendall_tau,
    mean_absolute_error,
    mean_squared_error,
    r2_score,
    root_mean_squared_error,
    spearman_rho,
)
from repro.ml.model_selection import KFold, cross_validate, train_test_split
from repro.ml.neighbors import KNNRegressor
from repro.ml.neural import MLP, Adam, DenseLayer
from repro.ml.preprocessing import MinMaxScaler, PolynomialFeatures, StandardScaler
from repro.ml.svm import EpsilonSVR, NuSVR
from repro.ml.tree import DecisionTreeRegressor

__all__ = [
    "Adam",
    "ConstantKernel",
    "DecisionTreeRegressor",
    "DenseLayer",
    "EpsilonSVR",
    "GaussianProcessRegressor",
    "GradientBoostingRegressor",
    "HammingKernel",
    "KFold",
    "KNNRegressor",
    "LassoRegression",
    "LinearRegression",
    "MLP",
    "Matern52Kernel",
    "MinMaxScaler",
    "MixedKernel",
    "NuSVR",
    "PolynomialFeatures",
    "ProductKernel",
    "RBFKernel",
    "RandomForestRegressor",
    "RidgeRegression",
    "StandardScaler",
    "SumKernel",
    "WhiteKernel",
    "cross_validate",
    "kendall_tau",
    "mean_absolute_error",
    "mean_squared_error",
    "r2_score",
    "root_mean_squared_error",
    "spearman_rho",
    "train_test_split",
]
