"""True positives for R003: unordered iteration feeding ordered output."""


def iterate_set_call(items):
    out = []
    for item in set(items):  # finding: set iteration
        out.append(item)
    return out


def iterate_set_literal():
    return [x for x in {3, 1, 2}]  # finding: set literal iteration


def materialize_set(items):
    return list(set(items))  # finding: hash-dependent order


def enumerate_set(items):
    return [(i, x) for i, x in enumerate(set(items))]  # finding


def iterate_keys(mapping):
    out = []
    for key in mapping.keys():  # finding: implicit ordering contract
        out.append(key)
    return out
