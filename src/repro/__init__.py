"""dbtune-repro: reproduction of "Facilitating Database Tuning with
Hyper-Parameter Optimization: A Comprehensive Experimental Evaluation"
(Zhang et al., VLDB 2022).

The package mirrors the paper's three-module pipeline:

- :mod:`repro.selection` — knob selection (importance measurements),
- :mod:`repro.optimizers` — configuration optimization,
- :mod:`repro.transfer` — knowledge transfer,

built on top of from-scratch substrates:

- :mod:`repro.space` — heterogeneous configuration spaces,
- :mod:`repro.ml` — regression/ML models (GP, forests, Lasso, MLP, ...),
- :mod:`repro.dbms` — an analytical MySQL 5.7 simulator,
- :mod:`repro.workloads` — the paper's nine workloads,
- :mod:`repro.tuning` — tuning sessions and evaluation metrics,
- :mod:`repro.surrogate` — the surrogate tuning benchmark of Section 8,
- :mod:`repro.analysis` — sensitivity and overhead analyses.
"""

from repro.space import (
    CategoricalKnob,
    Configuration,
    ConfigurationSpace,
    ContinuousKnob,
    IntegerKnob,
)

__version__ = "1.0.0"

__all__ = [
    "CategoricalKnob",
    "Configuration",
    "ConfigurationSpace",
    "ContinuousKnob",
    "IntegerKnob",
    "__version__",
]
