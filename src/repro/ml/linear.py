"""Linear regression models: OLS, Ridge, and coordinate-descent Lasso.

Lasso (Tibshirani, 1996) is the importance measurement used by OtterTune:
the L1 penalty drives coefficients of irrelevant knobs to exactly zero.
The solver is cyclic coordinate descent with soft-thresholding, the same
algorithm scikit-learn uses.
"""

from __future__ import annotations

import numpy as np


class LinearRegression:
    """Ordinary least squares via the normal equations (pinv for stability)."""

    def __init__(self, fit_intercept: bool = True) -> None:
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearRegression":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if self.fit_intercept:
            x_mean, y_mean = X.mean(axis=0), y.mean()
            Xc, yc = X - x_mean, y - y_mean
        else:
            x_mean, y_mean = np.zeros(X.shape[1]), 0.0
            Xc, yc = X, y
        self.coef_ = np.linalg.pinv(Xc) @ yc
        self.intercept_ = float(y_mean - x_mean @ self.coef_)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        return np.asarray(X, dtype=float) @ self.coef_ + self.intercept_


class RidgeRegression:
    """L2-regularized linear regression (closed form)."""

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True) -> None:
        if alpha < 0:
            raise ValueError("alpha must be >= 0")
        self.alpha = alpha
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RidgeRegression":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if self.fit_intercept:
            x_mean, y_mean = X.mean(axis=0), y.mean()
            Xc, yc = X - x_mean, y - y_mean
        else:
            x_mean, y_mean = np.zeros(X.shape[1]), 0.0
            Xc, yc = X, y
        d = Xc.shape[1]
        gram = Xc.T @ Xc + self.alpha * np.eye(d)
        self.coef_ = np.linalg.solve(gram, Xc.T @ yc)
        self.intercept_ = float(y_mean - x_mean @ self.coef_)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        return np.asarray(X, dtype=float) @ self.coef_ + self.intercept_


class LassoRegression:
    """L1-regularized linear regression via cyclic coordinate descent.

    Minimizes ``(1 / 2n) * ||y - Xw||^2 + alpha * ||w||_1``.  Inputs are
    internally standardized so the penalty treats all features equally;
    coefficients are reported on the standardized scale (what matters for
    importance ranking) unless ``rescale=True``.
    """

    def __init__(
        self,
        alpha: float = 0.01,
        max_iter: int = 1000,
        tol: float = 1e-6,
        standardize: bool = True,
    ) -> None:
        if alpha < 0:
            raise ValueError("alpha must be >= 0")
        self.alpha = alpha
        self.max_iter = max_iter
        self.tol = tol
        self.standardize = standardize
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.n_iter_: int = 0
        self._x_mean: np.ndarray | None = None
        self._x_scale: np.ndarray | None = None

    @staticmethod
    def _soft_threshold(value: float, threshold: float) -> float:
        if value > threshold:
            return value - threshold
        if value < -threshold:
            return value + threshold
        return 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LassoRegression":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        n, d = X.shape
        self._x_mean = X.mean(axis=0)
        if self.standardize:
            scale = X.std(axis=0)
            scale[scale == 0.0] = 1.0
        else:
            scale = np.ones(d)
        self._x_scale = scale
        Xs = (X - self._x_mean) / scale
        y_mean = y.mean()
        yc = y - y_mean

        w = np.zeros(d)
        residual = yc.copy()
        col_sq = (Xs**2).sum(axis=0)
        threshold = self.alpha * n
        for iteration in range(self.max_iter):
            max_delta = 0.0
            for j in range(d):
                if col_sq[j] == 0.0:
                    continue
                w_old = w[j]
                # rho: correlation of feature j with residual excluding j.
                rho = Xs[:, j] @ residual + col_sq[j] * w_old
                w_new = self._soft_threshold(rho, threshold) / col_sq[j]
                if w_new != w_old:
                    residual += Xs[:, j] * (w_old - w_new)
                    w[j] = w_new
                    max_delta = max(max_delta, abs(w_new - w_old))
            if max_delta < self.tol:
                break
        self.n_iter_ = iteration + 1
        self.coef_ = w
        self.intercept_ = float(y_mean)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None or self._x_mean is None or self._x_scale is None:
            raise RuntimeError("model is not fitted")
        Xs = (np.asarray(X, dtype=float) - self._x_mean) / self._x_scale
        return Xs @ self.coef_ + self.intercept_

    def lasso_path(self, X: np.ndarray, y: np.ndarray, alphas: np.ndarray) -> np.ndarray:
        """Fit along a decreasing alpha path; returns ``(len(alphas), d)`` coefs.

        OtterTune ranks knobs by the order in which their coefficients
        become non-zero along the regularization path (strongest first).
        """
        alphas = np.asarray(alphas, dtype=float)
        coefs = np.zeros((len(alphas), np.asarray(X).shape[1]))
        for i, alpha in enumerate(alphas):
            model = LassoRegression(
                alpha=float(alpha),
                max_iter=self.max_iter,
                tol=self.tol,
                standardize=self.standardize,
            )
            model.fit(X, y)
            assert model.coef_ is not None
            coefs[i] = model.coef_
        return coefs
