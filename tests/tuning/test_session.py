"""Tests for objectives, sessions (failure clamping), and tuning metrics."""

import numpy as np
import pytest

from repro.dbms.server import MySQLServer
from repro.optimizers import RandomSearch, VanillaBO
from repro.optimizers.base import History, Observation
from repro.space import Configuration
from repro.tuning import (
    DatabaseObjective,
    SurrogateObjective,
    TuningSession,
    average_ranks,
    improvement_over_default,
    performance_enhancement,
    speedup,
)

GB = 1024**3


class TestDatabaseObjective:
    def test_throughput_scores_positive(self, sysbench_space, sysbench_server):
        obj = DatabaseObjective(sysbench_server, sysbench_space)
        obs = obj(sysbench_space.default_configuration())
        assert obs.score == obs.objective > 0
        assert obj.direction == "max"

    def test_latency_scores_negated(self, job_server, mysql_space):
        obj = DatabaseObjective(job_server, mysql_space)
        obs = obj(mysql_space.default_configuration())
        assert obs.score == -obs.objective < 0
        assert obj.direction == "min"

    def test_failure_fallback_is_worse_than_default(self, sysbench_server, sysbench_space):
        obj = DatabaseObjective(sysbench_server, sysbench_space)
        assert obj.failure_fallback_score() < obj.default_score()

    def test_failure_fallback_latency(self, job_server, mysql_space):
        obj = DatabaseObjective(job_server, mysql_space)
        assert obj.failure_fallback_score() < obj.default_score()


class TestSurrogateObjective:
    def test_prediction_objective(self, tiny_space):
        predictor = lambda X: X[:, 0] * 100.0  # noqa: E731
        obj = SurrogateObjective(tiny_space, predictor, direction="max")
        obs = obj(tiny_space.default_configuration())
        assert obs.objective == pytest.approx(50.0)
        assert not obs.failed
        assert obj.n_evaluations == 1

    def test_latency_direction(self, tiny_space):
        predictor = lambda X: np.full(len(X), 10.0)  # noqa: E731
        obj = SurrogateObjective(tiny_space, predictor, direction="min")
        assert obj(tiny_space.default_configuration()).score == -10.0

    def test_invalid_direction(self, tiny_space):
        with pytest.raises(ValueError):
            SurrogateObjective(tiny_space, lambda X: X, direction="sideways")


class TestTuningSession:
    def test_runs_requested_iterations(self, sysbench_space, sysbench_server):
        obj = DatabaseObjective(sysbench_server, sysbench_space)
        session = TuningSession(
            obj, RandomSearch(sysbench_space, seed=0), sysbench_space,
            max_iterations=12, n_initial=5, seed=0,
        )
        history = session.run()
        assert len(history) == 12

    def test_lhs_initialization_used_for_bo(self, sysbench_space, sysbench_server):
        obj = DatabaseObjective(sysbench_server, sysbench_space)
        session = TuningSession(
            obj, VanillaBO(sysbench_space, seed=0), sysbench_space,
            max_iterations=10, n_initial=10, seed=0,
        )
        history = session.run()
        # all 10 iterations came from the LHS batch: no suggest overhead
        assert all(o.suggest_seconds == 0.0 for o in history)

    def test_failures_clamped_to_worst_seen(self, sysbench_space):
        server = MySQLServer("SYSBENCH", "B", seed=1)
        obj = DatabaseObjective(server, sysbench_space)
        session = TuningSession(
            obj, RandomSearch(sysbench_space, seed=5), sysbench_space,
            max_iterations=40, n_initial=0, seed=1,
        )
        history = session.run()
        failed = [o for o in history if o.failed]
        assert failed, "expected at least one OOM in 40 random configs"
        for obs in failed:
            # clamped to the worst success seen *before* the failure
            prior = [o.score for o in history if not o.failed and o.iteration < obs.iteration]
            expected = min(prior) if prior else obj.failure_fallback_score()
            assert obs.score == expected
            assert np.isfinite(obs.score)

    def test_first_failure_uses_fallback(self, sysbench_space):
        class AlwaysFails:
            def __call__(self, config):
                return Observation(
                    config=Configuration(dict(config)), objective=float("nan"),
                    score=float("nan"), failed=True,
                )

            def failure_fallback_score(self):
                return -123.0

            def default_score(self):
                return 0.0

        session = TuningSession(
            AlwaysFails(), RandomSearch(sysbench_space, seed=0), sysbench_space,
            max_iterations=3, n_initial=0, seed=0,
        )
        history = session.run()
        assert all(o.score == -123.0 for o in history)

    def test_callback_invoked(self, sysbench_space, sysbench_server):
        obj = DatabaseObjective(sysbench_server, sysbench_space)
        seen = []
        session = TuningSession(
            obj, RandomSearch(sysbench_space, seed=0), sysbench_space,
            max_iterations=5, n_initial=0, seed=0,
        )
        session.run(callback=lambda i, o: seen.append(i))
        assert seen == [0, 1, 2, 3, 4]

    def test_warm_start_counts_into_history(self, sysbench_space, sysbench_server):
        obj = DatabaseObjective(sysbench_server, sysbench_space)
        warm = [obj(sysbench_space.default_configuration())]
        session = TuningSession(
            obj, RandomSearch(sysbench_space, seed=0), sysbench_space,
            max_iterations=4, n_initial=0, seed=0, warm_start=warm,
        )
        history = session.run()
        assert len(history) == 5

    def test_warm_start_shrinks_lhs_budget(self, sysbench_space, sysbench_server):
        # A session warm-started with k observations must not replay the
        # full LHS design on top of them.
        obj = DatabaseObjective(sysbench_server, sysbench_space)
        warm = [obj(sysbench_space.default_configuration()) for _ in range(6)]
        session = TuningSession(
            obj, VanillaBO(sysbench_space, seed=0), sysbench_space,
            max_iterations=10, n_initial=10, seed=0, warm_start=warm,
        )
        assert session.n_initial == 4
        history = session.run()
        # 6 warm + 10 evaluated; only iterations 6..9 are LHS (no suggest
        # overhead), the rest go through the optimizer
        assert len(history) == 16
        suggested = [o for o in history if o.suggest_seconds > 0.0]
        assert len(suggested) == 6

    def test_warm_start_larger_than_lhs_budget_floors_at_zero(
        self, sysbench_space, sysbench_server
    ):
        obj = DatabaseObjective(sysbench_server, sysbench_space)
        warm = [obj(sysbench_space.default_configuration()) for _ in range(12)]
        session = TuningSession(
            obj, VanillaBO(sysbench_space, seed=0), sysbench_space,
            max_iterations=3, n_initial=10, seed=0, warm_start=warm,
        )
        assert session.n_initial == 0

    def test_warm_start_reindexes_without_mutating_source(
        self, sysbench_space, sysbench_server
    ):
        obj = DatabaseObjective(sysbench_server, sysbench_space)
        source = History(sysbench_space)
        for _ in range(3):
            source.append(obj(sysbench_space.default_configuration()))
        warm = list(source)[1:]  # iterations 1, 2 in the source task
        session = TuningSession(
            obj, RandomSearch(sysbench_space, seed=0), sysbench_space,
            max_iterations=2, n_initial=0, seed=0, warm_start=warm,
        )
        history = session.run()
        # re-appended observations are renumbered from 0 ...
        assert [o.iteration for o in history] == [0, 1, 2, 3]
        # ... and the source history keeps its own indices
        assert [o.iteration for o in source] == [0, 1, 2]

    def test_simulated_hours(self, sysbench_space, sysbench_server):
        obj = DatabaseObjective(sysbench_server, sysbench_space)
        session = TuningSession(
            obj, RandomSearch(sysbench_space, seed=0), sysbench_space,
            max_iterations=10, n_initial=0, seed=0,
        )
        session.run()
        assert session.total_simulated_hours() > 0.4  # ~10 * 215s


class TestSimulatedBudget:
    def _session(self, space, server, max_iterations=20, **kwargs):
        obj = DatabaseObjective(server, space)
        return TuningSession(
            obj, RandomSearch(space, seed=0), space,
            max_iterations=max_iterations, n_initial=2, seed=0, **kwargs,
        )

    def test_unbudgeted_session_stops_on_max_iterations(
        self, sysbench_space, sysbench_server
    ):
        session = self._session(sysbench_space, sysbench_server, max_iterations=3)
        assert session.stop_reason is None  # set only once run() starts
        history = session.run()
        assert len(history) == 3
        assert session.stop_reason == "max_iterations"

    def test_budget_stops_session_early(self, sysbench_space, sysbench_server):
        # Successful evaluations cost ~215 simulated seconds each; an
        # 0.2h (720s) budget allows roughly three of them out of twenty.
        session = self._session(
            sysbench_space, sysbench_server, max_simulated_hours=0.2
        )
        history = session.run()
        assert session.stop_reason == "simulated_budget"
        assert 0 < len(history) < 20
        assert session.total_simulated_hours() >= 0.2

    def test_failed_evaluations_consume_restart_cost(self, sysbench_space):
        # A buffer pool far beyond RAM fails every evaluation; each failure
        # still pays the 35s restart, so the budget must run out eventually.
        class AlwaysCrashes:
            def __init__(self, inner):
                self.inner = inner

            def __call__(self, config):
                doomed = dict(config)
                doomed["innodb_buffer_pool_size"] = 32 * GB
                return self.inner(doomed)

            def __getattr__(self, name):
                return getattr(self.inner, name)

        inner = DatabaseObjective(
            MySQLServer("SYSBENCH", "B", seed=2), sysbench_space
        )
        budget_seconds = 100.0  # covers two 35s restarts, not three
        session = TuningSession(
            AlwaysCrashes(inner), RandomSearch(sysbench_space, seed=2),
            sysbench_space, max_iterations=50, n_initial=0, seed=2,
            max_simulated_hours=budget_seconds / 3600.0,
        )
        history = session.run()
        assert session.stop_reason == "simulated_budget"
        assert all(o.failed for o in history)
        assert len(history) == 3  # 35 + 35 < 100 <= 35 * 3

    def test_warm_start_counts_toward_budget(self, sysbench_space, sysbench_server):
        warm = self._session(sysbench_space, sysbench_server, max_iterations=4).run()
        consumed_hours = sum(o.simulated_seconds for o in warm) / 3600.0
        # The warm start alone exhausts the budget: zero new evaluations run.
        session = TuningSession(
            DatabaseObjective(MySQLServer("SYSBENCH", "B", seed=3), sysbench_space),
            RandomSearch(sysbench_space, seed=3), sysbench_space,
            max_iterations=20, n_initial=0, seed=3, warm_start=list(warm),
            max_simulated_hours=consumed_hours,
        )
        history = session.run()
        assert session.stop_reason == "simulated_budget"
        assert len(history) == len(warm)  # no new evaluations fit the budget

    def test_budget_validation(self, sysbench_space, sysbench_server):
        with pytest.raises(ValueError):
            self._session(
                sysbench_space, sysbench_server, max_simulated_hours=0.0
            )
        with pytest.raises(ValueError):
            self._session(
                sysbench_space, sysbench_server, max_simulated_hours=-1.0
            )


class TestMetrics:
    def test_improvement_directions(self):
        assert improvement_over_default(150.0, 100.0, "max") == pytest.approx(0.5)
        assert improvement_over_default(50.0, 100.0, "min") == pytest.approx(0.5)
        with pytest.raises(ValueError):
            improvement_over_default(1.0, 0.0, "max")
        with pytest.raises(ValueError):
            improvement_over_default(1.0, 1.0, "up")

    def test_performance_enhancement(self):
        assert performance_enhancement(110.0, 100.0) == pytest.approx(0.1)
        assert performance_enhancement(-90.0, -100.0) == pytest.approx(0.1)

    def test_speedup(self, tiny_space):
        base = History(tiny_space)
        for i, s in enumerate([1.0, 2.0, 3.0]):
            base.append(Observation(config=tiny_space.complete({"count": i}), objective=s, score=s))
        fast = History(tiny_space)
        fast.append(Observation(config=tiny_space.complete({"count": 50}), objective=4.0, score=4.0))
        assert speedup(base, fast) == pytest.approx(3.0)
        slow = History(tiny_space)
        slow.append(Observation(config=tiny_space.complete({"count": 51}), objective=0.5, score=0.5))
        assert speedup(base, slow) is None

    def test_average_ranks(self):
        results = {"a": [3.0, 3.0], "b": [2.0, 2.0], "c": [1.0, 1.0]}
        ranks = average_ranks(results, higher_is_better=True)
        assert ranks == {"a": 1.0, "b": 2.0, "c": 3.0}
        ranks_min = average_ranks(results, higher_is_better=False)
        assert ranks_min["c"] == 1.0

    def test_average_ranks_ties(self):
        ranks = average_ranks({"a": [1.0], "b": [1.0]})
        assert ranks == {"a": 1.5, "b": 1.5}

    def test_average_ranks_validation(self):
        with pytest.raises(ValueError):
            average_ranks({"a": [1.0], "b": [1.0, 2.0]})
        assert average_ranks({}) == {}
