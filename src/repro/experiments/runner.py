"""Shared session-running helpers for experiment harnesses."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.dbms.server import MySQLServer
from repro.optimizers.base import History, Optimizer
from repro.space import ConfigurationSpace
from repro.tuning.metrics import improvement_over_default
from repro.tuning.objective import DatabaseObjective
from repro.tuning.session import TuningSession

OptimizerFactory = Callable[[ConfigurationSpace, int], Optimizer]


def run_sessions(
    workload: str,
    space: ConfigurationSpace,
    optimizer_factory: OptimizerFactory,
    n_runs: int,
    n_iterations: int,
    n_initial: int = 10,
    instance: str = "B",
    seed: int = 0,
) -> list[History]:
    """Run repeated tuning sessions (fresh server + optimizer per run)."""
    histories: list[History] = []
    for run in range(n_runs):
        server = MySQLServer(workload, instance, seed=seed + 1000 * run)
        objective = DatabaseObjective(server, space)
        optimizer = optimizer_factory(space, seed + run)
        session = TuningSession(
            objective,
            optimizer,
            space,
            max_iterations=n_iterations,
            n_initial=n_initial,
            seed=seed + 10_000 + run,
        )
        histories.append(session.run())
    return histories


def median_improvement(
    histories: list[History], workload: str, instance: str = "B"
) -> float:
    """Median best-improvement over the default across repeated sessions."""
    server = MySQLServer(workload, instance, noise=False)
    default = server.default_objective()
    direction = server.objective_direction
    improvements = []
    for h in histories:
        try:
            best = h.best().objective
        except ValueError:
            improvements.append(float("-inf"))
            continue
        improvements.append(improvement_over_default(best, default, direction))
    return float(np.median(improvements))


def median_best_score(histories: list[History]) -> float:
    """Median of best scores across sessions (maximization scale)."""
    bests = []
    for h in histories:
        try:
            bests.append(h.best().score)
        except ValueError:
            bests.append(float("-inf"))
    return float(np.median(bests))
