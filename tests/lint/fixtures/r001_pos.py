"""True positives for R001: seedless / global-state RNG."""

import random

import numpy as np
from numpy.random import default_rng


def seedless_default_rng():
    return np.random.default_rng()  # finding: no seed


def seedless_from_import():
    return default_rng()  # finding: no seed via from-import


def legacy_global_state(n):
    np.random.seed(0)  # finding: global state
    return np.random.rand(n)  # finding: global state


def stdlib_random():
    return random.random()  # finding: stdlib global state


def stdlib_choice(items):
    return random.choice(items)  # finding: stdlib global state


def seedless_random_state():
    return np.random.RandomState()  # finding: seedless legacy constructor
