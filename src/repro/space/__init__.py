"""Heterogeneous configuration spaces (paper Section 2.1).

A DBMS configuration space is a product of continuous, integer, and
categorical knob domains.  This package provides the knob types, the
:class:`ConfigurationSpace` container used by every selector and optimizer,
and stochastic sampling designs (uniform random and Latin Hypercube).
"""

from repro.space.configuration import Configuration
from repro.space.parameter import (
    CategoricalKnob,
    ContinuousKnob,
    IntegerKnob,
    Knob,
)
from repro.space.sampling import (
    LatinHypercubeSampler,
    latin_hypercube,
    scrambled_sobol_like,
)
from repro.space.space import ConfigurationSpace

__all__ = [
    "CategoricalKnob",
    "Configuration",
    "ConfigurationSpace",
    "ContinuousKnob",
    "IntegerKnob",
    "Knob",
    "LatinHypercubeSampler",
    "latin_hypercube",
    "scrambled_sobol_like",
]
