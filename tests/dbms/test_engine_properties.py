"""Hypothesis property tests on the performance model's invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dbms.server import MySQLServer

GB = 1024**3
MB = 1024**2


@pytest.fixture(scope="module")
def server():
    return MySQLServer("SYSBENCH", "B", noise=False)


@pytest.fixture(scope="module")
def job():
    return MySQLServer("JOB", "B", noise=False)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_every_valid_config_evaluates_or_fails_cleanly(seed):
    server = MySQLServer("SYSBENCH", "B", noise=False)
    config = server.full_space.sample_configuration(np.random.default_rng(seed))
    result = server.evaluate(config)
    if result.failed:
        assert result.failure_reason
        assert np.isnan(result.objective)
    else:
        assert np.isfinite(result.objective)
        assert result.objective > 0
        assert result.metrics  # telemetry always present on success


@given(
    log_mb=st.integers(min_value=16, max_value=4096),
    bigger_factor=st.integers(min_value=2, max_value=8),
)
@settings(max_examples=25, deadline=None)
def test_larger_redo_log_never_hurts_write_throughput(log_mb, bigger_factor):
    server = MySQLServer("SYSBENCH", "B", noise=False)
    d = server.default_configuration()
    small = server.evaluate(d.with_values(innodb_log_file_size=log_mb * MB)).objective
    big = server.evaluate(
        d.with_values(innodb_log_file_size=min(log_mb * bigger_factor, 8192) * MB)
    ).objective
    assert big >= small - 1e-9


@given(threads=st.integers(min_value=1, max_value=64))
@settings(max_examples=20, deadline=None)
def test_read_io_threads_never_negative_effect_on_olap(threads):
    server = MySQLServer("JOB", "B", noise=False)
    d = server.default_configuration()
    base = server.evaluate(d).objective
    latency = server.evaluate(d.with_values(innodb_read_io_threads=threads)).objective
    # latency must stay within a sane band of the default (no blow-ups)
    assert 0.3 * base < latency < 3.0 * base


@given(seed=st.integers(min_value=0, max_value=5000))
@settings(max_examples=25, deadline=None)
def test_failure_is_monotone_in_buffer_pool(seed):
    """If a config OOMs, the same config with a bigger buffer pool OOMs too."""
    server = MySQLServer("SYSBENCH", "B", noise=False)
    config = server.full_space.sample_configuration(np.random.default_rng(seed))
    result = server.evaluate(config)
    if result.failed:
        bigger = config.with_values(
            innodb_buffer_pool_size=min(
                int(config["innodb_buffer_pool_size"] * 2), 40 * GB
            )
        )
        assert server.evaluate(bigger).failed


@given(seed=st.integers(min_value=0, max_value=5000))
@settings(max_examples=20, deadline=None)
def test_metrics_internally_consistent(seed):
    server = MySQLServer("SYSBENCH", "B", noise=False)
    config = server.full_space.sample_configuration(np.random.default_rng(seed))
    result = server.evaluate(config)
    if result.failed:
        return
    m = result.metrics
    assert 0.0 <= m["bp_hit_rate"] <= 1.0
    assert m["bp_disk_reads_per_s"] <= m["bp_logical_reads_per_s"] + 1e-6
    assert 0.0 <= m["cpu_util_pct"] <= 100.0
    assert m["tps"] > 0


def test_latency_objective_bounded_for_default_neighbourhood(job):
    d = job.default_configuration()
    base = job.evaluate(d).objective
    for knob in ("sort_buffer_size", "join_buffer_size", "tmp_table_size"):
        doubled = job.evaluate(d.with_values(**{knob: int(d[knob]) * 2})).objective
        assert doubled <= base + 1e-9  # more memory never hurts latency here
