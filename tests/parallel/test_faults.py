"""Fault-injection tests: the executor's containment contract, enforced.

These tests kill real worker processes mid-run (via the seeded injectors
in :mod:`repro.parallel.faults`) and assert the scheduler's three
guarantees: a pool break costs only the run on the dead worker, retries
reuse the spec's original seeds (so recovered histories are identical to
never-failed ones), and torn telemetry/checkpoint tails never take down
a reader.
"""

from __future__ import annotations

import json
import pickle
import zlib

import pytest

from repro.dbms.catalog import mysql_knob_space
from repro.optimizers.base import Observation
from repro.parallel import (
    FlakyEval,
    InjectedFault,
    ParallelExecutor,
    RegistryOptimizerFactory,
    RunSpec,
    WorkerKiller,
    attempt_records,
    choose_victims,
    read_telemetry,
    result_fingerprint,
    truncate_tail,
)
from repro.space import Configuration


@pytest.fixture(scope="module")
def small_space():
    return mysql_knob_space(
        "B",
        knob_names=["innodb_flush_log_at_trx_commit", "innodb_log_file_size"],
        seed=0,
    )


def _specs(space, n_runs=4, n_iterations=5):
    from repro.experiments.runner import build_session_specs

    return build_session_specs(
        "SYSBENCH",
        space,
        RegistryOptimizerFactory("random"),
        n_runs=n_runs,
        n_iterations=n_iterations,
        n_initial=2,
        seed=23,
    )


class SimpleObjective:
    """Minimal deterministic picklable objective for wrapper tests.

    Scores via ``crc32`` (not ``hash``, whose per-process randomization
    would make serial and worker-process evaluations disagree).
    """

    def __call__(self, config):
        value = float(sum(zlib.crc32(repr(v).encode()) % 97 for v in config.values()))
        return Observation(config=Configuration(dict(config)), objective=value, score=value)

    def failure_fallback_score(self) -> float:
        return -1.0

    def default_score(self) -> float:
        return 0.0


class TestInjectors:
    def test_choose_victims_deterministic(self):
        assert choose_victims(5, 10, 3) == choose_victims(5, 10, 3)
        assert choose_victims(5, 10, 3) != choose_victims(6, 10, 3)
        assert all(0 <= v < 10 for v in choose_victims(0, 10, 10))
        with pytest.raises(ValueError):
            choose_victims(0, 4, 5)

    def test_injectors_are_picklable(self, tmp_path):
        killer = WorkerKiller(at_iteration=1, arm_dir=str(tmp_path))
        flaky = FlakyEval(SimpleObjective(), arm_path=str(tmp_path / "flaky"))
        for obj in (killer, flaky):
            assert pickle.loads(pickle.dumps(obj)).__class__ is obj.__class__

    def test_flaky_eval_delegates_attributes(self, tmp_path):
        flaky = FlakyEval(SimpleObjective(), arm_path=str(tmp_path / "flaky"))
        assert flaky.default_score() == 0.0
        assert flaky.failure_fallback_score() == -1.0
        with pytest.raises(AttributeError):
            flaky.no_such_attribute

    def test_flaky_eval_counts_across_processes(self, tmp_path):
        arm = str(tmp_path / "flaky")
        flaky = FlakyEval(SimpleObjective(), arm_path=arm, fail_attempts=2)
        config = Configuration({"a": 1})
        for _ in range(2):
            with pytest.raises(InjectedFault):
                flaky(config)
        # A fresh (un)pickled copy sees the on-disk counter, not its own.
        clone = pickle.loads(pickle.dumps(flaky))
        assert clone(config).score == clone(config).score


class TestPoolBreakContainment:
    def test_only_the_dead_workers_run_is_charged(self, small_space, tmp_path):
        """The tentpole regression: a worker death mid-batch.

        The victim's worker is hard-killed at iteration 2 of its first
        attempt; every other run must come back successful with
        ``attempts == 1`` and a history identical to the uninterrupted
        baseline — first-attempt results survive the pool break.
        """
        baseline = ParallelExecutor(n_workers=1).run(_specs(small_space))
        expected = [result_fingerprint(r) for r in baseline]

        specs = _specs(small_space)
        victim = 1
        specs[victim].iteration_hook = WorkerKiller(
            at_iteration=2, arm_dir=str(tmp_path), label="contain", once=True
        )
        results = ParallelExecutor(n_workers=2).run(specs)

        assert [r.run_index for r in results] == [0, 1, 2, 3]
        assert not any(r.failed for r in results)
        # the once-killer died on attempt 1; the retry (same seeds) succeeded
        assert results[victim].attempts == 2
        for i, result in enumerate(results):
            if i != victim:
                assert result.attempts == 1
        assert [result_fingerprint(r) for r in results] == expected

    def test_persistent_killer_fails_alone(self, small_space, tmp_path):
        """A run that kills its worker on every attempt is marked failed
        (with a worker-death error) while the rest of the study completes."""
        specs = _specs(small_space)
        victim = 2
        specs[victim].iteration_hook = WorkerKiller(
            at_iteration=1, arm_dir=str(tmp_path), label="persistent", once=False
        )
        results = ParallelExecutor(n_workers=2, max_retries=1).run(specs)

        assert results[victim].failed
        assert results[victim].history is None
        assert "worker died" in results[victim].error
        assert results[victim].attempts == 2  # initial attempt + one retry
        for i, result in enumerate(results):
            if i != victim:
                assert not result.failed

    def test_telemetry_streams_the_death(self, small_space, tmp_path):
        path = str(tmp_path / "telemetry.jsonl")
        specs = _specs(small_space, n_runs=2)
        specs[0].iteration_hook = WorkerKiller(
            at_iteration=1, arm_dir=str(tmp_path), label="stream", once=False
        )
        ParallelExecutor(n_workers=2, max_retries=0, telemetry_path=path).run(specs)
        streamed = attempt_records(read_telemetry(path))
        dead = [r for r in streamed if r["run_index"] == 0]
        assert dead and all(r["status"] == "failed" for r in dead)
        assert any("worker died" in r.get("error", "") for r in dead)


class TestRetryAccounting:
    def test_failed_then_succeeded_counts_two_attempts(self, small_space, tmp_path):
        spec = _specs(small_space, n_runs=1)[0]
        spec.objective = FlakyEval(
            SimpleObjective(), arm_path=str(tmp_path / "flaky"), fail_attempts=1
        )
        results = ParallelExecutor(n_workers=2).run([spec])
        assert not results[0].failed
        assert results[0].attempts == 2

    @pytest.mark.parametrize("n_workers", [1, 2])
    def test_retry_reuses_original_seeds(self, small_space, tmp_path, n_workers):
        """A retried run replays the identical history as a clean run.

        ``FlakyEval`` aborts attempt 1 at its first evaluation, so
        attempt 2 starts from scratch — and because seeds live in the
        spec, its history is byte-for-byte the clean baseline's, serial
        or parallel.
        """
        clean = _specs(small_space, n_runs=1)[0]
        clean.objective = SimpleObjective()
        baseline = ParallelExecutor(n_workers=1).run([clean])[0]

        flaky = _specs(small_space, n_runs=1)[0]
        flaky.objective = FlakyEval(
            SimpleObjective(),
            arm_path=str(tmp_path / f"flaky-{n_workers}"),
            fail_attempts=1,
        )
        retried = ParallelExecutor(n_workers=n_workers).run([flaky])[0]
        assert retried.attempts == 2
        assert result_fingerprint(retried) == result_fingerprint(baseline)


class TestTornWrites:
    def test_read_telemetry_skips_truncated_final_line(self, small_space, tmp_path):
        path = str(tmp_path / "telemetry.jsonl")
        ParallelExecutor(n_workers=1, telemetry_path=path).run(
            _specs(small_space, n_runs=2)
        )
        intact = read_telemetry(path)
        truncate_tail(path, n_bytes=9)
        with pytest.warns(RuntimeWarning, match="torn final telemetry line"):
            torn = read_telemetry(path)
        assert torn == intact[:-1]

    def test_midfile_corruption_still_raises(self, tmp_path):
        path = str(tmp_path / "telemetry.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"run_index": 0}\n{"torn...\n{"run_index": 1}\n')
        with pytest.raises(json.JSONDecodeError):
            read_telemetry(path)

    def test_truncate_tail_validates(self, tmp_path):
        path = str(tmp_path / "f")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("abcdef")
        with pytest.raises(ValueError):
            truncate_tail(path, n_bytes=-1)
        truncate_tail(path, n_bytes=100)
        assert open(path, encoding="utf-8").read() == ""


def test_spec_with_hook_requires_one_optimizer(small_space, tmp_path):
    with pytest.raises(ValueError, match="exactly one"):
        RunSpec(
            run_index=0,
            workload="Voter",
            space=small_space,
            n_iterations=1,
            iteration_hook=WorkerKiller(at_iteration=0, arm_dir=str(tmp_path)),
        )
