"""Tests for the state-transition surrogate (paper §8 future work)."""

import numpy as np
import pytest

from repro.dbms.metrics import INTERNAL_METRIC_NAMES
from repro.optimizers import DDPG
from repro.surrogate import MetricAwareSurrogateObjective, MetricSurrogate
from repro.tuning import TuningSession


@pytest.fixture(scope="module")
def metric_objective(sysbench_space):
    return MetricAwareSurrogateObjective.build(
        "SYSBENCH", sysbench_space, n_samples=120, seed=5
    )


class TestMetricSurrogate:
    def test_predicts_all_metrics(self, metric_objective, sysbench_space):
        metrics = metric_objective.metric_surrogate.predict(
            sysbench_space.default_configuration()
        )
        assert set(metrics) == set(INTERNAL_METRIC_NAMES)
        assert all(np.isfinite(v) for v in metrics.values())

    def test_metrics_respond_to_buffer_pool(self, metric_objective, sysbench_space):
        d = sysbench_space.default_configuration()
        small = metric_objective.metric_surrogate.predict(
            d.with_values(innodb_buffer_pool_size=256 * 1024**2)
        )
        big = metric_objective.metric_surrogate.predict(
            d.with_values(innodb_buffer_pool_size=12 * 1024**3)
        )
        assert small["bp_hit_rate"] < big["bp_hit_rate"]

    def test_fit_validation(self, sysbench_space):
        with pytest.raises(ValueError):
            MetricSurrogate.fit(sysbench_space, [], [])
        d = sysbench_space.default_configuration()
        with pytest.raises(ValueError):
            MetricSurrogate.fit(sysbench_space, [d], [])


class TestMetricAwareObjective:
    def test_observation_carries_metrics(self, metric_objective, sysbench_space):
        obs = metric_objective(sysbench_space.default_configuration())
        assert obs.metrics
        assert not obs.failed
        assert np.isfinite(obs.score)

    def test_ddpg_runs_on_the_benchmark(self, metric_objective, sysbench_space):
        """The headline of the extension: RL tuning without a DBMS."""
        optimizer = DDPG(sysbench_space, seed=0)
        session = TuningSession(
            metric_objective, optimizer, sysbench_space,
            max_iterations=15, n_initial=5, seed=0,
        )
        history = session.run()
        assert len(history) == 15
        # the agent received non-trivial states (metrics flowed through)
        assert optimizer.agent.norm.count > 0
        assert history.best().objective > 0
