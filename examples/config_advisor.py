"""Static configuration review plus latency-percentile reporting.

Shows two operator-facing utilities that complement the tuning pipeline:
the configuration advisor (pt-variable-advisor style static checks) and
transaction-trace synthesis for p95/p99 latency reporting.

Usage::

    python examples/config_advisor.py
"""

from repro.dbms import MySQLServer, lint_configuration, mysql_knob_space
from repro.workloads import get_workload
from repro.workloads.trace import synthesize_trace

GB = 1024**3
MB = 1024**2


def main() -> None:
    space = mysql_knob_space("B", seed=0)
    workload = get_workload("TPC-C")
    server = MySQLServer("TPC-C", "B", noise=False)

    print("Reviewing a plausible-looking but flawed configuration ...\n")
    risky = space.default_configuration().with_values(
        innodb_buffer_pool_size=14 * GB,      # too close to RAM with 64 conns
        sort_buffer_size=64 * MB,             # per-connection!
        query_cache_type="ON",
        query_cache_size=512 * MB,
        innodb_flush_log_at_trx_commit="0",
        max_connections=32,
        general_log="ON",
    )
    for advice in lint_configuration(risky, "B", workload):
        print(f"  {advice}")

    print("\nWhat actually happens when we run it:")
    result = server.evaluate(risky)
    if result.failed:
        print(f"  stress test FAILED: {result.failure_reason}")
    else:
        print(f"  throughput {result.objective:.0f} txn/s")

    print("\nNow a sane configuration, with its latency percentiles:")
    sane = space.default_configuration().with_values(
        innodb_flush_log_at_trx_commit="0",
        innodb_log_file_size=4 * GB,
        innodb_io_capacity=8000,
    )
    for advice in lint_configuration(sane, "B", workload):
        print(f"  {advice}")
    result = server.evaluate(sane)
    trace = synthesize_trace(result, workload, seed=0)
    print(f"\n  throughput {result.objective:.0f} txn/s")
    for q in (50, 95, 99):
        print(f"  p{q} latency {trace.percentile(q):7.1f} ms")


if __name__ == "__main__":
    main()
