"""Content-hash incremental cache for per-file analysis results.

One JSON file per analyzed source file under ``.reprolint_cache/``,
keyed by the SHA-256 of the file *content* plus a salt covering the
engine version and the active rule set — editing a rule or upgrading
the linter invalidates everything, touching one source file invalidates
only that file.  Entries store the serialized
:class:`~repro.lint.program.summary.FileSummary` together with the
per-file findings/suppressed lists, so a warm run re-parses nothing.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.findings import Finding
from repro.lint.program.summary import FileSummary

#: Bump whenever summary extraction or finding semantics change in a way
#: cached entries cannot represent.
CACHE_FORMAT_VERSION = 1

DEFAULT_CACHE_DIR = ".reprolint_cache"


@dataclass
class CacheStats:
    """Which files a run actually re-analyzed — asserted on by tests."""

    hits: list[str] = field(default_factory=list)
    analyzed: list[str] = field(default_factory=list)

    @property
    def n_hits(self) -> int:
        return len(self.hits)

    @property
    def n_analyzed(self) -> int:
        return len(self.analyzed)


@dataclass
class CachedFile:
    """One file's cached analysis product."""

    summary: FileSummary
    findings: list[Finding]
    suppressed: list[Finding]


def _finding_to_dict(finding: Finding) -> dict:
    return finding.to_dict()


def _finding_from_dict(data: dict) -> Finding:
    return Finding(
        rule=data["rule"],
        path=data["path"],
        line=data["line"],
        col=data["col"],
        message=data["message"],
    )


class AnalysisCache:
    """Load/store per-file analysis keyed by content hash + salt."""

    def __init__(self, cache_dir: str | Path, salt: str, enabled: bool = True) -> None:
        self.cache_dir = Path(cache_dir)
        self.salt = salt
        self.enabled = enabled
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    @staticmethod
    def salt_for(engine_version: str, rule_ids: list[str]) -> str:
        payload = json.dumps(
            {"format": CACHE_FORMAT_VERSION, "engine": engine_version, "rules": sorted(rule_ids)},
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def key_for(self, source: str) -> str:
        digest = hashlib.sha256()
        digest.update(self.salt.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(source.encode("utf-8"))
        return digest.hexdigest()

    def _entry_path(self, key: str) -> Path:
        # Shard by the first two hex chars to keep directories shallow.
        return self.cache_dir / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    def load(self, path: str, source: str) -> CachedFile | None:
        """Cached product for this exact content, or ``None``."""
        if not self.enabled:
            return None
        entry = self._entry_path(self.key_for(source))
        try:
            data = json.loads(entry.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if data.get("format") != CACHE_FORMAT_VERSION:
            return None
        try:
            summary = FileSummary.from_dict(data["summary"])
            findings = [_finding_from_dict(f) for f in data["findings"]]
            suppressed = [_finding_from_dict(f) for f in data["suppressed"]]
        except (KeyError, TypeError):
            return None
        # The cache is content-addressed, so a file moved on disk gets a
        # hit but stale path strings; rewrite them to the current path.
        summary = summary.with_path(path)
        findings = [
            Finding(f.rule, path, f.line, f.col, f.message) for f in findings
        ]
        suppressed = [
            Finding(f.rule, path, f.line, f.col, f.message) for f in suppressed
        ]
        self.stats.hits.append(path)
        return CachedFile(summary=summary, findings=findings, suppressed=suppressed)

    def store(
        self,
        path: str,
        source: str,
        summary: FileSummary,
        findings: list[Finding],
        suppressed: list[Finding],
    ) -> None:
        self.stats.analyzed.append(path)
        if not self.enabled:
            return
        entry = self._entry_path(self.key_for(source))
        payload = {
            "format": CACHE_FORMAT_VERSION,
            "summary": summary.to_dict(),
            "findings": [_finding_to_dict(f) for f in findings],
            "suppressed": [_finding_to_dict(f) for f in suppressed],
        }
        try:
            entry.parent.mkdir(parents=True, exist_ok=True)
            tmp = entry.with_suffix(".tmp")
            tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
            tmp.replace(entry)
        except OSError:
            # A read-only or full disk degrades to cold runs, never a crash.
            pass


__all__ = [
    "AnalysisCache",
    "CacheStats",
    "CachedFile",
    "CACHE_FORMAT_VERSION",
    "DEFAULT_CACHE_DIR",
]
