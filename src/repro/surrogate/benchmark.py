"""The packaged tuning benchmark (paper §8, Figure 10).

``SurrogateBenchmark.build`` collects an offline LHS pool against the
(simulated) DBMS, fits the random-forest surrogate, and exposes a
:class:`~repro.tuning.objective.SurrogateObjective` that tuning sessions
can optimize directly.  Evaluation cost drops from (restart + 3-minute
stress test) to one model prediction; :meth:`speedup_over_real` reports
the resulting factor, the paper's headline 150-311x.
"""

from __future__ import annotations

import numpy as np

from repro.dbms.server import RESTART_SECONDS, STRESS_TEST_SECONDS, MySQLServer
from repro.ml.forest import RandomForestRegressor
from repro.selection.base import collect_samples
from repro.space import ConfigurationSpace
from repro.tuning.objective import SurrogateObjective


class SurrogateBenchmark:
    """A cheap, stable stand-in for one (workload, space) tuning problem."""

    def __init__(
        self,
        space: ConfigurationSpace,
        model: RandomForestRegressor,
        direction: str,
        default_objective: float,
        n_training_samples: int,
        workload_name: str = "",
        seconds_per_model_eval: float = 0.08,
    ) -> None:
        self.space = space
        self.model = model
        self.direction = direction
        self.default_objective = default_objective
        self.n_training_samples = n_training_samples
        self.workload_name = workload_name
        self.seconds_per_model_eval = seconds_per_model_eval

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        workload: str,
        space: ConfigurationSpace,
        n_samples: int = 2000,
        instance: str = "B",
        seed: int | None = None,
    ) -> "SurrogateBenchmark":
        """Collect the offline pool and train the RF surrogate.

        The paper collects 6250 samples per space (about 13 days of real
        stress testing); ``n_samples`` scales that down proportionally.
        """
        server = MySQLServer(workload, instance, seed=seed)
        configs, scores, __ = collect_samples(server, space, n_samples, seed=seed)
        direction = server.objective_direction
        sign = -1.0 if direction == "min" else 1.0
        X = space.encode_many(configs)
        y = sign * np.asarray(scores)  # back to raw objective values
        model = RandomForestRegressor(
            n_estimators=40, min_samples_leaf=2, max_features=0.5, seed=seed
        )
        model.fit(X, y)
        return cls(
            space=space,
            model=model,
            direction=direction,
            default_objective=server.default_objective(),
            n_training_samples=n_samples,
            workload_name=workload,
        )

    # ------------------------------------------------------------------
    def objective(self) -> SurrogateObjective:
        """A session-ready objective backed by the surrogate."""
        return SurrogateObjective(
            space=self.space,
            predictor=self.model.predict,
            direction=self.direction,
            default_objective=self.default_objective,
            simulated_seconds_per_eval=self.seconds_per_model_eval,
        )

    def predict(self, configs) -> np.ndarray:
        """Raw objective predictions for a batch of configurations."""
        return self.model.predict(self.space.encode_many(configs))

    def speedup_over_real(self, algorithm_overhead_seconds: float = 0.0) -> float:
        """Per-iteration speedup versus replaying the workload.

        A real iteration costs restart + stress test (+ optimizer
        overhead); a benchmark iteration costs one model prediction
        (+ the same optimizer overhead).
        """
        real = RESTART_SECONDS + STRESS_TEST_SECONDS + algorithm_overhead_seconds
        cheap = self.seconds_per_model_eval + algorithm_overhead_seconds
        return real / cheap
