"""Extra surrogate-benchmark behaviour tests."""

import numpy as np
import pytest

from repro.dbms.server import RESTART_SECONDS, STRESS_TEST_SECONDS
from repro.surrogate import SurrogateBenchmark
from repro.surrogate.models import compare_surrogate_models


class TestSpeedupAccounting:
    def test_speedup_matches_arithmetic(self, sysbench_space):
        bench = SurrogateBenchmark.build("SYSBENCH", sysbench_space, n_samples=80, seed=1)
        overhead = 0.5
        expected = (RESTART_SECONDS + STRESS_TEST_SECONDS + overhead) / (
            bench.seconds_per_model_eval + overhead
        )
        assert bench.speedup_over_real(overhead) == pytest.approx(expected)

    def test_latency_benchmark_direction(self):
        from repro.dbms.catalog import mysql_knob_space

        space = mysql_knob_space(
            "B", knob_names=["join_buffer_size", "sort_buffer_size", "tmp_table_size"]
        )
        bench = SurrogateBenchmark.build("JOB", space, n_samples=80, seed=2)
        assert bench.direction == "min"
        obj = bench.objective()
        obs = obj(space.default_configuration())
        assert obs.score == -obs.objective


class TestModelComparisonEdgeCases:
    def test_custom_model_registry(self, small_regression_data):
        from repro.ml.linear import RidgeRegression

        X, y = small_regression_data
        results = compare_surrogate_models(
            X, y, n_splits=3, seed=0,
            models={"only_ridge": lambda seed: RidgeRegression(alpha=0.5)},
        )
        assert len(results) == 1 and results[0].name == "only_ridge"

    def test_no_normalization_path(self, small_regression_data):
        X, y = small_regression_data
        results = compare_surrogate_models(
            X, y, n_splits=3, seed=0, normalize_y=False,
            models={"rr": lambda seed: __import__("repro.ml.linear", fromlist=["RidgeRegression"]).RidgeRegression(alpha=0.5)},
        )
        assert np.isfinite(results[0].rmse)
