"""Bit-identity proofs for the tree-ensemble fast path (perf layer 2b).

The accelerated CART/forest/GBM implementations and the optimizers that
ride on them must be *byte-for-byte* interchangeable with the scalar
reference paths — same trees, same splits, same predictions — so that
``accelerated`` is purely a performance switch.  These tests pin that
contract:

- structural identity of fitted trees across seeds, shapes, tie-heavy
  data, and ``max_features`` modes — including a pinned near-tie case
  where the scalar arm's libm-pow rounding decides the chosen feature;
- a brute-force SSE check of the (vectorized) split search;
- the conditional per-node label centering that rescues large label
  offsets without touching well-scaled trajectories;
- forest / GBM / SMAC / TPE outputs equal across arms, worker counts,
  and descent engines (native kernel vs numpy).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.forest import RandomForestRegressor
from repro.ml.tree import DecisionTreeRegressor
from repro.optimizers.base import History, Observation
from repro.optimizers.smac import SMAC
from repro.optimizers.tpe import TPE
from repro.perf import treefast
from repro.space import (
    CategoricalKnob,
    ConfigurationSpace,
    ContinuousKnob,
    IntegerKnob,
)

_TREE_ARRAYS = (
    "feature",
    "threshold",
    "left",
    "right",
    "value",
    "n_node_samples",
    "impurity_decrease",
    "train_node_ids_",
)


def _assert_trees_identical(a: DecisionTreeRegressor, b: DecisionTreeRegressor) -> None:
    for name in _TREE_ARRAYS:
        lhs, rhs = getattr(a, name), getattr(b, name)
        assert lhs.tobytes() == rhs.tobytes(), f"tree array {name!r} differs"


def _make_data(kind: str, n: int, d: int, seed: int):
    """Regression data in several tie regimes."""
    rng = np.random.default_rng(seed)
    if kind == "smooth":
        X = rng.random((n, d))
    elif kind == "ties":
        # Few distinct values per column: many equal split candidates.
        X = rng.integers(0, 4, size=(n, d)).astype(float) / 3.0
    elif kind == "constant":
        X = rng.random((n, d))
        X[:, 0] = 0.5  # a wholly uninformative feature
        if d > 1:
            X[:, -1] = np.round(X[:, -1], 1)
    else:  # duplicated rows
        half = rng.random(((n + 1) // 2, d))
        X = np.vstack([half, half])[:n]
    y = np.round(X @ rng.standard_normal(d) + 0.3 * rng.standard_normal(n), 2)
    return X, y


class TestTreeStructuralIdentity:
    @pytest.mark.parametrize("kind", ["smooth", "ties", "constant", "duplicates"])
    @pytest.mark.parametrize("max_features", [None, "sqrt", 0.8, 2])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_fast_equals_scalar(self, kind, max_features, seed):
        X, y = _make_data(kind, 60, 6, seed)
        params = dict(
            max_features=max_features, min_samples_split=3, min_samples_leaf=2, seed=seed
        )
        fast = DecisionTreeRegressor(accelerated=True, **params).fit(X, y)
        ref = DecisionTreeRegressor(accelerated=False, **params).fit(X, y)
        _assert_trees_identical(fast, ref)

    @pytest.mark.parametrize("max_depth", [1, 3, None])
    def test_depth_limits_and_prediction_identity(self, max_depth):
        X, y = _make_data("smooth", 90, 4, 11)
        fast = DecisionTreeRegressor(max_depth=max_depth, seed=1).fit(X, y)
        ref = DecisionTreeRegressor(max_depth=max_depth, seed=1, accelerated=False).fit(X, y)
        _assert_trees_identical(fast, ref)
        X_test = np.random.default_rng(2).random((50, 4))
        assert fast.predict(X_test).tobytes() == ref.predict(X_test).tobytes()

    def test_precomputed_sort_order_matches_internal(self):
        X, y = _make_data("ties", 40, 5, 3)
        order = treefast.full_sort_orders(X)
        with_order = DecisionTreeRegressor(seed=5).fit(X, y, sort_order=order)
        without = DecisionTreeRegressor(seed=5).fit(X, y)
        _assert_trees_identical(with_order, without)

    def test_near_tie_feature_choice_matches_scalar_pow(self):
        # Regression: the scalar arm squares each feature's label total
        # as a numpy *scalar*, which routes through libm pow and can
        # round one ULP away from the exact product that an array square
        # computes.  On this bootstrap resample (draw 17 of a 20-draw
        # forest sequence) four candidate features tie on the gain down
        # to that last bit; unless the fast path reproduces the scalar
        # power op per feature it picks a different winner and the whole
        # tree diverges.
        rng = np.random.default_rng(42)
        X = rng.random((120, 30))
        y = np.sin(3 * X[:, 0]) + X[:, 1] ** 2 + 0.1 * rng.standard_normal(120)
        frng = np.random.default_rng(7)
        for _ in range(18):  # advance to draw 17 in the reference order
            tree_seed = int(frng.integers(0, 2**31 - 1))
            rows = frng.integers(0, 120, size=120)
        params = dict(max_features=0.8, min_samples_split=3, seed=tree_seed)
        fast = DecisionTreeRegressor(accelerated=True, **params).fit(X[rows], y[rows])
        ref = DecisionTreeRegressor(accelerated=False, **params).fit(X[rows], y[rows])
        _assert_trees_identical(fast, ref)


def _brute_force_best_sse_reduction(X, y, min_leaf):
    """Exhaustive best SSE reduction over every (feature, threshold)."""

    def sse(v):
        return float(np.sum((v - v.mean()) ** 2)) if len(v) else 0.0

    parent = sse(y)
    best = 0.0
    for f in range(X.shape[1]):
        for thr in np.unique(X[:, f])[:-1]:
            mask = X[:, f] <= thr
            nl = int(mask.sum())
            if nl < min_leaf or len(y) - nl < min_leaf:
                continue
            best = max(best, parent - sse(y[mask]) - sse(y[~mask]))
    return best


class TestSplitSearchAgainstBruteForce:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_root_split_is_sse_optimal(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(6, 40))
        d = int(rng.integers(1, 5))
        kind = ["smooth", "ties", "constant", "duplicates"][seed % 4]
        X, y = _make_data(kind, n, d, seed)
        min_leaf = int(rng.integers(1, 3))
        fast = DecisionTreeRegressor(
            max_depth=1, min_samples_leaf=min_leaf, accelerated=True
        ).fit(X, y)
        ref = DecisionTreeRegressor(
            max_depth=1, min_samples_leaf=min_leaf, accelerated=False
        ).fit(X, y)
        _assert_trees_identical(fast, ref)
        brute = _brute_force_best_sse_reduction(X, y, min_leaf)
        scale = max(1.0, float(np.sum(y**2)))
        if fast.feature[0] < 0:
            # No split accepted: brute force must agree nothing helps.
            assert brute <= 1e-7 * scale
        else:
            # The chosen split achieves the exhaustive-scan optimum.
            def sse(v):
                return float(np.sum((v - v.mean()) ** 2)) if len(v) else 0.0

            mask = X[:, fast.feature[0]] <= fast.threshold[0]
            achieved = sse(y) - sse(y[mask]) - sse(y[~mask])
            assert achieved == pytest.approx(brute, rel=1e-9, abs=1e-9 * scale)


class TestLargeOffsetCentering:
    """Satellite fix: conditional per-node label centering.

    With labels ~1e8 the uncentered ``sum**2/n`` trick loses the entire
    signal to cancellation; the scan centers the node labels whenever
    their common offset dwarfs the in-node spread and must then still
    find the same split a brute-force SSE scan finds.  Well-scaled
    labels keep the historical uncentered arithmetic bit-for-bit.
    """

    def test_centering_predicate(self):
        from repro.ml.tree import _needs_centering

        rng = np.random.default_rng(0)
        y = rng.random(50) * 100
        assert not _needs_centering(y)          # offset ~ spread
        assert _needs_centering(y + 1e8)        # offset >> spread
        assert not _needs_centering(y - y.mean())

    @pytest.mark.parametrize("accelerated", [True, False])
    def test_split_survives_huge_label_offset(self, accelerated):
        rng = np.random.default_rng(42)
        n = 120
        X = rng.random((n, 3))
        signal = np.where(X[:, 1] > 0.6, 2.0, 0.0)
        y = 1e8 + signal + 0.01 * rng.standard_normal(n)
        tree = DecisionTreeRegressor(max_depth=1, accelerated=accelerated).fit(X, y)
        assert tree.feature[0] == 1
        # Brute-force scan of the (centered) SSE objective on feature 1.
        xs = np.unique(X[:, 1])
        yc = y - y.mean()
        best_thr, best_red = None, -np.inf
        parent = float(np.sum((yc - yc.mean()) ** 2))
        for lo, hi in zip(xs[:-1], xs[1:]):
            thr = 0.5 * (lo + hi)
            mask = X[:, 1] <= thr
            red = (
                parent
                - float(np.sum((yc[mask] - yc[mask].mean()) ** 2))
                - float(np.sum((yc[~mask] - yc[~mask].mean()) ** 2))
            )
            if red > best_red:
                best_thr, best_red = thr, red
        assert tree.threshold[0] == pytest.approx(best_thr)

    def test_huge_offset_tree_bit_identity(self):
        # The centered branch must itself be bit-identical across arms:
        # a deep tree over offset labels exercises the centered matrix
        # scan against the centered scalar scan node for node.
        rng = np.random.default_rng(3)
        X = rng.random((100, 6))
        y = 1e8 + X @ rng.standard_normal(6) + 0.01 * rng.standard_normal(100)
        params = dict(max_features=0.8, min_samples_split=3, min_samples_leaf=2, seed=21)
        fast = DecisionTreeRegressor(accelerated=True, **params).fit(X, y)
        ref = DecisionTreeRegressor(accelerated=False, **params).fit(X, y)
        _assert_trees_identical(fast, ref)

    def test_offset_does_not_change_root_split(self):
        # Centering does not make trees bit-equal across offsets (the
        # residual of (y + 1e8) - mean carries last-bit noise), but a
        # clearly-signaled split must not move.
        rng = np.random.default_rng(9)
        X = rng.random((80, 4))
        y = np.where(X[:, 2] > 0.5, 5.0, -5.0) + 0.01 * rng.standard_normal(80)
        base = DecisionTreeRegressor(max_depth=1, seed=0).fit(X, y)
        shifted = DecisionTreeRegressor(max_depth=1, seed=0).fit(X, y + 1e8)
        assert base.feature[0] == shifted.feature[0] == 2
        assert base.threshold[0] == shifted.threshold[0]


@pytest.fixture
def forest_data():
    rng = np.random.default_rng(5)
    X = rng.random((80, 7))
    y = X @ rng.standard_normal(7) + 0.2 * rng.standard_normal(80)
    return X, y


class TestEnsembleIdentity:
    def test_forest_bit_identity(self, forest_data):
        X, y = forest_data
        params = dict(n_estimators=12, max_features=0.8, min_samples_split=3, seed=2)
        fast = RandomForestRegressor(accelerated=True, **params).fit(X, y)
        ref = RandomForestRegressor(accelerated=False, **params).fit(X, y)
        for a, b in zip(fast.trees_, ref.trees_):
            _assert_trees_identical(a, b)
        X_test = np.random.default_rng(6).random((200, 7))
        m1, s1 = fast.predict_with_std(X_test)
        m2, s2 = ref.predict_with_std(X_test)
        assert m1.tobytes() == m2.tobytes()
        assert s1.tobytes() == s2.tobytes()
        assert fast.predict(X_test).tobytes() == ref.predict(X_test).tobytes()

    def test_forest_n_jobs_matches_serial(self, forest_data):
        X, y = forest_data
        params = dict(n_estimators=6, max_features="sqrt", seed=3)
        serial = RandomForestRegressor(**params).fit(X, y)
        fanned = RandomForestRegressor(n_jobs=2, **params).fit(X, y)
        for a, b in zip(serial.trees_, fanned.trees_):
            _assert_trees_identical(a, b)
        X_test = np.random.default_rng(1).random((40, 7))
        assert serial.predict(X_test).tobytes() == fanned.predict(X_test).tobytes()

    @pytest.mark.parametrize("subsample", [1.0, 0.6])
    def test_gbm_bit_identity(self, forest_data, subsample):
        X, y = forest_data
        params = dict(n_estimators=25, max_depth=3, subsample=subsample, seed=4)
        fast = GradientBoostingRegressor(accelerated=True, **params).fit(X, y)
        ref = GradientBoostingRegressor(accelerated=False, **params).fit(X, y)
        for a, b in zip(fast.trees_, ref.trees_):
            _assert_trees_identical(a, b)
        X_test = np.random.default_rng(8).random((120, 7))
        assert fast.predict(X_test).tobytes() == ref.predict(X_test).tobytes()
        assert fast.staged_predict(X_test).tobytes() == ref.staged_predict(X_test).tobytes()

    def test_numpy_engine_matches_native(self, forest_data, monkeypatch):
        X, y = forest_data
        forest = RandomForestRegressor(n_estimators=10, seed=7).fit(X, y)
        X_test = np.random.default_rng(9).random((300, 7))
        with_kernel = forest.tree_predictions(X_test)
        monkeypatch.setattr(treefast, "_NATIVE_KERNEL", False)
        assert treefast.native_kernel() is None
        forest._packed = None  # repack under the numpy engine
        without_kernel = forest.tree_predictions(X_test)
        assert with_kernel.tobytes() == without_kernel.tobytes()


def _mixed_space() -> ConfigurationSpace:
    return ConfigurationSpace(
        [
            ContinuousKnob("c0", 0.0, 1.0, 0.5),
            ContinuousKnob("c1", 1e-2, 1e2, 1.0, log=True),
            IntegerKnob("i0", 1, 64, 8),
            IntegerKnob("i1", 10, 10_000, 100, log=True),
            CategoricalKnob("k0", ["a", "b", "c"], "a"),
        ]
    )


def _drive(optimizer, space, iterations: int) -> list[tuple]:
    history = History(space)
    sequence = []
    for _ in range(iterations):
        config = optimizer.suggest(history)
        x = space.encode(config)
        sequence.append(tuple(x))
        score = -float(np.sum((x - 0.35) ** 2))
        history.append(Observation(config=config, objective=score, score=score))
    return sequence


class TestOptimizerIdentity:
    def test_smac_suggest_sequence_identical(self):
        space = _mixed_space()
        fast = _drive(SMAC(space, seed=31, accelerated=True), space, 12)
        ref = _drive(SMAC(space, seed=31, accelerated=False), space, 12)
        assert fast == ref

    def test_tpe_suggest_sequence_identical(self):
        space = _mixed_space()
        fast = _drive(TPE(space, seed=13, accelerated=True), space, 12)
        ref = _drive(TPE(space, seed=13, accelerated=False), space, 12)
        assert fast == ref
