"""Candidate surrogate regressors and their cross-validated comparison.

Reproduces Table 9: RMSE and R² under 10-fold cross-validation for six
commonly used regression models; the tree ensembles (RF, GB) win, and RF
is adopted for the benchmark "since RFs are widely used with simplicity".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.forest import RandomForestRegressor
from repro.ml.linear import RidgeRegression
from repro.ml.metrics import r2_score, root_mean_squared_error
from repro.ml.model_selection import KFold
from repro.ml.neighbors import KNNRegressor
from repro.ml.svm import EpsilonSVR, NuSVR

#: Factories for the Table 9 candidates, keyed by the paper's labels.
SURROGATE_MODEL_REGISTRY: dict[str, Callable[[int], object]] = {
    "RF": lambda seed: RandomForestRegressor(
        n_estimators=40, min_samples_leaf=2, max_features=0.5, seed=seed
    ),
    "GB": lambda seed: GradientBoostingRegressor(
        n_estimators=150, learning_rate=0.08, max_depth=4, seed=seed
    ),
    "SVR": lambda seed: EpsilonSVR(C=10.0, epsilon=0.05, max_iter=60),
    "NuSVR": lambda seed: NuSVR(C=10.0, nu=0.5, max_iter=60),
    "KNN": lambda seed: KNNRegressor(n_neighbors=5, weights="distance"),
    "RR": lambda seed: RidgeRegression(alpha=1.0),
}


@dataclass
class SurrogateModelScore:
    """Cross-validated quality of one candidate regressor."""

    name: str
    rmse: float
    r2: float


def compare_surrogate_models(
    X: np.ndarray,
    y: np.ndarray,
    n_splits: int = 10,
    seed: int | None = None,
    models: dict[str, Callable[[int], object]] | None = None,
    normalize_y: bool = True,
) -> list[SurrogateModelScore]:
    """Evaluate every candidate via K-fold CV; best R² first.

    Targets are optionally standardized (fit statistics from each train
    fold) so the SVR epsilon-tube and Ridge penalty are scale-free; RMSE
    is reported back on the original scale.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    registry = models if models is not None else SURROGATE_MODEL_REGISTRY
    results: list[SurrogateModelScore] = []
    for name, factory in registry.items():
        rmses: list[float] = []
        r2s: list[float] = []
        for fold, (train, test) in enumerate(
            KFold(n_splits, shuffle=True, seed=seed).split(len(X))
        ):
            model = factory(0 if seed is None else seed + fold)
            y_train = y[train]
            if normalize_y:
                mu, sd = y_train.mean(), y_train.std() or 1.0
            else:
                mu, sd = 0.0, 1.0
            model.fit(X[train], (y_train - mu) / sd)
            pred = np.asarray(model.predict(X[test])) * sd + mu
            rmses.append(root_mean_squared_error(y[test], pred))
            r2s.append(r2_score(y[test], pred))
        results.append(
            SurrogateModelScore(name=name, rmse=float(np.mean(rmses)), r2=float(np.mean(r2s)))
        )
    results.sort(key=lambda s: -s.r2)
    return results
