"""Knowledge transfer: speed up TPC-C tuning with historical OLTP data.

Pre-trains a DDPG agent on source workloads (gathering their observations
as historical data), then compares tuning TPC-C from scratch against the
three transfer frameworks of the paper's Section 7: RGPE, workload
mapping, and fine-tuning.

Usage::

    python examples/transfer_learning.py [iterations]
"""

import sys

from repro.analysis import format_table
from repro.dbms import MySQLServer
from repro.experiments.spaces import transfer_space
from repro.optimizers import SMAC
from repro.transfer import (
    MappedOptimizer,
    RGPESMAC,
    fine_tuned_ddpg,
    pretrain_ddpg,
)
from repro.tuning import (
    DatabaseObjective,
    TuningSession,
    performance_enhancement,
    speedup,
)

SOURCES = ["SEATS", "Voter", "TATP", "Smallbank", "SIBench"]


def run(optimizer, space, iterations, seed=5):
    server = MySQLServer("TPC-C", "B", seed=seed)
    session = TuningSession(
        DatabaseObjective(server, space), optimizer, space,
        max_iterations=iterations, n_initial=10, seed=seed,
    )
    return session.run()


def main(iterations: int = 50) -> None:
    print("Selecting the cross-OLTP top-20 knob space ...")
    space = transfer_space(n_samples=600, seed=17)
    print(f"Pre-training DDPG on {len(SOURCES)} source workloads "
          f"(this also collects the historical observations) ...")
    agent, repository = pretrain_ddpg(
        space, SOURCES, iterations_per_source=40, seed=1
    )

    print(f"Tuning TPC-C for {iterations} iterations per method ...\n")
    base = run(SMAC(space, seed=2), space, iterations)
    candidates = {
        "RGPE(SMAC)": run(RGPESMAC(space, repository, seed=2), space, iterations),
        "Mapping(SMAC)": run(
            MappedOptimizer(SMAC(space, seed=2), repository), space, iterations
        ),
        "Fine-tune(DDPG)": run(fine_tuned_ddpg(space, agent, seed=2), space, iterations),
    }

    rows = [("SMAC (no transfer)", base.best().score, "-", "-")]
    for name, history in candidates.items():
        eta = speedup(base, history)
        pe = performance_enhancement(history.best().score, base.best().score)
        rows.append(
            (
                name,
                history.best().score,
                "x" if eta is None else f"{eta:.2f}",
                f"{pe * 100:+.2f}%",
            )
        )
    print(format_table(
        ["Method", "Best throughput", "Speedup", "Perf. enhancement"],
        rows,
        title="Transfer frameworks on TPC-C (paper Table 8 style)",
    ))
    print("\nRGPE weights adapt per-iteration, so dissimilar sources are "
          "down-weighted — the paper's explanation for why it avoids the "
          "negative transfer that can hit workload mapping.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 50)
