"""Tests for the surrogate benchmark (Section 8)."""

import numpy as np
import pytest

from repro.optimizers import SMAC
from repro.surrogate import (
    SURROGATE_MODEL_REGISTRY,
    SurrogateBenchmark,
    compare_surrogate_models,
)
from repro.tuning import TuningSession


class TestModelComparison:
    def test_all_six_candidates_present(self):
        assert set(SURROGATE_MODEL_REGISTRY) == {"RF", "GB", "SVR", "NuSVR", "KNN", "RR"}

    def test_tree_ensembles_win_on_nonlinear_surface(self):
        rng = np.random.default_rng(0)
        X = rng.random((300, 5))
        # step functions + interaction: hostile to linear models
        y = (
            5.0 * (X[:, 0] > 0.6)
            + 3.0 * (X[:, 1] > 0.3) * (X[:, 2] > 0.5)
            + rng.normal(0, 0.05, 300)
        )
        results = compare_surrogate_models(X, y, n_splits=4, seed=0)
        by_name = {r.name: r for r in results}
        # Table 9's qualitative claim: RF/GB beat Ridge on this surface.
        assert by_name["RF"].r2 > by_name["RR"].r2
        assert by_name["GB"].r2 > by_name["RR"].r2
        # results sorted best-first
        assert results[0].r2 == max(r.r2 for r in results)

    def test_rmse_positive_and_consistent(self, small_regression_data):
        X, y = small_regression_data
        results = compare_surrogate_models(X, y, n_splits=4, seed=0)
        for r in results:
            assert r.rmse > 0


class TestSurrogateBenchmark:
    @pytest.fixture(scope="class")
    def bench(self, sysbench_space):
        return SurrogateBenchmark.build("SYSBENCH", sysbench_space, n_samples=150, seed=3)

    def test_objective_is_cheap_and_never_fails(self, bench, sysbench_space):
        obj = bench.objective()
        for config in sysbench_space.sample_configurations(10, np.random.default_rng(0)):
            obs = obj(config)
            assert not obs.failed
            assert obs.simulated_seconds == pytest.approx(0.08)

    def test_predictions_correlate_with_truth(self, bench, sysbench_space):
        from repro.dbms.server import MySQLServer
        from repro.ml.metrics import spearman_rho

        server = MySQLServer("SYSBENCH", "B", noise=False)
        configs = [
            c
            for c in sysbench_space.sample_configurations(60, np.random.default_rng(5))
            if not server.evaluate(c).failed
        ]
        truth = np.array([server.evaluate(c).objective for c in configs])
        pred = bench.predict(configs)
        assert spearman_rho(truth, pred) > 0.5

    def test_speedup_is_large(self, bench):
        assert bench.speedup_over_real() > 100

    def test_tuning_session_on_surrogate(self, bench, sysbench_space):
        session = TuningSession(
            bench.objective(),
            SMAC(sysbench_space, seed=0),
            sysbench_space,
            max_iterations=20,
            n_initial=5,
            seed=0,
        )
        history = session.run()
        assert history.best().objective > bench.default_objective
