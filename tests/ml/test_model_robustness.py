"""Cross-cutting robustness tests for the ML substrate.

Every regressor must handle the awkward inputs that real tuning pools
produce: constant targets (all evaluations clamped to the same worst
score), duplicate rows (re-evaluated configurations), single features,
and extreme target scales.
"""

import numpy as np
import pytest

from repro.ml import (
    EpsilonSVR,
    GaussianProcessRegressor,
    GradientBoostingRegressor,
    KNNRegressor,
    LassoRegression,
    LinearRegression,
    RandomForestRegressor,
    RidgeRegression,
)

MODELS = {
    "ols": lambda: LinearRegression(),
    "ridge": lambda: RidgeRegression(alpha=1.0),
    "lasso": lambda: LassoRegression(alpha=0.01),
    "rf": lambda: RandomForestRegressor(n_estimators=5, seed=0),
    "gb": lambda: GradientBoostingRegressor(n_estimators=10, seed=0),
    "knn": lambda: KNNRegressor(3),
    "svr": lambda: EpsilonSVR(C=1.0, epsilon=0.05, max_iter=30),
    "gp": lambda: GaussianProcessRegressor(optimize_hyperparams=False),
}


@pytest.mark.parametrize("name", sorted(MODELS))
class TestRobustness:
    def test_constant_target(self, name):
        rng = np.random.default_rng(0)
        X = rng.random((30, 4))
        y = np.full(30, 7.0)
        model = MODELS[name]()
        model.fit(X, y)
        pred = np.asarray(model.predict(X))
        np.testing.assert_allclose(pred, 7.0, atol=0.6)

    def test_duplicate_rows(self, name):
        rng = np.random.default_rng(1)
        base = rng.random((10, 3))
        X = np.vstack([base, base, base])
        y = np.concatenate([base[:, 0]] * 3)
        model = MODELS[name]()
        model.fit(X, y)
        assert np.isfinite(np.asarray(model.predict(X))).all()

    def test_single_feature(self, name):
        rng = np.random.default_rng(2)
        X = rng.random((40, 1))
        y = 2.0 * X.ravel() + 1.0
        model = MODELS[name]()
        model.fit(X, y)
        pred = np.asarray(model.predict(X))
        assert np.corrcoef(pred, y)[0, 1] > 0.8

    def test_huge_target_scale(self, name):
        rng = np.random.default_rng(3)
        X = rng.random((40, 3))
        y = 1e7 * X[:, 0] + 1e6
        model = MODELS[name]()
        model.fit(X, y)
        pred = np.asarray(model.predict(X))
        assert np.isfinite(pred).all()

    def test_two_samples(self, name):
        X = np.array([[0.0, 0.0], [1.0, 1.0]])
        y = np.array([0.0, 1.0])
        model = MODELS[name]()
        model.fit(X, y)
        assert np.isfinite(np.asarray(model.predict(X))).all()
