"""Theta-independent kernel precomputation cache.

One GP hyperparameter fit evaluates the log marginal likelihood on the
order of a hundred times (L-BFGS-B with finite-difference gradients,
multiple restarts) against a *fixed* training matrix.  Stationary kernels
only touch the data through pairwise structures — squared Euclidean
distances for RBF/Matérn, mismatch counts for Hamming — that do not
depend on the hyperparameter vector ``theta``, so those structures can be
built once per (fit, operand pair) and reused by every evaluation.  The
reuse is bit-identical to the uncached path because the cached array is
produced by the very same routine an uncached call would run, on the very
same inputs.

Keys are ``(id(kernel_node), role, id(A), id(B), A.shape, B.shape)``:
the operand ``id``s pin the cache to concrete array objects, so a cache
must never outlive the arrays it was populated against.  The GP creates
one :class:`KernelCache` per ``fit`` call and keeps the training matrix
alive for its whole duration, which satisfies that contract.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable


class KernelCache:
    """Memo store for theta-independent kernel intermediates.

    A plain keyed memo with hit/miss counters (the counters let tests
    assert the cache actually engages on the hot path).
    """

    __slots__ = ("_store", "hits", "misses")

    def __init__(self) -> None:
        self._store: dict[Hashable, Any] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable, builder: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, building it on first use."""
        try:
            value = self._store[key]
        except KeyError:
            self.misses += 1
            value = self._store[key] = builder()
        else:
            self.hits += 1
        return value

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        self._store.clear()
