"""Tests for the server facade, hardware instances, and workload profiles."""

import numpy as np
import pytest

from repro.dbms.instances import INSTANCES
from repro.dbms.metrics import (
    INTERNAL_METRIC_NAMES,
    metrics_vector,
    normalized_metrics_vector,
)
from repro.dbms.server import RESTART_SECONDS, STRESS_TEST_SECONDS, MySQLServer
from repro.workloads import ALL_WORKLOADS, OLTP_WORKLOADS, get_workload, workload_table


class TestInstances:
    def test_table5_values(self):
        assert INSTANCES["A"].cpu_cores == 4 and INSTANCES["A"].ram_gb == 8
        assert INSTANCES["B"].cpu_cores == 8 and INSTANCES["B"].ram_gb == 16
        assert INSTANCES["C"].cpu_cores == 16 and INSTANCES["C"].ram_gb == 32
        assert INSTANCES["D"].cpu_cores == 32 and INSTANCES["D"].ram_gb == 64

    def test_derived_quantities(self):
        b = INSTANCES["B"]
        assert b.ram_bytes == 16 * 1024**3
        assert b.io_read_latency_ms > 0


class TestWorkloads:
    def test_table4_profiles(self):
        assert len(ALL_WORKLOADS) == 9
        job = get_workload("job")
        assert job.wclass == "Analytical" and job.read_only_frac == 1.0
        assert get_workload("TPC-C").read_only_frac == pytest.approx(0.08)
        assert get_workload("Voter").read_only_frac == 0.0
        assert get_workload("SIBench").wclass == "Feature Testing"

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            get_workload("nope")

    def test_objective_directions(self):
        assert get_workload("JOB").is_analytical
        for name in OLTP_WORKLOADS:
            assert not get_workload(name).is_analytical

    def test_workload_table_rows(self):
        rows = workload_table()
        assert len(rows) == 9
        names = {r[0] for r in rows}
        assert "SYSBENCH" in names and "Twitter" in names

    def test_scaled_copy(self):
        w = get_workload("SYSBENCH").scaled(client_threads=16)
        assert w.client_threads == 16
        assert get_workload("SYSBENCH").client_threads == 64

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            get_workload("SYSBENCH").scaled(read_only_frac=1.5)
        with pytest.raises(ValueError):
            get_workload("SYSBENCH").scaled(client_threads=0)


class TestServer:
    def test_partial_config_completed_with_defaults(self, sysbench_server):
        result = sysbench_server.evaluate({"sync_binlog": 0})
        assert result.configuration["innodb_doublewrite"] == "ON"
        assert not result.failed

    def test_simulated_time_accounting(self):
        server = MySQLServer("SYSBENCH", "B", seed=0)
        server.evaluate(server.default_configuration())
        assert server.total_simulated_seconds == RESTART_SECONDS + STRESS_TEST_SECONDS
        # a failed start costs only the restart attempt
        server.evaluate(
            server.default_configuration().with_values(
                innodb_buffer_pool_size=30 * 1024**3
            )
        )
        assert server.total_simulated_seconds == pytest.approx(
            2 * RESTART_SECONDS + STRESS_TEST_SECONDS
        )

    def test_objective_direction(self, sysbench_server, job_server):
        assert sysbench_server.objective_direction == "max"
        assert job_server.objective_direction == "min"

    def test_default_objective_matches_profile(self, sysbench_server):
        assert sysbench_server.default_objective() == get_workload("SYSBENCH").base_throughput


class TestMetricVectors:
    def test_vector_order_is_stable(self):
        metrics = {name: float(i) for i, name in enumerate(INTERNAL_METRIC_NAMES)}
        vec = metrics_vector(metrics)
        np.testing.assert_array_equal(vec, np.arange(len(INTERNAL_METRIC_NAMES)))

    def test_missing_metrics_default_to_zero(self):
        vec = metrics_vector({"tps": 5.0})
        assert vec.sum() == 5.0

    def test_normalization_compresses_rates(self):
        metrics = {"tps": 10000.0, "bp_hit_rate": 0.95}
        vec = normalized_metrics_vector(metrics)
        idx_tps = INTERNAL_METRIC_NAMES.index("tps")
        idx_hit = INTERNAL_METRIC_NAMES.index("bp_hit_rate")
        assert vec[idx_tps] == pytest.approx(np.log1p(10000.0))
        assert vec[idx_hit] == pytest.approx(0.95)
