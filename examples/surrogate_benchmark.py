"""The Section 8 surrogate tuning benchmark, end to end.

Collects an offline sample pool for SYSBENCH, compares the six candidate
regressors (Table 9), packages the random-forest winner as a cheap
objective, tunes against it, and reports the session-level speedup over a
real testbed.

Usage::

    python examples/surrogate_benchmark.py [n_samples]
"""

import sys
import time

import numpy as np

from repro.analysis import format_table
from repro.dbms import MySQLServer
from repro.experiments.spaces import paper_spaces
from repro.optimizers import SMAC
from repro.selection import collect_samples
from repro.surrogate import SurrogateBenchmark, compare_surrogate_models
from repro.tuning import TuningSession, improvement_over_default


def main(n_samples: int = 800) -> None:
    space = paper_spaces("SYSBENCH", n_samples=600, seed=17)["medium"]
    server = MySQLServer("SYSBENCH", "B", seed=3)

    print(f"Collecting {n_samples} offline samples (the paper's 6250-sample "
          f"pool took ~13 days of stress testing) ...")
    configs, scores, __ = collect_samples(server, space, n_samples, seed=3)
    X = space.encode_many(configs)
    y = np.asarray(scores)

    print("Cross-validating the candidate surrogate models (Table 9) ...")
    results = compare_surrogate_models(X, y, n_splits=5, seed=3)
    print()
    print(format_table(
        ["Model", "RMSE (txn/s)", "R2"],
        [(r.name, r.rmse, r.r2) for r in results],
        title="Candidate regressors, 5-fold CV",
    ))

    print("\nBuilding the RF-backed tuning benchmark and running SMAC on it ...")
    bench = SurrogateBenchmark.build("SYSBENCH", space, n_samples=n_samples, seed=3)
    objective = bench.objective()
    wall_start = time.perf_counter()
    session = TuningSession(
        objective, SMAC(space, seed=0), space, max_iterations=100, n_initial=10, seed=0
    )
    history = session.run()
    wall = time.perf_counter() - wall_start

    improvement = improvement_over_default(
        history.best().objective, bench.default_objective, bench.direction
    )
    overhead = sum(o.suggest_seconds for o in history)
    real_session_h = 100 * (35 + 180) / 3600.0
    print(f"\nbest predicted throughput : {history.best().objective:.0f} txn/s "
          f"({improvement * 100:+.1f}% over default)")
    print(f"benchmark session wall time: {wall:.1f}s "
          f"(optimizer overhead {overhead:.1f}s)")
    print(f"equivalent real-testbed session: ~{real_session_h:.1f} hours "
          f"-> {real_session_h * 3600 / max(wall, 1e-9):.0f}x speedup")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 800)
