"""Experiment harnesses regenerating every table and figure of the paper.

Each function reproduces one evaluation artifact and returns a structured
result that the corresponding bench prints:

==================  ==============================================
Paper artifact      Harness
==================  ==============================================
Table 4             :func:`repro.workloads.workload_table`
Table 6 / Figure 3  :func:`repro.experiments.importance.importance_comparison`
Figure 4            :func:`repro.experiments.importance.importance_sensitivity`
Figure 5            :func:`repro.experiments.knob_count.knob_count_sweep`
Figure 6            :func:`repro.experiments.knob_count.incremental_comparison`
Figure 7 / Table 7  :func:`repro.experiments.optimizer_study.optimizer_comparison`
Figure 8            :func:`repro.experiments.optimizer_study.heterogeneity_comparison`
Figure 9            :func:`repro.experiments.optimizer_study.overhead_comparison`
Table 8             :func:`repro.experiments.transfer_study.transfer_comparison`
Table 9             :func:`repro.experiments.surrogate_study.surrogate_model_table`
Figure 10           :func:`repro.experiments.surrogate_study.surrogate_tuning_comparison`
==================  ==============================================

Budgets are scaled down by default (the paper's full scale — 6250-sample
pools, 200-iteration sessions, 3 repetitions — takes days of simulated
stress-testing); every harness takes an explicit
:class:`~repro.experiments.scale.Scale`, and
:func:`~repro.experiments.scale.paper_scale` restores the paper's values.
"""

from repro.experiments.importance import importance_comparison, importance_sensitivity
from repro.experiments.knob_count import incremental_comparison, knob_count_sweep
from repro.experiments.optimizer_study import (
    heterogeneity_comparison,
    optimizer_comparison,
    overhead_comparison,
)
from repro.experiments.scale import Scale, bench_scale, paper_scale
from repro.experiments.spaces import paper_spaces, shap_ranked_knobs
from repro.experiments.surrogate_study import (
    surrogate_model_table,
    surrogate_tuning_comparison,
)
from repro.experiments.transfer_study import transfer_comparison

__all__ = [
    "Scale",
    "bench_scale",
    "heterogeneity_comparison",
    "importance_comparison",
    "importance_sensitivity",
    "incremental_comparison",
    "knob_count_sweep",
    "optimizer_comparison",
    "overhead_comparison",
    "paper_scale",
    "paper_spaces",
    "shap_ranked_knobs",
    "surrogate_model_table",
    "surrogate_tuning_comparison",
    "transfer_comparison",
]
