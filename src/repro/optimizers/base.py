"""Optimizer interface and the shared observation history.

The data repository of the tuning architecture (paper Figure 2): every
stress-test outcome becomes an :class:`Observation`; the :class:`History`
exposes the encodings and maximization scores optimizers train on, and the
best-so-far trajectories the evaluation figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Sequence

import numpy as np

from repro.resilience.taxonomy import FailureKind
from repro.space import Configuration, ConfigurationSpace


@dataclass
class Observation:
    """One evaluated configuration.

    ``score`` is always a *maximization* target: throughput objectives use
    the raw value, latency objectives are negated, and failed evaluations
    are clamped to the worst score seen so far (paper §4.1).

    ``failure_kind`` classifies failed evaluations (``None`` for
    successes and for legacy records that predate the taxonomy);
    ``eval_attempts`` counts how many times the guarded evaluation layer
    called the objective for this observation (1 without retries) — part
    of the deterministic retry accounting fingerprints assert on.
    """

    config: Configuration
    objective: float
    score: float
    failed: bool = False
    failure_reason: str | None = None
    failure_kind: FailureKind | None = None
    metrics: dict[str, float] = field(default_factory=dict)
    iteration: int = -1
    suggest_seconds: float = 0.0
    simulated_seconds: float = 0.0
    eval_attempts: int = 1


class History:
    """Ordered collection of observations for one tuning task."""

    def __init__(self, space: ConfigurationSpace, task_id: str = "") -> None:
        self.space = space
        self.task_id = task_id
        self._observations: list[Observation] = []

    # ------------------------------------------------------------------
    def append(self, obs: Observation) -> None:
        """Append with a position-consistent ``iteration`` index.

        Observations re-appended from another history (warm starts,
        transfer repositories) arrive with a stale index; storing them
        as-is would corrupt :meth:`best_score_trajectory` and
        :meth:`iterations_to_reach`.  Such observations are copied so the
        source history keeps its own indices intact.
        """
        idx = len(self._observations)
        if obs.iteration < 0:
            obs.iteration = idx
        elif obs.iteration != idx:
            obs = replace(obs, iteration=idx)
        self._observations.append(obs)

    def __len__(self) -> int:
        return len(self._observations)

    def __iter__(self) -> Iterator[Observation]:
        return iter(self._observations)

    def __getitem__(self, idx: int) -> Observation:
        return self._observations[idx]

    @property
    def observations(self) -> list[Observation]:
        return list(self._observations)

    # ------------------------------------------------------------------
    def configs(self) -> list[Configuration]:
        return [o.config for o in self._observations]

    def encoded(self) -> np.ndarray:
        """Unit-encoded configurations, shape ``(n, d)``."""
        if not self._observations:
            return np.empty((0, self.space.n_dims))
        return self.space.encode_many([o.config for o in self._observations])

    def scores(self) -> np.ndarray:
        """Maximization scores aligned with :meth:`encoded`."""
        return np.array([o.score for o in self._observations], dtype=float)

    def successful(self) -> list[Observation]:
        return [o for o in self._observations if not o.failed]

    def failure_summary(self) -> dict[str, int]:
        """Counts of failed observations keyed by :class:`FailureKind` value.

        Per-session accounting (unlike ``MySQLServer.n_failures``, a
        process-global ratchet that is never reset): keys are the wire
        values of the taxonomy (``"crash"``, ``"timeout"``, ...), with
        ``"unclassified"`` for failures recorded before the taxonomy
        existed.  Empty when nothing failed.
        """
        counts: dict[str, int] = {}
        for obs in self._observations:
            if not obs.failed:
                continue
            key = obs.failure_kind.value if obs.failure_kind is not None else "unclassified"
            counts[key] = counts.get(key, 0) + 1
        return dict(sorted(counts.items()))

    def worst_score(self) -> float | None:
        """Worst score among successful observations, if any."""
        succ = [o.score for o in self.successful()]
        return min(succ) if succ else None

    def best(self) -> Observation:
        """Best successful observation (highest score)."""
        succ = self.successful()
        if not succ:
            raise ValueError("no successful observations yet")
        return max(succ, key=lambda o: o.score)

    def best_score_trajectory(self) -> np.ndarray:
        """Best-so-far score after each iteration (NaN until first success)."""
        best = float("nan")
        out = np.empty(len(self._observations))
        for i, obs in enumerate(self._observations):
            if not obs.failed and (np.isnan(best) or obs.score > best):
                best = obs.score
            out[i] = best
        return out

    def iterations_to_reach(self, score: float) -> int | None:
        """1-based iteration index of the first success with score >= value."""
        for i, obs in enumerate(self._observations):
            if not obs.failed and obs.score >= score:
                return i + 1
        return None


class Optimizer:
    """Base class: suggests configurations over a fixed space.

    Subclasses implement :meth:`suggest`; stateful optimizers (DDPG, GA)
    additionally override :meth:`observe`, which sessions call after every
    evaluation.
    """

    #: Human-readable name used in result tables.
    name: str = "optimizer"
    #: Whether the paper initializes this optimizer with 10 LHS configs.
    uses_lhs_init: bool = True

    def __init__(self, space: ConfigurationSpace, seed: int | None = None) -> None:
        self.space = space
        self.seed = seed
        self.rng = np.random.default_rng(seed)

    def suggest(self, history: History) -> Configuration:
        """Return the next configuration to evaluate."""
        raise NotImplementedError

    def observe(self, observation: Observation) -> None:
        """Hook invoked after each evaluation (default: no-op)."""

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _random_config(self) -> Configuration:
        return self.space.sample_configuration(self.rng)

    def _dedupe(self, candidate: Configuration, history: History) -> Configuration:
        """Avoid resubmitting an already-evaluated configuration."""
        seen = set(history.configs())
        if candidate not in seen:
            return candidate
        for _ in range(16):
            alt = self._random_config()
            if alt not in seen:
                return alt
        return candidate

    @staticmethod
    def _training_data(history: History) -> tuple[np.ndarray, np.ndarray]:
        """Encoded observations with failure-clamped scores."""
        return history.encoded(), history.scores()
