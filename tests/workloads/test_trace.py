"""Tests for transaction-trace synthesis."""

import numpy as np
import pytest

from repro.dbms.server import MySQLServer
from repro.workloads import get_workload
from repro.workloads.trace import (
    TransactionTrace,
    latency_percentile_objective,
    synthesize_trace,
)


@pytest.fixture(scope="module")
def stress_result():
    server = MySQLServer("SYSBENCH", "B", noise=False)
    return server.evaluate(server.default_configuration())


class TestSynthesizeTrace:
    def test_littles_law_holds(self, stress_result):
        workload = get_workload("SYSBENCH")
        trace = synthesize_trace(stress_result, workload, seed=0)
        expected_mean = 1000.0 * workload.client_threads / stress_result.objective
        assert trace.mean_latency_ms == pytest.approx(expected_mean, rel=1e-6)

    def test_throughput_consistent(self, stress_result):
        workload = get_workload("SYSBENCH")
        trace = synthesize_trace(stress_result, workload, duration_s=30, seed=0)
        assert trace.throughput == pytest.approx(stress_result.objective, rel=0.05)

    def test_heavy_tail_present(self, stress_result):
        workload = get_workload("SYSBENCH")
        trace = synthesize_trace(stress_result, workload, seed=0)
        # p99 well above the median: the stall tail exists
        assert trace.percentile(99) > 3.0 * trace.percentile(50)

    def test_deterministic_given_seed(self, stress_result):
        workload = get_workload("SYSBENCH")
        a = synthesize_trace(stress_result, workload, seed=5)
        b = synthesize_trace(stress_result, workload, seed=5)
        np.testing.assert_array_equal(a.latencies_ms, b.latencies_ms)

    def test_failed_result_rejected(self):
        server = MySQLServer("SYSBENCH", "B", noise=False)
        bad = server.evaluate(
            server.default_configuration().with_values(
                innodb_buffer_pool_size=38 * 1024**3
            )
        )
        assert bad.failed
        with pytest.raises(ValueError):
            synthesize_trace(bad, get_workload("SYSBENCH"))

    def test_duration_validation(self, stress_result):
        with pytest.raises(ValueError):
            synthesize_trace(stress_result, get_workload("SYSBENCH"), duration_s=0)

    def test_transaction_cap(self, stress_result):
        trace = synthesize_trace(
            stress_result, get_workload("SYSBENCH"), duration_s=10_000, seed=0
        )
        assert len(trace.latencies_ms) <= 200_000


class TestPercentileObjective:
    def test_better_config_lower_p95(self):
        server = MySQLServer("SYSBENCH", "B", noise=False)
        workload = get_workload("SYSBENCH")
        default = server.evaluate(server.default_configuration())
        tuned = server.evaluate(
            server.default_configuration().with_values(
                innodb_flush_log_at_trx_commit="0",
                innodb_log_file_size=4 * 1024**3,
            )
        )
        p95_default = latency_percentile_objective(default, workload, seed=0)
        p95_tuned = latency_percentile_objective(tuned, workload, seed=0)
        assert p95_tuned < p95_default

    def test_percentile_validation(self, stress_result):
        trace = synthesize_trace(stress_result, get_workload("SYSBENCH"), seed=0)
        with pytest.raises(ValueError):
            trace.percentile(101)
        assert isinstance(trace, TransactionTrace)
