"""CI resilience-smoke: chaos round trips through the guarded boundary.

Run ``python -m repro.resilience.smoke --out-dir <dir>``.  Four scenarios,
each an end-to-end session (not a unit test) against the simulated DBMS:

1. **raising** — a buggy objective that raises mid-session.  The guarded
   session must complete its full iteration budget with every injected
   exception classified as ``evaluation_error``.
2. **hanging** — an objective that hangs past the guard's wall-clock
   deadline.  The hung calls must come back as ``timeout`` failures and
   the session must still finish.
3. **transient determinism** — a seeded transient-failure schedule run
   serially, in parallel, and through a kill-and-resume boundary; all
   three must produce byte-identical history fingerprints, including the
   retry (``eval_attempts``) accounting.
4. **quarantine & budget** — crash a neighbourhood of the encoded space
   until it is quarantined, then verify short-circuited evaluations cost
   zero simulated seconds; and run a budget-bounded session that must
   stop on ``simulated_budget`` with failed evaluations' restart cost
   counted.

Telemetry and checkpoint files are left in ``--out-dir`` as CI artifacts;
exit code 0 iff every scenario held.
"""

from __future__ import annotations

import argparse
import json
import os

from repro.dbms.catalog import mysql_knob_space
from repro.dbms.server import MySQLServer
from repro.optimizers import OPTIMIZER_REGISTRY
from repro.parallel.checkpoint import history_fingerprint
from repro.parallel.executor import ParallelExecutor
from repro.parallel.faults import (
    HangingObjective,
    RaisingObjective,
    TransientObjective,
    WorkerKiller,
    choose_victims,
    transient_schedule,
)
from repro.parallel.spec import RegistryOptimizerFactory, RunSpec, derive_run_seeds
from repro.resilience.guard import GuardedObjective, GuardPolicy
from repro.resilience.taxonomy import FailureKind
from repro.tuning.objective import DatabaseObjective
from repro.tuning.session import TuningSession


def _space(seed: int, with_memory_knob: bool = False):
    knobs = ["innodb_flush_log_at_trx_commit", "innodb_log_file_size"]
    if with_memory_knob:
        knobs.append("innodb_buffer_pool_size")
    return mysql_knob_space("B", knob_names=knobs, seed=seed)


def _session(objective, space, seed: int, n_iterations: int = 10, **kwargs) -> TuningSession:
    optimizer = OPTIMIZER_REGISTRY["random"](space, seed=seed)
    return TuningSession(
        objective,
        optimizer,
        space,
        max_iterations=n_iterations,
        n_initial=2,
        seed=seed,
        **kwargs,
    )


# ----------------------------------------------------------------------
def scenario_raising(seed: int, failures: list[str]) -> dict:
    space = _space(seed)
    server = MySQLServer("SYSBENCH", "B", seed=seed)
    chaos = RaisingObjective(DatabaseObjective(server, space), at_calls=(2, 5, 6))
    guarded = GuardedObjective(chaos, space, policy=GuardPolicy(), seed=seed)
    history = _session(guarded, space, seed, n_iterations=10).run()
    summary = history.failure_summary()
    if len(history) != 10:
        failures.append(f"raising: session stopped at {len(history)}/10 iterations")
    if summary.get("evaluation_error", 0) != 3:
        failures.append(f"raising: expected 3 evaluation_error failures, got {summary}")
    import math

    if any(o.failed and math.isnan(o.score) for o in history):
        failures.append("raising: failed observations were not clamped (NaN scores)")
    return {"iterations": len(history), "failure_summary": summary}


def scenario_hanging(seed: int, failures: list[str]) -> dict:
    space = _space(seed)
    server = MySQLServer("SYSBENCH", "B", seed=seed)
    chaos = HangingObjective(
        DatabaseObjective(server, space), at_calls=(3,), hang_seconds=0.75
    )
    policy = GuardPolicy(eval_timeout_seconds=0.1)
    guarded = GuardedObjective(chaos, space, policy=policy, seed=seed)
    history = _session(guarded, space, seed, n_iterations=8).run()
    summary = history.failure_summary()
    if len(history) != 8:
        failures.append(f"hanging: session stopped at {len(history)}/8 iterations")
    if summary.get("timeout", 0) != 1:
        failures.append(f"hanging: expected 1 timeout failure, got {summary}")
    return {"iterations": len(history), "failure_summary": summary}


# ----------------------------------------------------------------------
def _transient_specs(seed: int, n_runs: int, n_iterations: int) -> list[RunSpec]:
    space = _space(seed)
    seeds = derive_run_seeds(seed, n_runs)
    specs = []
    for run in range(n_runs):
        server = MySQLServer("SYSBENCH", "B", seed=seeds[run].server)
        schedule = transient_schedule(seed + run, n_calls=2 * n_iterations, rate=0.2)
        objective = TransientObjective(
            DatabaseObjective(server, space), fail_calls=schedule
        )
        specs.append(
            RunSpec(
                run_index=run,
                workload="SYSBENCH",
                space=space,
                n_iterations=n_iterations,
                n_initial=2,
                optimizer_factory=RegistryOptimizerFactory("random"),
                optimizer_seed=seeds[run].optimizer,
                objective=objective,
                session_seed=seeds[run].session,
                guard=GuardPolicy(max_transient_retries=2, backoff_base_seconds=0.001),
                guard_seed=seeds[run].guard,
                tags={"run": run},
            )
        )
    return specs


def scenario_transient_determinism(
    seed: int, out_dir: str, failures: list[str]
) -> dict:
    n_runs, n_iterations = 3, 6
    serial = ParallelExecutor(n_workers=1).run(_transient_specs(seed, n_runs, n_iterations))
    expected = [history_fingerprint(r.history) for r in serial]
    retried = sum(
        1 for r in serial for o in r.history if o.eval_attempts > 1
    )
    if retried == 0:
        failures.append("transient: schedule injected no retries; scenario is vacuous")
    if not all(r.stop_reason == "max_iterations" for r in serial):
        failures.append("transient: serial runs did not complete their budget")

    parallel = ParallelExecutor(n_workers=2).run(
        _transient_specs(seed, n_runs, n_iterations)
    )
    got_parallel = [history_fingerprint(r.history) for r in parallel]
    if got_parallel != expected:
        failures.append("transient: parallel fingerprints diverged from serial")

    checkpoint = os.path.join(out_dir, "transient-checkpoint.jsonl")
    victim = choose_victims(seed, n_runs, 1)[0]
    interrupted = _transient_specs(seed, n_runs, n_iterations)
    interrupted[victim].iteration_hook = WorkerKiller(
        at_iteration=2, arm_dir=out_dir, label=f"resilience-{victim}", once=False
    )
    ParallelExecutor(
        n_workers=2,
        max_retries=0,
        checkpoint_path=checkpoint,
        telemetry_path=os.path.join(out_dir, "transient-telemetry.jsonl"),
    ).run(interrupted)
    resumed = ParallelExecutor(n_workers=2, checkpoint_path=checkpoint).run(
        _transient_specs(seed, n_runs, n_iterations)
    )
    got_resumed = [history_fingerprint(r.history) for r in resumed]
    if got_resumed != expected:
        failures.append("transient: kill-and-resume fingerprints diverged from serial")
    return {
        "victim": victim,
        "retried_observations": retried,
        "serial_equals_parallel": got_parallel == expected,
        "serial_equals_resumed": got_resumed == expected,
    }


# ----------------------------------------------------------------------
def scenario_quarantine_and_budget(seed: int, failures: list[str]) -> dict:
    space = _space(seed, with_memory_knob=True)
    server = MySQLServer("SYSBENCH", "B", seed=seed)
    policy = GuardPolicy(quarantine_crashes=3, quarantine_radius=0.2)
    guarded = GuardedObjective(DatabaseObjective(server, space), space, policy=policy, seed=seed)

    # Hammer one crash-prone neighbourhood: buffer pools far beyond RAM.
    crash_config = dict(space.default_configuration())
    gib = 1 << 30
    for bp in (30 * gib, 31 * gib, 32 * gib):
        crash_config["innodb_buffer_pool_size"] = bp
        obs = guarded(dict(crash_config))
        if not obs.failed or obs.failure_kind not in (
            FailureKind.CRASH,
            FailureKind.UNSTARTABLE,
        ):
            failures.append(f"quarantine: expected a config-induced crash, got {obs}")
    if not guarded.quarantine_regions:
        failures.append("quarantine: region never tripped after 3 clustered crashes")
    crash_config["innodb_buffer_pool_size"] = 31 * gib
    post = guarded(dict(crash_config))
    if post.simulated_seconds != 0.0:
        failures.append(
            f"quarantine: short-circuited eval cost {post.simulated_seconds}s simulated "
            "(expected 0)"
        )
    if guarded.n_short_circuits < 1:
        failures.append("quarantine: evaluation inside the region was not short-circuited")

    # Budget-aware session: 8 iterations would cost ~8*215s; cap well below.
    space_small = _space(seed)
    server2 = MySQLServer("SYSBENCH", "B", seed=seed)
    session = _session(
        DatabaseObjective(server2, space_small),
        space_small,
        seed,
        n_iterations=50,
        max_simulated_hours=0.2,  # 720 simulated seconds ≈ 3 evaluations
    )
    history = session.run()
    if session.stop_reason != "simulated_budget":
        failures.append(f"budget: stop_reason was {session.stop_reason!r}")
    if len(history) >= 50:
        failures.append("budget: session ran its full iteration budget despite the cap")
    return {
        "quarantine_regions": len(guarded.quarantine_regions),
        "short_circuits": guarded.n_short_circuits,
        "budget_iterations": len(history),
        "budget_stop_reason": session.stop_reason,
    }


# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.resilience.smoke")
    parser.add_argument("--out-dir", required=True)
    parser.add_argument("--seed", type=int, default=17)
    args = parser.parse_args(argv)
    os.makedirs(args.out_dir, exist_ok=True)

    failures: list[str] = []
    summary = {
        "raising": scenario_raising(args.seed, failures),
        "hanging": scenario_hanging(args.seed, failures),
        "transient": scenario_transient_determinism(args.seed, args.out_dir, failures),
        "quarantine_and_budget": scenario_quarantine_and_budget(args.seed, failures),
        "failures": failures,
    }
    for name, result in summary.items():
        if name != "failures":
            print(f"{name}: {json.dumps(result)}")
    with open(os.path.join(args.out_dir, "summary.json"), "w", encoding="utf-8") as fh:
        json.dump(summary, fh, indent=2)
    for failure in failures:
        print(f"FAIL: {failure}")
    print("resilience-smoke: OK" if not failures else "resilience-smoke: FAILED")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
