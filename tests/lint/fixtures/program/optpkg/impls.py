"""R012 definition-side cases."""

from optpkg.base import Optimizer


class GoodOptimizer(Optimizer):
    # negative: canonical signatures.
    def suggest(self, history):
        return {}

    def observe(self, observation):
        pass


class DriftedOptimizer(Optimizer):
    # R012: an extra required positional argument breaks every driver.
    def suggest(self, history, temperature):
        return {}


class FlexibleOptimizer(Optimizer):
    # negative: extra *defaulted* keyword-only params keep the contract.
    def suggest(self, history, *, warm_start=None):
        return {}
