"""Figure 5: improvement and tuning cost vs number of tuned knobs.

Paper shape: JOB improvement is flat with rising cost; SYSBENCH
improvement grows with the knob count before declining at the full space,
so the improvement-maximizing count is intermediate.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.experiments import knob_count_sweep


def test_fig5_knob_count_tradeoff(benchmark, scale):
    points = run_once(
        benchmark,
        lambda: knob_count_sweep(
            workloads=("SYSBENCH", "JOB"),
            knob_counts=(5, 10, 20, 50, 197),
            scale=scale,
        ),
    )
    print()
    print(
        format_table(
            ["Workload", "#Knobs", "Improvement %", "Tuning cost (iters)"],
            [
                (p.workload, p.n_knobs, 100.0 * p.improvement, p.tuning_cost_iterations)
                for p in points
            ],
            title="Figure 5: improvement and cost vs number of tuning knobs",
        )
    )
    sys_points = {p.n_knobs: p for p in points if p.workload == "SYSBENCH"}
    job_points = {p.n_knobs: p for p in points if p.workload == "JOB"}
    # SYSBENCH: improvement grows with the knob count over the pre-selected
    # range (the paper's eventual decline at 197 appears at its 600-iteration
    # budget; see EXPERIMENTS.md).
    assert sys_points[20].improvement > sys_points[5].improvement
    # JOB: a small knob set already captures most of the headroom, and the
    # full space costs more tuning iterations for less improvement.
    assert job_points[5].improvement > 0.5 * max(p.improvement for p in job_points.values())
    assert job_points[197].tuning_cost_iterations >= max(
        p.tuning_cost_iterations for p in job_points.values() if p.n_knobs <= 20
    )
    assert job_points[197].improvement <= max(p.improvement for p in job_points.values())
