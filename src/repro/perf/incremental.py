"""O(n^2) bordered-Cholesky update for growing GP training sets.

When a BO iteration appends exactly one observation and the kernel
hyperparameters are unchanged, the new covariance matrix is the old one
bordered by a single row/column.  Its Cholesky factor extends the old
factor without refactorizing:

    K' = [[K, k], [k^T, kappa]]
    L' = [[L, 0], [l^T, sqrt(kappa - l^T l)]]   with  L l = k

which costs one triangular solve — O(n^2) — instead of the O(n^3) of a
fresh factorization.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import linalg


def cholesky_append(L: np.ndarray, k: np.ndarray, kappa: float) -> np.ndarray:
    """Extend a lower Cholesky factor by one bordered row/column.

    Parameters
    ----------
    L:
        Lower-triangular Cholesky factor of the current ``(n, n)``
        covariance matrix ``K``.
    k:
        Cross-covariance column between the new point and the ``n``
        existing points, shape ``(n,)``.
    kappa:
        The new diagonal entry (kernel self-covariance plus noise and
        jitter — whatever the full factorization would have added).

    Returns
    -------
    The ``(n + 1, n + 1)`` lower Cholesky factor of the bordered matrix.

    Raises
    ------
    scipy.linalg.LinAlgError
        If the bordered matrix is not positive definite (the Schur
        complement of the new diagonal entry is non-positive).  Callers
        should fall back to a full factorization with a larger jitter.
    """
    L = np.asarray(L, dtype=float)
    k = np.asarray(k, dtype=float).ravel()
    n = L.shape[0]
    if L.shape != (n, n):
        raise ValueError(f"L must be square, got shape {L.shape}")
    if k.shape != (n,):
        raise ValueError(f"k must have shape ({n},), got {k.shape}")
    if n == 0:
        ell = np.zeros(0)
        schur = float(kappa)
    else:
        ell = linalg.solve_triangular(L, k, lower=True)
        schur = float(kappa) - float(ell @ ell)
    if schur <= 0.0:
        raise linalg.LinAlgError(
            "bordered matrix is not positive definite (Schur complement "
            f"{schur:.3e} <= 0); refactorize with more jitter"
        )
    out = np.zeros((n + 1, n + 1))
    out[:n, :n] = L
    out[n, :n] = ell
    out[n, n] = math.sqrt(schur)
    return out
