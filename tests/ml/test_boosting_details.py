"""Additional gradient-boosting and tree-interaction tests."""

import numpy as np
import pytest

from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.forest import RandomForestRegressor
from repro.ml.metrics import r2_score
from repro.ml.tree import DecisionTreeRegressor


class TestBoostingVsForest:
    def test_boosting_beats_single_tree_on_smooth_target(self):
        rng = np.random.default_rng(0)
        X = rng.random((400, 2))
        y = np.sin(6 * X[:, 0]) + np.cos(4 * X[:, 1])
        Xq = rng.random((200, 2))
        yq = np.sin(6 * Xq[:, 0]) + np.cos(4 * Xq[:, 1])
        stump_forest = DecisionTreeRegressor(max_depth=3).fit(X, y)
        gb = GradientBoostingRegressor(n_estimators=150, max_depth=3, seed=0).fit(X, y)
        assert r2_score(yq, gb.predict(Xq)) > r2_score(yq, stump_forest.predict(Xq))

    def test_learning_rate_shrinkage_tradeoff(self):
        rng = np.random.default_rng(1)
        X = rng.random((200, 2))
        y = X[:, 0] ** 2
        fast = GradientBoostingRegressor(n_estimators=5, learning_rate=0.9, seed=0).fit(X, y)
        slow = GradientBoostingRegressor(n_estimators=5, learning_rate=0.01, seed=0).fit(X, y)
        # with only 5 stages the large learning rate fits far more
        assert r2_score(y, fast.predict(X)) > r2_score(y, slow.predict(X))

    def test_forest_interaction_capture(self):
        """XOR-style interaction: forests learn it, linear models cannot."""
        rng = np.random.default_rng(2)
        X = rng.random((500, 2))
        y = ((X[:, 0] > 0.5) ^ (X[:, 1] > 0.5)).astype(float)
        forest = RandomForestRegressor(n_estimators=30, seed=0).fit(X, y)
        pred = forest.predict(X)
        assert np.mean((pred > 0.5) == (y > 0.5)) > 0.95

    def test_staged_predictions_converge_to_final(self):
        rng = np.random.default_rng(3)
        X = rng.random((100, 2))
        y = X.sum(axis=1)
        gb = GradientBoostingRegressor(n_estimators=20, seed=0).fit(X, y)
        stages = gb.staged_predict(X)
        np.testing.assert_allclose(stages[-1], gb.predict(X))

    def test_unfitted_raises(self):
        gb = GradientBoostingRegressor()
        with pytest.raises(RuntimeError):
            gb.predict(np.ones((1, 2)))
        with pytest.raises(RuntimeError):
            gb.staged_predict(np.ones((1, 2)))


class TestTreeStructureInvariants:
    def test_children_partition_parent_samples(self):
        rng = np.random.default_rng(4)
        X = rng.random((150, 3))
        y = X[:, 0] + rng.normal(0, 0.1, 150)
        tree = DecisionTreeRegressor(max_depth=5).fit(X, y)
        assert tree.feature is not None
        for node in range(tree.n_nodes):
            if tree.feature[node] >= 0:
                left, right = tree.left[node], tree.right[node]
                assert (
                    tree.n_node_samples[node]
                    == tree.n_node_samples[left] + tree.n_node_samples[right]
                )

    def test_impurity_decrease_nonnegative(self):
        rng = np.random.default_rng(5)
        X = rng.random((150, 3))
        y = rng.normal(size=150)
        tree = DecisionTreeRegressor(max_depth=6).fit(X, y)
        assert (tree.impurity_decrease >= 0).all()

    def test_apply_maps_to_leaves(self):
        rng = np.random.default_rng(6)
        X = rng.random((80, 2))
        tree = DecisionTreeRegressor(max_depth=4).fit(X, X[:, 0])
        leaves = tree.apply(X)
        assert (tree.feature[leaves] == -1).all()
