"""Table 8: knowledge-transfer frameworks (speedup, PE, absolute rank).

Paper shape: RGPE transfers positively and has the best absolute
performance (RGPE(SMAC) best overall); workload mapping can transfer
negatively; fine-tuned DDPG is unstable but roughly neutral-positive.
"""

import os

from conftest import run_once

from repro.analysis import format_table
from repro.experiments import transfer_comparison


def test_table8_transfer_frameworks(benchmark, scale):
    result = run_once(benchmark, lambda: transfer_comparison(scale=scale))
    print()
    print(
        format_table(
            ["Target", "Framework", "Base", "Speedup", "PE %", "Best score"],
            [
                (
                    r.target,
                    r.framework,
                    r.base,
                    float("nan") if r.speedup is None else r.speedup,
                    100.0 * r.performance_enhancement,
                    r.best_score,
                )
                for r in result.rows
            ],
            title="Table 8: evaluation results for transfer frameworks",
        )
    )
    avg = result.absolute_rankings["avg"]
    print()
    print(
        format_table(
            ["Method", "Avg absolute rank"],
            sorted(avg.items(), key=lambda t: t[1]),
            title="Table 8 (right): absolute performance ranking",
        )
    )
    def mean_pe(framework, base):
        vals = [
            r.performance_enhancement
            for r in result.rows
            if r.framework == framework and r.base == base
        ]
        return sum(vals) / len(vals)

    def min_pe(framework):
        return min(
            r.performance_enhancement for r in result.rows if r.framework == framework
        )

    # Shape at any scale: RGPE never transfers catastrophically (adaptive
    # weights), while fine-tuned DDPG is unstable and can be negative.
    assert min_pe("rgpe") > -0.10
    assert mean_pe("rgpe", "smac") > mean_pe("fine-tune", "ddpg")
    assert mean_pe("rgpe", "mixed_kernel_bo") > mean_pe("fine-tune", "ddpg")
    # RGPE achieves real speedups on most targets.
    rgpe_speedups = [r.speedup for r in result.rows if r.framework == "rgpe"]
    assert sum(1 for s in rgpe_speedups if s is not None and s > 1.0) >= 3
    if os.environ.get("REPRO_SCALE", "").lower() == "paper":
        # The paper's finer claim — RGPE beats workload mapping — needs
        # the full budget and more heterogeneous source/target pairs.
        assert mean_pe("rgpe", "smac") >= mean_pe("mapping", "smac") - 0.02
        assert sorted(avg, key=avg.get).index("rgpe(smac)") <= 1
