"""Compare all seven configuration optimizers on the analytical workload.

Tunes JOB's 95%-quantile latency over a 20-knob heterogeneous space with
every optimizer from the paper's Table 3 and prints the best-found
latency and per-iteration algorithm overhead — a miniature of Figure 7
and Figure 9 combined.

Usage::

    python examples/optimizer_comparison.py [iterations]
"""

import sys

import numpy as np

from repro.analysis import format_table
from repro.dbms import MySQLServer
from repro.experiments.spaces import paper_spaces
from repro.optimizers import OPTIMIZER_REGISTRY
from repro.tuning import DatabaseObjective, TuningSession, improvement_over_default

OPTIMIZERS = ("vanilla_bo", "mixed_kernel_bo", "smac", "tpe", "turbo", "ddpg", "ga")


def main(iterations: int = 60) -> None:
    print("Deriving the SHAP-ranked medium space for JOB ...")
    space = paper_spaces("JOB", n_samples=600, seed=17)["medium"]
    print(f"  tuning {space.n_dims} knobs, "
          f"{int(space.categorical_mask.sum())} of them categorical\n")

    rows = []
    for name in OPTIMIZERS:
        server = MySQLServer("JOB", "B", seed=100)
        objective = DatabaseObjective(server, space)
        optimizer = OPTIMIZER_REGISTRY[name](space, seed=7)
        session = TuningSession(
            objective, optimizer, space, max_iterations=iterations, n_initial=10, seed=3
        )
        history = session.run()
        best = history.best()
        improvement = improvement_over_default(
            best.objective, server.default_objective(), "min"
        )
        overhead = np.mean([o.suggest_seconds for o in history][10:])
        rows.append(
            (name, best.objective, 100.0 * improvement, 1000.0 * overhead)
        )
        print(f"  {name:16s} best 95% latency {best.objective:7.1f}s "
              f"({improvement * 100:+.1f}%)")

    rows.sort(key=lambda r: r[1])
    print()
    print(
        format_table(
            ["Optimizer", "Best latency (s)", "Improvement %", "Overhead (ms/iter)"],
            rows,
            title=f"JOB, medium space, {iterations} iterations",
        )
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 60)
