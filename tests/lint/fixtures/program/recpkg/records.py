"""R013/R014 positive and negative cases."""

from recpkg.clock import duration, stamp


def run_to_record(run):
    record = {
        "id": run.id,
        "score": run.score,
    }
    # R013: written but never read back.
    record["extra"] = run.extra
    return record


def record_to_run(record):
    # R013: reads a field the writer never produces.
    return (record["id"], record["score"], record.get("missing"))


def state_to_record(state):
    # negative: symmetric, including the conditional field.
    record = {"cursor": state.cursor}
    if state.resumed:
        record["resume_token"] = state.resume_token
    return record


def record_to_state(record):
    return (record["cursor"], record.get("resume_token"))


def run_to_payload(run):
    payload = {"id": run.id}
    # R014: wall clock reaches a recorded value through another module.
    payload["when"] = stamp()
    return payload


def timing_to_payload(run):
    # negative: durations are fine.
    return {"id": run.id, "seconds": duration(run.started)}
