"""Kernel support-vector regression (Table 9 surrogate candidates).

We solve the bias-free epsilon-SVR dual by cyclic coordinate descent with
soft-thresholding: with RBF kernel matrix ``K`` and dual coefficients
``beta_i = alpha_i - alpha_i*`` in ``[-C, C]``, the objective

    D(beta) = 1/2 beta' K beta - y' beta + eps * ||beta||_1

has a closed-form coordinate update.  The bias is handled by centering the
targets (standard for universal kernels).  NuSVR re-derives ``eps`` from the
``nu`` fraction of the target's spread, matching libsvm's tube-width
semantics approximately.
"""

from __future__ import annotations

import numpy as np


def _rbf_kernel(A: np.ndarray, B: np.ndarray, gamma: float) -> np.ndarray:
    d2 = (
        np.sum(A**2, axis=1)[:, None]
        - 2.0 * A @ B.T
        + np.sum(B**2, axis=1)[None, :]
    )
    np.maximum(d2, 0.0, out=d2)
    return np.exp(-gamma * d2)


class EpsilonSVR:
    """Epsilon-insensitive kernel SVR trained by dual coordinate descent."""

    def __init__(
        self,
        C: float = 1.0,
        epsilon: float = 0.1,
        gamma: float | str = "scale",
        max_iter: int = 200,
        tol: float = 1e-4,
    ) -> None:
        if C <= 0:
            raise ValueError("C must be > 0")
        if epsilon < 0:
            raise ValueError("epsilon must be >= 0")
        self.C = C
        self.epsilon = epsilon
        self.gamma = gamma
        self.max_iter = max_iter
        self.tol = tol
        self._X: np.ndarray | None = None
        self.dual_coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self._gamma_value: float = 1.0

    def _resolve_gamma(self, X: np.ndarray) -> float:
        if self.gamma == "scale":
            var = X.var()
            return 1.0 / (X.shape[1] * var) if var > 0 else 1.0 / X.shape[1]
        if isinstance(self.gamma, (int, float)):
            if self.gamma <= 0:
                raise ValueError("gamma must be > 0")
            return float(self.gamma)
        raise ValueError(f"invalid gamma: {self.gamma!r}")

    def _solve(self, K: np.ndarray, y: np.ndarray, epsilon: float) -> np.ndarray:
        n = len(y)
        beta = np.zeros(n)
        # residual_i = y_i - (K beta)_i, kept incrementally.
        residual = y.copy()
        diag = np.maximum(np.diag(K), 1e-12)
        for _ in range(self.max_iter):
            max_delta = 0.0
            for i in range(n):
                old = beta[i]
                rho = residual[i] + diag[i] * old
                if rho > epsilon:
                    new = (rho - epsilon) / diag[i]
                elif rho < -epsilon:
                    new = (rho + epsilon) / diag[i]
                else:
                    new = 0.0
                new = float(np.clip(new, -self.C, self.C))
                if new != old:
                    residual -= K[:, i] * (new - old)
                    beta[i] = new
                    max_delta = max(max_delta, abs(new - old))
            if max_delta < self.tol:
                break
        return beta

    def fit(self, X: np.ndarray, y: np.ndarray) -> "EpsilonSVR":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if len(X) != len(y):
            raise ValueError("X and y length mismatch")
        if len(X) == 0:
            raise ValueError("cannot fit on empty data")
        self._gamma_value = self._resolve_gamma(X)
        self._X = X
        self.intercept_ = float(y.mean())
        K = _rbf_kernel(X, X, self._gamma_value)
        self.dual_coef_ = self._solve(K, y - self.intercept_, self.epsilon)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._X is None or self.dual_coef_ is None:
            raise RuntimeError("model is not fitted")
        K = _rbf_kernel(np.asarray(X, dtype=float), self._X, self._gamma_value)
        return K @ self.dual_coef_ + self.intercept_

    @property
    def n_support_(self) -> int:
        """Number of support vectors (non-zero dual coefficients)."""
        if self.dual_coef_ is None:
            raise RuntimeError("model is not fitted")
        return int(np.sum(np.abs(self.dual_coef_) > 1e-10))


class NuSVR(EpsilonSVR):
    """Nu-parameterized SVR: the tube width adapts to the data.

    ``nu`` upper-bounds the fraction of training points outside the tube;
    we set ``epsilon`` to the ``(1 - nu)`` quantile of the centered target's
    absolute deviation and refine it once from residuals.
    """

    def __init__(
        self,
        C: float = 1.0,
        nu: float = 0.5,
        gamma: float | str = "scale",
        max_iter: int = 200,
        tol: float = 1e-4,
    ) -> None:
        if not 0.0 < nu <= 1.0:
            raise ValueError("nu must be in (0, 1]")
        super().__init__(C=C, epsilon=0.0, gamma=gamma, max_iter=max_iter, tol=tol)
        self.nu = nu

    def fit(self, X: np.ndarray, y: np.ndarray) -> "NuSVR":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if len(X) != len(y):
            raise ValueError("X and y length mismatch")
        if len(X) == 0:
            raise ValueError("cannot fit on empty data")
        self._gamma_value = self._resolve_gamma(X)
        self._X = X
        self.intercept_ = float(y.mean())
        yc = y - self.intercept_
        K = _rbf_kernel(X, X, self._gamma_value)
        # Initial tube from the target spread, then one refinement from the
        # fitted residual distribution.
        eps = float(np.quantile(np.abs(yc), 1.0 - self.nu)) if len(yc) > 1 else 0.0
        beta = self._solve(K, yc, eps)
        residual = np.abs(yc - K @ beta)
        eps = float(np.quantile(residual, 1.0 - self.nu)) if len(residual) > 1 else 0.0
        self.epsilon = eps
        self.dual_coef_ = self._solve(K, yc, eps)
        return self
