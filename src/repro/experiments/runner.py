"""Shared session-running helpers for experiment harnesses.

``run_sessions`` is now a thin facade over :mod:`repro.parallel`: it
materializes one :class:`~repro.parallel.RunSpec` per run (with seeds
derived up front via ``SeedSequence.spawn``) and hands the batch to a
:class:`~repro.parallel.ParallelExecutor`.  ``n_workers=1`` preserves the
historical serial behavior; any larger value fans the independent runs
out over a process pool and returns bit-identical histories.
"""

from __future__ import annotations

import warnings
from typing import Callable

import numpy as np

from repro.dbms.server import MySQLServer
from repro.optimizers.base import History, Optimizer
from repro.parallel import ParallelExecutor, RunSpec, derive_run_seeds
from repro.space import ConfigurationSpace
from repro.tuning.metrics import improvement_over_default

OptimizerFactory = Callable[[ConfigurationSpace, int], Optimizer]


def build_session_specs(
    workload: str,
    space: ConfigurationSpace,
    optimizer_factory: OptimizerFactory,
    n_runs: int,
    n_iterations: int,
    n_initial: int = 10,
    instance: str = "B",
    seed: int = 0,
    max_simulated_hours: float | None = None,
    guard=None,
) -> list[RunSpec]:
    """One spec per run, with independent per-run seed triples.

    The simulator's noise stream, the optimizer's sampling stream, and
    the session's LHS stream are spawned from disjoint ``SeedSequence``
    children — they were previously derived by integer offsets from the
    same root, which made run 0's server and optimizer share the exact
    seed value and correlate their streams.  ``guard`` (a
    :class:`repro.resilience.GuardPolicy`) wraps every run's objective in
    a :class:`~repro.resilience.GuardedObjective` seeded from the run's
    fourth seed stream; ``max_simulated_hours`` bounds each session's
    simulated wall-clock alongside its iteration budget.
    """
    seeds = derive_run_seeds(seed, n_runs)
    return [
        RunSpec(
            run_index=run,
            workload=workload,
            instance=instance,
            space=space,
            optimizer_factory=optimizer_factory,
            n_iterations=n_iterations,
            n_initial=n_initial,
            server_seed=seeds[run].server,
            optimizer_seed=seeds[run].optimizer,
            session_seed=seeds[run].session,
            max_simulated_hours=max_simulated_hours,
            guard=guard,
            guard_seed=seeds[run].guard,
            tags={
                "workload": workload,
                "instance": instance,
                "optimizer": getattr(
                    optimizer_factory, "optimizer_name", type(optimizer_factory).__name__
                ),
                "run": run,
            },
        )
        for run in range(n_runs)
    ]


def run_sessions(
    workload: str,
    space: ConfigurationSpace,
    optimizer_factory: OptimizerFactory,
    n_runs: int,
    n_iterations: int,
    n_initial: int = 10,
    instance: str = "B",
    seed: int = 0,
    n_workers: int = 1,
    telemetry_path: str | None = None,
    checkpoint_path: str | None = None,
    max_simulated_hours: float | None = None,
    guard=None,
) -> list[History]:
    """Run repeated tuning sessions (fresh server + optimizer per run).

    For a fixed ``seed`` the returned histories are identical for every
    ``n_workers``; a run whose worker crashes is retried once and, if it
    fails again, dropped from the result with a warning instead of
    aborting the study.  ``checkpoint_path`` makes completed runs durable:
    each is appended to the :class:`~repro.parallel.StudyCheckpoint` the
    moment it finishes, and a re-invocation with the same arguments and
    path resumes the study, skipping every run already on file.
    """
    specs = build_session_specs(
        workload,
        space,
        optimizer_factory,
        n_runs,
        n_iterations,
        n_initial=n_initial,
        instance=instance,
        seed=seed,
        max_simulated_hours=max_simulated_hours,
        guard=guard,
    )
    executor = ParallelExecutor(
        n_workers=n_workers,
        telemetry_path=telemetry_path,
        checkpoint_path=checkpoint_path,
    )
    results = executor.run(specs)
    dead = [r for r in results if r.history is None]
    if dead:
        first = dead[0].error or "unknown error"
        warnings.warn(
            f"{len(dead)}/{n_runs} runs failed after retry "
            f"(first error: {first.splitlines()[0]})",
            RuntimeWarning,
            stacklevel=2,
        )
    return [r.history for r in results if r.history is not None]


def count_failed_runs(histories: list[History]) -> int:
    """Runs that never produced a successful observation."""
    return sum(1 for h in histories if not h.successful())


def study_failure_summary(histories: list[History]) -> dict[str, int]:
    """Aggregate per-kind failure counts across a study's sessions.

    Sums each history's :meth:`~repro.optimizers.base.History.failure_summary`
    — the per-session accounting (``MySQLServer.n_failures`` ratchets for
    the server's whole lifetime and cannot be attributed to a session).
    """
    totals: dict[str, int] = {}
    for h in histories:
        for kind, count in h.failure_summary().items():
            totals[kind] = totals.get(kind, 0) + count
    return dict(sorted(totals.items()))


def median_improvement(
    histories: list[History], workload: str, instance: str = "B"
) -> float:
    """Median best-improvement over the default across repeated sessions.

    Runs with no successful observation are excluded (they used to inject
    ``-inf``, which could drag the median to ``-inf`` and poison every
    downstream table); if *all* runs failed the result is NaN and a
    warning reports the failure count.
    """
    server = MySQLServer(workload, instance, noise=False)
    default = server.default_objective()
    direction = server.objective_direction
    improvements = []
    for h in histories:
        try:
            best = h.best().objective
        except ValueError:
            continue
        improvements.append(improvement_over_default(best, default, direction))
    if not improvements:
        warnings.warn(
            f"all {count_failed_runs(histories)} runs failed; median undefined",
            RuntimeWarning,
            stacklevel=2,
        )
        return float("nan")
    return float(np.median(improvements))


def median_best_score(histories: list[History]) -> float:
    """Median of best scores across sessions (maximization scale).

    Failed runs are skipped rather than scored ``-inf``; NaN (plus a
    warning with the failure count) when no run succeeded.
    """
    bests = []
    for h in histories:
        try:
            bests.append(h.best().score)
        except ValueError:
            continue
    if not bests:
        warnings.warn(
            f"all {count_failed_runs(histories)} runs failed; median undefined",
            RuntimeWarning,
            stacklevel=2,
        )
        return float("nan")
    return float(np.median(bests))
