"""End-to-end "path" search over tuning-system designs (paper §9.2).

The paper's first research opportunity: treat the choice of
intra-algorithms — which importance measurement, how many knobs, which
optimizer — as a joint search space and optimize over it.  This module
implements the simplest principled version: a successive-halving bandit
over candidate *paths* (measurement x knob-count x optimizer).  Each
surviving path gets a progressively larger slice of the evaluation
budget; weak paths are eliminated early, so most of the budget goes to
the strongest end-to-end design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.dbms.catalog import mysql_knob_space
from repro.dbms.server import MySQLServer
from repro.optimizers.base import History, Observation
from repro.tuning.objective import DatabaseObjective
from repro.tuning.session import TuningSession


@dataclass(frozen=True)
class TuningPath:
    """One Figure 1 path: measurement -> knob count -> optimizer."""

    measurement: str
    n_knobs: int
    optimizer: str

    def __str__(self) -> str:
        return f"{self.measurement}/top-{self.n_knobs}/{self.optimizer}"


@dataclass
class PathResult:
    path: TuningPath
    best_score: float
    iterations_used: int
    eliminated_at_round: int | None  # None = survived to the end
    history: History | None = None


class PathSearch:
    """Successive halving over end-to-end tuning paths.

    Parameters
    ----------
    workload, instance:
        The target tuning task.
    paths:
        Candidate paths; defaults to the cross-product of
        {shap, gini} x {5, 20} x {smac, mixed_kernel_bo}.
    pool_samples:
        LHS pool size used once for all measurements' rankings.
    total_budget:
        Total DBMS evaluations spent across all paths and rounds.
    eta:
        Halving rate: the top ``1/eta`` of paths survive each round.
    """

    def __init__(
        self,
        workload: str,
        instance: str = "B",
        paths: list[TuningPath] | None = None,
        pool_samples: int = 600,
        total_budget: int = 240,
        eta: int = 2,
        seed: int = 0,
    ) -> None:
        if eta < 2:
            raise ValueError("eta must be >= 2")
        if total_budget < 20:
            raise ValueError("total_budget must be >= 20")
        self.workload = workload
        self.instance = instance
        self.paths = paths if paths is not None else self.default_paths()
        if not self.paths:
            raise ValueError("need at least one candidate path")
        self.pool_samples = pool_samples
        self.total_budget = total_budget
        self.eta = eta
        self.seed = seed
        self._rankings: dict[str, list[str]] = {}

    @staticmethod
    def default_paths() -> list[TuningPath]:
        return [
            TuningPath(m, k, o)
            for m in ("shap", "gini")
            for k in (5, 20)
            for o in ("smac", "mixed_kernel_bo")
        ]

    # ------------------------------------------------------------------
    def _ranking(self, measurement: str) -> list[str]:
        # Imported lazily: repro.selection imports repro.tuning internals.
        from repro.selection import MEASUREMENT_REGISTRY
        from repro.selection.base import collect_samples

        if measurement not in self._rankings:
            space = mysql_knob_space(self.instance, seed=self.seed)
            server = MySQLServer(self.workload, self.instance, seed=self.seed)
            configs, scores, default_score = collect_samples(
                server, space, self.pool_samples, seed=self.seed
            )
            m = MEASUREMENT_REGISTRY[measurement](space, seed=self.seed)
            self._rankings[measurement] = m.rank(
                configs, scores, default_score=default_score
            ).ranked()
        return self._rankings[measurement]

    def _make_session(self, path: TuningPath, budget: int, warm: list[Observation]):
        from repro.optimizers import OPTIMIZER_REGISTRY

        ranked = self._ranking(path.measurement)
        space = mysql_knob_space(
            self.instance, knob_names=ranked[: path.n_knobs], seed=self.seed
        )
        server = MySQLServer(self.workload, self.instance, seed=self.seed + hash(path) % 1000)
        objective = DatabaseObjective(server, space)
        optimizer = OPTIMIZER_REGISTRY[path.optimizer](space, seed=self.seed)
        projected = [
            Observation(
                config=space.complete({k: o.config[k] for k in space.names if k in o.config}),
                objective=o.objective,
                score=o.score,
                failed=o.failed,
            )
            for o in warm
        ]
        return TuningSession(
            objective,
            optimizer,
            space,
            max_iterations=budget,
            n_initial=10 if not warm else 0,
            seed=self.seed,
            warm_start=projected,
        )

    def run(self) -> list[PathResult]:
        """Run successive halving; results sorted best-first."""
        n_rounds = max(1, int(np.ceil(np.log(len(self.paths)) / np.log(self.eta))))
        per_round_budget = self.total_budget // max(
            sum(
                max(1, len(self.paths) // self.eta**r)
                for r in range(n_rounds)
            ),
            1,
        )
        per_round_budget = max(per_round_budget, 10)

        alive = list(self.paths)
        results: dict[TuningPath, PathResult] = {
            p: PathResult(p, float("-inf"), 0, None) for p in self.paths
        }
        warm: dict[TuningPath, list[Observation]] = {p: [] for p in self.paths}
        for round_idx in range(n_rounds):
            scored: list[tuple[float, TuningPath]] = []
            for path in alive:
                session = self._make_session(path, per_round_budget, warm[path])
                history = session.run()
                warm[path] = history.observations
                result = results[path]
                try:
                    result.best_score = history.best().score
                except ValueError:
                    result.best_score = float("-inf")
                result.iterations_used += per_round_budget
                result.history = history
                scored.append((result.best_score, path))
            scored.sort(key=lambda t: -t[0])
            keep = max(1, len(alive) // self.eta)
            survivors = {path for __, path in scored[:keep]}
            for __, path in scored[keep:]:
                results[path].eliminated_at_round = round_idx
            alive = [p for p in alive if p in survivors]
            if len(alive) == 1:
                break
        return sorted(results.values(), key=lambda r: -r.best_score)
