"""R012 call-site cases."""


def good_loop(optimizer, history, obs):
    # negative: canonical call shapes.
    config = optimizer.suggest(history)
    optimizer.observe(obs)
    return config


def bad_loop(optimizer, history, obs):
    # R012: two positional arguments.
    config = optimizer.suggest(history, 0.5)
    # R012: a keyword at least one registered optimizer rejects.
    optimizer.observe(obs, strict=True)
    return config


def unchecked_receiver(thing, history):
    # negative: the receiver does not look like an optimizer; stay quiet.
    return thing.suggest(history, 1, 2, 3)
