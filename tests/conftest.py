"""Shared fixtures: small spaces, quick servers, and cached sample pools."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dbms.catalog import mysql_knob_space
from repro.dbms.server import MySQLServer
from repro.selection.base import collect_samples
from repro.space import (
    CategoricalKnob,
    ConfigurationSpace,
    ContinuousKnob,
    IntegerKnob,
)

#: A representative SYSBENCH-impactful knob subset used across tests.
SYSBENCH_KNOBS = [
    "innodb_flush_log_at_trx_commit",
    "sync_binlog",
    "innodb_log_file_size",
    "innodb_io_capacity",
    "innodb_buffer_pool_size",
    "innodb_doublewrite",
    "innodb_flush_method",
    "innodb_thread_concurrency",
    "thread_cache_size",
    "innodb_write_io_threads",
]


@pytest.fixture
def tiny_space() -> ConfigurationSpace:
    """A 4-knob mixed space for unit tests."""
    return ConfigurationSpace(
        [
            ContinuousKnob("x", 0.0, 1.0, 0.5),
            IntegerKnob("n", 1, 1024, 16, log=True),
            CategoricalKnob("mode", ["a", "b", "c"], "a"),
            IntegerKnob("count", 0, 100, 10),
        ],
        seed=0,
    )


@pytest.fixture(scope="session")
def mysql_space() -> ConfigurationSpace:
    """The full 197-knob MySQL space on instance B."""
    return mysql_knob_space("B", seed=0)


@pytest.fixture(scope="session")
def sysbench_space() -> ConfigurationSpace:
    """A 10-knob impactful SYSBENCH subspace."""
    return mysql_knob_space("B", knob_names=SYSBENCH_KNOBS, seed=0)


@pytest.fixture
def sysbench_server() -> MySQLServer:
    return MySQLServer("SYSBENCH", "B", seed=11)


@pytest.fixture
def job_server() -> MySQLServer:
    return MySQLServer("JOB", "B", seed=12)


@pytest.fixture(scope="session")
def sysbench_pool(mysql_space):
    """A cached 500-sample LHS pool over the full space (configs, scores,
    default score)."""
    server = MySQLServer("SYSBENCH", "B", seed=7)
    return collect_samples(server, mysql_space, 500, seed=7)


@pytest.fixture(scope="session")
def small_regression_data():
    """Synthetic regression data with known structure."""
    rng = np.random.default_rng(0)
    X = rng.random((250, 6))
    y = 4.0 * X[:, 0] - 3.0 * X[:, 1] + 2.0 * X[:, 2] * X[:, 3] + rng.normal(0, 0.05, 250)
    return X, y
