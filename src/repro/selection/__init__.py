"""Knob selection: importance measurements and incremental heuristics.

The paper's Table 2 taxonomy:

=====================  ================  ===============================
Measurement            Category          Module
=====================  ================  ===============================
Lasso (OtterTune)      variance-based    :mod:`repro.selection.lasso`
Gini score (Tuneful)   variance-based    :mod:`repro.selection.gini`
fANOVA (HPO)           variance-based    :mod:`repro.selection.fanova`
Ablation analysis      tunability-based  :mod:`repro.selection.ablation`
SHAP                   tunability-based  :mod:`repro.selection.shap`
=====================  ================  ===============================

plus the two incremental space-sizing heuristics: increasing the knob
count (OtterTune) and decreasing it (Tuneful), in
:mod:`repro.selection.incremental`.
"""

from repro.selection.ablation import AblationImportance
from repro.selection.base import ImportanceMeasurement, ImportanceResult, collect_samples
from repro.selection.fanova import FanovaImportance
from repro.selection.gini import GiniImportance
from repro.selection.lasso import LassoImportance
from repro.selection.incremental import (
    DecrementalTuner,
    IncrementalTuner,
)
from repro.selection.shap import ShapImportance

MEASUREMENT_REGISTRY = {
    "lasso": LassoImportance,
    "gini": GiniImportance,
    "fanova": FanovaImportance,
    "ablation": AblationImportance,
    "shap": ShapImportance,
}

__all__ = [
    "AblationImportance",
    "DecrementalTuner",
    "FanovaImportance",
    "GiniImportance",
    "ImportanceMeasurement",
    "ImportanceResult",
    "IncrementalTuner",
    "LassoImportance",
    "MEASUREMENT_REGISTRY",
    "ShapImportance",
    "collect_samples",
]
