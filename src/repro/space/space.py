"""The configuration space container shared by all modules.

A :class:`ConfigurationSpace` is an ordered collection of knobs.  It provides

- encode/decode between native :class:`Configuration` objects and unit
  vectors in ``[0, 1]^d`` (the representation optimizers work in),
- one-hot encoding for models that need explicit categorical expansion
  (Lasso, linear surrogates),
- subspacing (knob selection produces a subspace of the full space),
- neighbourhood generation for SMAC-style local search.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.space.configuration import Configuration
from repro.space.parameter import CategoricalKnob, Knob


class ConfigurationSpace:
    """An ordered product of knob domains."""

    def __init__(self, knobs: Iterable[Knob], seed: int | None = None) -> None:
        self._knobs: list[Knob] = []
        self._by_name: dict[str, Knob] = {}
        for knob in knobs:
            if knob.name in self._by_name:
                raise ValueError(f"duplicate knob {knob.name!r}")
            self._knobs.append(knob)
            self._by_name[knob.name] = knob
        if not self._knobs:
            raise ValueError("configuration space must contain at least one knob")
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # basic container protocol
    # ------------------------------------------------------------------
    @property
    def knobs(self) -> list[Knob]:
        return list(self._knobs)

    @property
    def names(self) -> list[str]:
        return [k.name for k in self._knobs]

    @property
    def n_dims(self) -> int:
        return len(self._knobs)

    def __len__(self) -> int:
        return len(self._knobs)

    def __iter__(self) -> Iterator[Knob]:
        return iter(self._knobs)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Knob:
        return self._by_name[name]

    def index_of(self, name: str) -> int:
        """Return the dimension index of a knob."""
        for i, knob in enumerate(self._knobs):
            if knob.name == name:
                return i
        raise KeyError(name)

    # ------------------------------------------------------------------
    # masks used by mixed-kernel models
    # ------------------------------------------------------------------
    @property
    def categorical_mask(self) -> np.ndarray:
        """Boolean mask, True where a dimension is categorical."""
        return np.array([k.is_categorical for k in self._knobs], dtype=bool)

    @property
    def continuous_mask(self) -> np.ndarray:
        """Boolean mask, True where a dimension is numeric (continuous/integer)."""
        return ~self.categorical_mask

    @property
    def has_categorical(self) -> bool:
        return any(k.is_categorical for k in self._knobs)

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------
    def encode(self, config: Mapping[str, Any]) -> np.ndarray:
        """Encode a configuration to its unit vector in ``[0, 1]^d``."""
        return np.array([k.to_unit(config[k.name]) for k in self._knobs], dtype=float)

    def decode(self, vector: Sequence[float]) -> Configuration:
        """Decode a unit vector to a native :class:`Configuration`."""
        vec = np.asarray(vector, dtype=float)
        if vec.shape != (self.n_dims,):
            raise ValueError(f"expected vector of shape ({self.n_dims},), got {vec.shape}")
        return Configuration({k.name: k.from_unit(v) for k, v in zip(self._knobs, vec)})

    def encode_many(self, configs: Sequence[Mapping[str, Any]]) -> np.ndarray:
        """Encode a batch of configurations into an ``(n, d)`` array.

        Vectorized per knob column; bit-identical to encoding each
        configuration with :meth:`encode`.
        """
        configs = list(configs)
        if not configs:
            return np.empty((0, self.n_dims))
        return np.column_stack(
            [k.to_unit_array([c[k.name] for c in configs]) for k in self._knobs]
        )

    def decode_many(self, vectors: np.ndarray) -> list[Configuration]:
        """Decode an ``(n, d)`` array of unit vectors to configurations.

        Vectorized per knob column; bit-identical to decoding each row
        with :meth:`decode`.
        """
        U = np.atleast_2d(np.asarray(vectors, dtype=float))
        if U.shape[1] != self.n_dims:
            raise ValueError(
                f"expected vectors of dimension {self.n_dims}, got {U.shape[1]}"
            )
        names = [k.name for k in self._knobs]
        columns = [k.from_unit_array(U[:, j]) for j, k in enumerate(self._knobs)]
        return [Configuration(dict(zip(names, row))) for row in zip(*columns)]

    def snap_many(self, vectors: np.ndarray) -> np.ndarray:
        """Snap unit vectors onto the space's representable grid.

        The array-level equivalent of the decode/encode round trip
        ``encode_many([decode(row) for row in vectors])`` — integer and
        categorical dimensions land exactly on their encodings — without
        materializing any native :class:`Configuration`.  Bit-identical
        to the per-row round trip (see ``Knob.snap_unit_array``).
        """
        U = np.atleast_2d(np.asarray(vectors, dtype=float))
        if U.shape[1] != self.n_dims:
            raise ValueError(
                f"expected vectors of dimension {self.n_dims}, got {U.shape[1]}"
            )
        return np.column_stack(
            [k.snap_unit_array(U[:, j]) for j, k in enumerate(self._knobs)]
        )

    def one_hot_dims(self) -> int:
        """Dimensionality of the one-hot encoding."""
        total = 0
        for knob in self._knobs:
            total += knob.n_choices if isinstance(knob, CategoricalKnob) else 1
        return total

    def one_hot_encode(self, config: Mapping[str, Any]) -> np.ndarray:
        """Encode with explicit one-hot expansion of categorical knobs.

        Numeric knobs contribute their unit value; a categorical knob with
        ``n`` choices contributes an ``n``-length indicator block.
        """
        parts: list[np.ndarray] = []
        for knob in self._knobs:
            if isinstance(knob, CategoricalKnob):
                block = np.zeros(knob.n_choices)
                block[knob.choice_index(config[knob.name])] = 1.0
                parts.append(block)
            else:
                parts.append(np.array([knob.to_unit(config[knob.name])]))
        return np.concatenate(parts)

    def one_hot_encode_many(self, configs: Sequence[Mapping[str, Any]]) -> np.ndarray:
        return np.array([self.one_hot_encode(c) for c in configs], dtype=float)

    def one_hot_feature_names(self) -> list[str]:
        """Names of the one-hot encoded features, aligned with the encoding."""
        names: list[str] = []
        for knob in self._knobs:
            if isinstance(knob, CategoricalKnob):
                names.extend(f"{knob.name}={c}" for c in knob.choices)
            else:
                names.append(knob.name)
        return names

    # ------------------------------------------------------------------
    # configurations
    # ------------------------------------------------------------------
    def default_configuration(self) -> Configuration:
        """The vendor-default configuration."""
        return Configuration({k.name: k.default for k in self._knobs})

    def sample_configuration(self, rng: np.random.Generator | None = None) -> Configuration:
        """Draw one uniformly random configuration."""
        rng = self._rng if rng is None else rng
        return Configuration({k.name: k.sample(rng) for k in self._knobs})

    def sample_configurations(
        self, n: int, rng: np.random.Generator | None = None
    ) -> list[Configuration]:
        """Draw ``n`` independent uniformly random configurations."""
        rng = self._rng if rng is None else rng
        return [self.sample_configuration(rng) for _ in range(n)]

    def validate(self, config: Mapping[str, Any]) -> bool:
        """Check all knobs are present with in-domain values."""
        if set(config) != set(self._by_name):
            return False
        return all(k.validate(config[k.name]) for k in self._knobs)

    def clip(self, config: Mapping[str, Any]) -> Configuration:
        """Clamp each knob value into its legal domain."""
        return Configuration({k.name: k.clip(config[k.name]) for k in self._knobs})

    def complete(self, partial: Mapping[str, Any]) -> Configuration:
        """Extend a partial assignment with defaults for missing knobs."""
        values = {k.name: k.default for k in self._knobs}
        for name, value in partial.items():
            if name not in self._by_name:
                raise KeyError(f"unknown knob {name!r}")
            values[name] = value
        return Configuration(values)

    # ------------------------------------------------------------------
    # structural operations
    # ------------------------------------------------------------------
    def subspace(self, names: Sequence[str], seed: int | None = None) -> "ConfigurationSpace":
        """Return a new space restricted to the given knobs (in given order)."""
        missing = [n for n in names if n not in self._by_name]
        if missing:
            raise KeyError(f"unknown knobs: {missing}")
        return ConfigurationSpace([self._by_name[n] for n in names], seed=seed)

    def neighbors(
        self,
        config: Mapping[str, Any],
        rng: np.random.Generator | None = None,
        n_continuous: int = 4,
        stdev: float = 0.2,
    ) -> list[Configuration]:
        """Generate one-exchange neighbours of a configuration (SMAC-style).

        Numeric knobs get ``n_continuous`` Gaussian perturbations in unit
        space; categorical knobs get every alternative choice.
        """
        rng = self._rng if rng is None else rng
        base = dict(config)
        result: list[Configuration] = []
        for knob in self._knobs:
            if isinstance(knob, CategoricalKnob):
                for choice in knob.choices:
                    if choice != base[knob.name]:
                        result.append(Configuration({**base, knob.name: choice}))
            else:
                u = knob.to_unit(base[knob.name])
                for _ in range(n_continuous):
                    nu = float(np.clip(u + rng.normal(0.0, stdev), 0.0, 1.0))
                    value = knob.from_unit(nu)
                    if value != base[knob.name]:
                        result.append(Configuration({**base, knob.name: value}))
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConfigurationSpace(n_dims={self.n_dims})"
