"""The per-file visitor engine: discovery, rule dispatch, suppressions."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint import rules as _rules  # noqa: F401 — populates the registry
from repro.lint.config import LintConfig
from repro.lint.context import FileContext
from repro.lint.findings import (
    PARSE_ERROR_RULE_ID,
    SUPPRESSION_RULE_ID,
    Finding,
    Suppression,
    scan_suppressions,
)
from repro.lint.registry import RULES, Rule


@dataclass
class FileReport:
    """Outcome of linting one file."""

    path: str
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings


def discover_files(paths: Sequence[str | Path], config: LintConfig) -> list[Path]:
    """Expand files/directories into the sorted list of ``.py`` targets,
    honouring the config's ``exclude`` patterns."""
    out: list[Path] = []
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen or config.is_excluded(candidate):
                continue
            seen.add(resolved)
            out.append(candidate)
    return sorted(out)


class Linter:
    """Runs the registered rules over files, applying config and
    suppression comments."""

    def __init__(self, config: LintConfig | None = None) -> None:
        self.config = config if config is not None else LintConfig()
        unknown = sorted(
            (set(self.config.select) | set(self.config.ignore))
            - set(RULES)
            - {SUPPRESSION_RULE_ID}
        )
        if unknown:
            raise ValueError(f"unknown rule id(s) in configuration: {', '.join(unknown)}")
        # Program-scope rules (R010+) need the whole-program index and are
        # dispatched by repro.lint.program.driver, not per file.
        self._rules: dict[str, Rule] = {
            rid: cls() for rid, cls in sorted(RULES.items()) if cls.scope == "file"
        }

    # ------------------------------------------------------------------
    def lint_file(self, path: str | Path) -> FileReport:
        path = Path(path)
        report = FileReport(path=str(path))
        try:
            # utf-8-sig: a UTF-8 BOM is metadata, not source — strip it so
            # BOM'd files lint like any other instead of tripping the parser.
            source = path.read_text(encoding="utf-8-sig")
        except (OSError, UnicodeDecodeError, ValueError) as exc:
            report.findings.append(
                Finding(PARSE_ERROR_RULE_ID, str(path), 1, 1, f"cannot read file: {exc}")
            )
            return report
        return self.lint_source(source, str(path), report)

    def lint_source(
        self, source: str, path: str = "<string>", report: FileReport | None = None
    ) -> FileReport:
        report, _ctx, _suppressions = self.lint_source_full(source, path, report)
        return report

    def lint_source_full(
        self, source: str, path: str = "<string>", report: FileReport | None = None
    ) -> tuple[FileReport, FileContext | None, dict[int, Suppression]]:
        """Like :meth:`lint_source`, but also returns the parsed context and
        suppression map so the whole-program driver can extract its file
        summary from the same parse instead of re-reading the source."""
        report = report if report is not None else FileReport(path=path)
        if source.startswith("\ufeff"):  # BOM survives direct lint_source calls
            source = source.lstrip("\ufeff")
        lines = source.splitlines()
        suppressions, suppression_findings = scan_suppressions(path, lines)
        report.findings.extend(suppression_findings)
        try:
            ctx = FileContext.parse(path, source)
        except SyntaxError as exc:
            report.findings.append(
                Finding(
                    PARSE_ERROR_RULE_ID,
                    path,
                    exc.lineno or 1,
                    (exc.offset or 0) + 1 if exc.offset is not None else 1,
                    f"syntax error: {exc.msg}",
                )
            )
            return report, None, suppressions
        except ValueError as exc:
            # e.g. null bytes: older interpreters raise ValueError rather
            # than SyntaxError; either way it is an E001, not a traceback.
            report.findings.append(
                Finding(PARSE_ERROR_RULE_ID, path, 1, 1, f"cannot parse file: {exc}")
            )
            return report, None, suppressions
        active = self.config.rules_for(Path(path), sorted(self._rules))
        for rule_id in active:
            rule = self._rules[rule_id]
            for finding in rule.check(ctx):
                suppression = suppressions.get(finding.line)
                if suppression is not None and suppression.covers(finding.rule):
                    suppression.used = True
                    report.suppressed.append(finding)
                else:
                    report.findings.append(finding)
        report.findings.sort(key=Finding.sort_key)
        report.suppressed.sort(key=Finding.sort_key)
        return report, ctx, suppressions

    # ------------------------------------------------------------------
    def run(self, paths: Sequence[str | Path]) -> list[FileReport]:
        return [self.lint_file(p) for p in discover_files(paths, self.config)]


def lint_paths(
    paths: Sequence[str | Path], config: LintConfig | None = None
) -> tuple[list[Finding], list[FileReport]]:
    """Convenience API: lint paths, return (all findings, per-file reports)."""
    linter = Linter(config)
    reports = linter.run(paths)
    findings = [f for report in reports for f in report.findings]
    return findings, reports


__all__ = [
    "FileReport",
    "Linter",
    "discover_files",
    "lint_paths",
]


def _iter_all(reports: Iterable[FileReport]) -> Iterable[Finding]:
    for report in reports:
        yield from report.findings
