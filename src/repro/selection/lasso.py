"""Lasso-based knob ranking (OtterTune, paper §3.1.1 / §4.2).

Features are the one-hot encoded knobs augmented with second-degree
polynomial terms (the OtterTune setting).  Knobs are ranked by the order
in which any of their terms enters the regularization path as the L1
penalty decreases — the knob whose coefficient survives the strongest
penalty is the most important.

For wide spaces the full quadratic expansion is intractable
(197 one-hot -> ~260 columns -> ~34k quadratic terms), so expansions
degrade gracefully: full quadratic below ``max_quadratic_dims``, linear +
squared terms otherwise (interaction terms are the first casualty, which
is faithful to the method's linearity assumption the paper criticizes).
"""

from __future__ import annotations

import numpy as np

from repro.ml.linear import LassoRegression
from repro.ml.metrics import r2_score
from repro.ml.preprocessing import PolynomialFeatures, StandardScaler
from repro.selection.base import ImportanceMeasurement
from repro.space import CategoricalKnob, Configuration


class LassoImportance(ImportanceMeasurement):
    """Regularization-path knob ranking with polynomial features."""

    name = "lasso"

    def __init__(
        self,
        space,
        seed: int | None = None,
        n_alphas: int = 12,
        max_quadratic_dims: int = 40,
        max_iter: int = 300,
    ) -> None:
        super().__init__(space, seed)
        self.n_alphas = n_alphas
        self.max_quadratic_dims = max_quadratic_dims
        self.max_iter = max_iter

    # ------------------------------------------------------------------
    def _design_matrix(self, configs: list[Configuration]) -> tuple[np.ndarray, list[int]]:
        """One-hot + polynomial design; returns (X, column -> knob index)."""
        X = self.space.one_hot_encode_many(configs)
        # column -> knob index for the one-hot base design
        base_owner: list[int] = []
        for i, knob in enumerate(self.space.knobs):
            width = knob.n_choices if isinstance(knob, CategoricalKnob) else 1
            base_owner.extend([i] * width)

        if X.shape[1] <= self.max_quadratic_dims:
            poly = PolynomialFeatures(degree=2, interaction_only=False, include_bias=False)
            Xp = poly.fit_transform(X)
            owners: list[int] = []
            for combo in poly.feature_groups(X.shape[1]):
                # Attribute interaction terms to the stronger-owning knob by
                # splitting the column between all involved knobs; for
                # ranking, crediting every involved knob works well.
                owners.append(-1 if len(combo) != 1 else base_owner[combo[0]])
            # Re-expand: keep the combo list for multi-owner credit.
            self._combos = [tuple(base_owner[c] for c in combo) for combo in poly.feature_groups(X.shape[1])]
            return Xp, owners
        squared = X**2
        Xp = np.hstack([X, squared])
        self._combos = [(o,) for o in base_owner] + [(o, o) for o in base_owner]
        return Xp, base_owner + base_owner

    def _compute(self, configs, scores, default_score) -> np.ndarray:
        X, __ = self._design_matrix(configs)
        y = np.asarray(scores, dtype=float)
        y_std = y.std()
        yn = (y - y.mean()) / (y_std if y_std > 0 else 1.0)
        scaler = StandardScaler()
        Xs = scaler.fit_transform(X)

        # Path of decreasing penalties from the critical alpha.
        n = len(yn)
        alpha_max = float(np.max(np.abs(Xs.T @ yn)) / n)
        if alpha_max <= 0:
            return np.zeros(self.space.n_dims)
        alphas = np.geomspace(alpha_max * 0.95, alpha_max * 1e-3, self.n_alphas)

        d = self.space.n_dims
        entry_rank = np.full(d, np.inf)  # smaller = enters earlier = stronger
        final_coef_credit = np.zeros(d)
        for step, alpha in enumerate(alphas):
            model = LassoRegression(alpha=float(alpha), max_iter=self.max_iter, standardize=False)
            model.fit(Xs, yn)
            assert model.coef_ is not None
            self.surrogate_r2_ = r2_score(yn, model.predict(Xs))
            self._final_model = model
            self._scaler = scaler
            self._y_stats = (float(y.mean()), float(y_std if y_std > 0 else 1.0))
            for col, coef in enumerate(model.coef_):
                if abs(coef) <= 1e-9:
                    continue
                for owner in self._combos[col]:
                    entry_rank[owner] = min(entry_rank[owner], step)
                    final_coef_credit[owner] = max(final_coef_credit[owner], abs(coef))
        # Score: earlier path entry dominates; final |coef| breaks ties.
        never = ~np.isfinite(entry_rank)
        entry_rank[never] = self.n_alphas + 1
        max_credit = final_coef_credit.max()
        credit = final_coef_credit / max_credit if max_credit > 0 else final_coef_credit
        return (self.n_alphas + 1 - entry_rank) + credit

    def predict_holdout(self, configs) -> np.ndarray:
        """Predictions of the final-path linear model on unseen configs."""
        if getattr(self, "_final_model", None) is None:
            raise RuntimeError("measurement has not been run")
        X, __ = self._design_matrix(list(configs))
        mean, std = self._y_stats
        return self._final_model.predict(self._scaler.transform(X)) * std + mean
